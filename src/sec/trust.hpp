// Trust management module (§V self-protection direction): maintains a trust
// value per user from past actions — violations cut it multiplicatively,
// sustained clean activity restores it slowly — and derives the threshold
// scale that makes policies adaptive per user.
#pragma once

#include <map>

#include "common/types.hpp"
#include "sec/policy.hpp"

namespace bs::sec {

struct TrustOptions {
  double initial{0.8};
  double min_trust{0.05};
  /// Multiplicative cut per violation by severity.
  double cut_low{0.9};
  double cut_medium{0.7};
  double cut_high{0.4};
  /// Additive recovery per clean observation interval.
  double recovery{0.01};
  double max_trust{1.0};
  /// Threshold scale at zero trust (1.0 at full trust): low-trust clients
  /// face proportionally stricter policy thresholds.
  double min_threshold_scale{0.4};
};

class TrustManager {
 public:
  explicit TrustManager(TrustOptions options = TrustOptions())
      : options_(options) {}

  [[nodiscard]] double trust(ClientId client) const;

  /// Applies a violation of the given severity.
  void record_violation(ClientId client, Severity severity);

  /// Applies an explicit trust delta (the trust(delta) policy action).
  void adjust(ClientId client, double delta);

  /// One clean observation interval for the client.
  void record_clean(ClientId client);

  /// Multiplier applied to policy thresholds for this client
  /// (min_threshold_scale..1.0, linear in trust).
  [[nodiscard]] double threshold_scale(ClientId client) const;

  [[nodiscard]] std::size_t tracked_clients() const { return trust_.size(); }

 private:
  TrustOptions options_;
  std::map<std::uint64_t, double> trust_;
};

}  // namespace bs::sec
