#include "sec/policy.hpp"

#include <cctype>
#include <cmath>
#include <map>

#include "common/config.hpp"

namespace bs::sec {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::low: return "low";
    case Severity::medium: return "medium";
    case Severity::high: return "high";
  }
  return "?";
}

namespace ast {

double NumExpr::eval(const EvalContext& ctx) const {
  switch (kind) {
    case Kind::constant:
      return constant;
    case Kind::rate:
      return ctx.activity != nullptr
                 ? ctx.activity->rate(ctx.client, metric, window, ctx.now)
                 : 0.0;
    case Kind::total:
      return ctx.activity != nullptr
                 ? ctx.activity->total(ctx.client, metric, window, ctx.now)
                 : 0.0;
    case Kind::trust:
      return ctx.trust;
  }
  return 0.0;
}

bool BoolExpr::eval(const EvalContext& ctx) const {
  switch (kind) {
    case Kind::logical_and:
      return a->eval(ctx) && b->eval(ctx);
    case Kind::logical_or:
      return a->eval(ctx) || b->eval(ctx);
    case Kind::logical_not:
      return !a->eval(ctx);
    case Kind::cmp:
      break;
  }
  double l = lhs.eval(ctx);
  double r = rhs.eval(ctx);
  // Trust-adaptive thresholds: when an activity measure is compared against
  // a constant upper bound, the bound shrinks for low-trust clients.
  const bool activity_vs_const =
      lhs.kind != NumExpr::Kind::constant &&
      rhs.kind == NumExpr::Kind::constant;
  if (activity_vs_const && (op == CmpOp::gt || op == CmpOp::ge)) {
    r *= ctx.threshold_scale;
  }
  switch (op) {
    case CmpOp::gt: return l > r;
    case CmpOp::ge: return l >= r;
    case CmpOp::lt: return l < r;
    case CmpOp::le: return l <= r;
    case CmpOp::eq: return l == r;
    case CmpOp::ne: return l != r;
  }
  return false;
}

}  // namespace ast

std::string Action::to_string() const {
  char buf[64];
  switch (type) {
    case Type::block:
      std::snprintf(buf, sizeof(buf), "block(%s)",
                    simtime::to_string(duration).c_str());
      return buf;
    case Type::throttle:
      if (duration > 0) {
        std::snprintf(buf, sizeof(buf), "throttle(%.1f, %s)", value,
                      simtime::to_string(duration).c_str());
      } else {
        std::snprintf(buf, sizeof(buf), "throttle(%.1f)", value);
      }
      return buf;
    case Type::alert: return "alert";
    case Type::log: return "log";
    case Type::trust_delta:
      std::snprintf(buf, sizeof(buf), "trust(%+.2f)", value);
      return buf;
  }
  return "?";
}

Result<mon::Metric> metric_from_name(const std::string& name) {
  static const std::map<std::string, mon::Metric> kMap = {
      {"write_ops", mon::Metric::write_ops},
      {"read_ops", mon::Metric::read_ops},
      {"write_bytes", mon::Metric::write_bytes},
      {"read_bytes", mon::Metric::read_bytes},
      {"rejected_ops", mon::Metric::rejected_ops},
      {"failed_ops", mon::Metric::failed_ops},
      {"meta_ops", mon::Metric::meta_ops},
      {"control_ops", mon::Metric::control_ops},
      {"op_latency", mon::Metric::op_latency},
  };
  auto it = kMap.find(name);
  if (it == kMap.end()) {
    return Error{Errc::parse_error, "unknown metric '" + name + "'"};
  }
  return it->second;
}

// ------------------------------------------------------------------- lexer

namespace {

enum class Tok {
  ident, number, string, lbrace, rbrace, lparen, rparen, semi, comma,
  gt, ge, lt, le, eq, ne, end,
};

struct Token {
  Tok kind{Tok::end};
  std::string text;
  double number{0};
  std::string unit;  ///< suffix attached to a number (MB, s, ...)
  int line{1};
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws_and_comments();
      if (pos_ >= src_.size()) break;
      const char c = src_[pos_];
      Token t;
      t.line = line_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        t.kind = Tok::ident;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_')) {
          t.text += src_[pos_++];
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
                 c == '-' || c == '+') {
        t.kind = Tok::number;
        std::size_t start = pos_;
        if (c == '-' || c == '+') ++pos_;
        while (pos_ < src_.size() &&
               (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.')) {
          ++pos_;
        }
        // Exponent part (1e9, 2.5E-3) — only when digits follow, so a
        // trailing unit like "5min" is not swallowed.
        if (pos_ + 1 < src_.size() &&
            (src_[pos_] == 'e' || src_[pos_] == 'E')) {
          std::size_t probe = pos_ + 1;
          if (src_[probe] == '+' || src_[probe] == '-') ++probe;
          if (probe < src_.size() &&
              std::isdigit(static_cast<unsigned char>(src_[probe]))) {
            pos_ = probe;
            while (pos_ < src_.size() &&
                   std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
              ++pos_;
            }
          }
        }
        t.number = std::strtod(src_.substr(start, pos_ - start).c_str(),
                               nullptr);
        // Optional unit suffix glued to the number (10s, 500MB).
        while (pos_ < src_.size() &&
               std::isalpha(static_cast<unsigned char>(src_[pos_]))) {
          t.unit += src_[pos_++];
        }
      } else if (c == '"') {
        t.kind = Tok::string;
        ++pos_;
        while (pos_ < src_.size() && src_[pos_] != '"') {
          t.text += src_[pos_++];
        }
        if (pos_ >= src_.size()) {
          return Error{Errc::parse_error,
                       "line " + std::to_string(line_) +
                           ": unterminated string"};
        }
        ++pos_;
      } else {
        ++pos_;
        switch (c) {
          case '{': t.kind = Tok::lbrace; break;
          case '}': t.kind = Tok::rbrace; break;
          case '(': t.kind = Tok::lparen; break;
          case ')': t.kind = Tok::rparen; break;
          case ';': t.kind = Tok::semi; break;
          case ',': t.kind = Tok::comma; break;
          case '>':
            if (pos_ < src_.size() && src_[pos_] == '=') {
              ++pos_;
              t.kind = Tok::ge;
            } else {
              t.kind = Tok::gt;
            }
            break;
          case '<':
            if (pos_ < src_.size() && src_[pos_] == '=') {
              ++pos_;
              t.kind = Tok::le;
            } else {
              t.kind = Tok::lt;
            }
            break;
          case '=':
            if (pos_ < src_.size() && src_[pos_] == '=') {
              ++pos_;
              t.kind = Tok::eq;
              break;
            }
            return Error{Errc::parse_error,
                         "line " + std::to_string(line_) + ": lone '='"};
          case '!':
            if (pos_ < src_.size() && src_[pos_] == '=') {
              ++pos_;
              t.kind = Tok::ne;
              break;
            }
            return Error{Errc::parse_error,
                         "line " + std::to_string(line_) + ": lone '!'"};
          default:
            return Error{Errc::parse_error,
                         "line " + std::to_string(line_) +
                             ": unexpected character '" + c + "'"};
        }
      }
      out.push_back(std::move(t));
    }
    Token end;
    end.kind = Tok::end;
    end.line = line_;
    out.push_back(end);
    return out;
  }

 private:
  void skip_ws_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& src_;
  std::size_t pos_{0};
  int line_{1};
};

// ------------------------------------------------------------------ parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<std::vector<Policy>> run() {
    std::vector<Policy> out;
    while (peek().kind != Tok::end) {
      auto p = parse_policy();
      if (!p.ok()) return p.error();
      out.push_back(std::move(p).value());
    }
    return out;
  }

 private:
  const Token& peek() const { return toks_[pos_]; }
  Token take() { return toks_[pos_++]; }

  Error err(const std::string& message) {
    return Error{Errc::parse_error,
                 "line " + std::to_string(peek().line) + ": " + message};
  }

  Result<void> expect(Tok kind, const char* what) {
    if (peek().kind != kind) return err(std::string("expected ") + what);
    take();
    return ok_result();
  }

  Result<Policy> parse_policy() {
    if (peek().kind != Tok::ident || peek().text != "policy") {
      return err("expected 'policy'");
    }
    take();
    if (peek().kind != Tok::ident) return err("expected policy name");
    Policy p;
    p.name = take().text;
    if (auto r = expect(Tok::lbrace, "'{'"); !r.ok()) return r.error();
    bool has_when = false, has_then = false;
    while (peek().kind != Tok::rbrace) {
      if (peek().kind != Tok::ident) return err("expected clause keyword");
      const std::string kw = take().text;
      if (kw == "severity") {
        if (peek().kind != Tok::ident) return err("expected severity level");
        const std::string level = take().text;
        if (level == "low") {
          p.severity = Severity::low;
        } else if (level == "medium") {
          p.severity = Severity::medium;
        } else if (level == "high") {
          p.severity = Severity::high;
        } else {
          return err("unknown severity '" + level + "'");
        }
      } else if (kw == "description") {
        if (peek().kind != Tok::string) return err("expected string");
        p.description = take().text;
      } else if (kw == "when") {
        auto cond = parse_or();
        if (!cond.ok()) return cond.error();
        p.condition = std::move(cond).value();
        has_when = true;
      } else if (kw == "then") {
        while (true) {
          auto a = parse_action();
          if (!a.ok()) return a.error();
          p.actions.push_back(a.value());
          if (peek().kind == Tok::comma) {
            take();
            continue;
          }
          break;
        }
        has_then = true;
      } else {
        return err("unknown clause '" + kw + "'");
      }
      if (auto r = expect(Tok::semi, "';'"); !r.ok()) return r.error();
    }
    take();  // rbrace
    if (!has_when) return err("policy '" + p.name + "' missing when clause");
    if (!has_then) return err("policy '" + p.name + "' missing then clause");
    return p;
  }

  Result<ast::BoolPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs.error();
    auto node = std::move(lhs).value();
    while (peek().kind == Tok::ident && peek().text == "or") {
      take();
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs.error();
      auto combined = std::make_unique<ast::BoolExpr>();
      combined->kind = ast::BoolExpr::Kind::logical_or;
      combined->a = std::move(node);
      combined->b = std::move(rhs).value();
      node = std::move(combined);
    }
    return node;
  }

  Result<ast::BoolPtr> parse_and() {
    auto lhs = parse_not();
    if (!lhs.ok()) return lhs.error();
    auto node = std::move(lhs).value();
    while (peek().kind == Tok::ident && peek().text == "and") {
      take();
      auto rhs = parse_not();
      if (!rhs.ok()) return rhs.error();
      auto combined = std::make_unique<ast::BoolExpr>();
      combined->kind = ast::BoolExpr::Kind::logical_and;
      combined->a = std::move(node);
      combined->b = std::move(rhs).value();
      node = std::move(combined);
    }
    return node;
  }

  Result<ast::BoolPtr> parse_not() {
    if (peek().kind == Tok::ident && peek().text == "not") {
      take();
      auto inner = parse_not();
      if (!inner.ok()) return inner.error();
      auto node = std::make_unique<ast::BoolExpr>();
      node->kind = ast::BoolExpr::Kind::logical_not;
      node->a = std::move(inner).value();
      return node;
    }
    if (peek().kind == Tok::lparen) {
      take();
      auto inner = parse_or();
      if (!inner.ok()) return inner.error();
      if (auto r = expect(Tok::rparen, "')'"); !r.ok()) return r.error();
      return inner;
    }
    return parse_comparison();
  }

  Result<ast::BoolPtr> parse_comparison() {
    auto lhs = parse_term();
    if (!lhs.ok()) return lhs.error();
    ast::CmpOp op;
    switch (peek().kind) {
      case Tok::gt: op = ast::CmpOp::gt; break;
      case Tok::ge: op = ast::CmpOp::ge; break;
      case Tok::lt: op = ast::CmpOp::lt; break;
      case Tok::le: op = ast::CmpOp::le; break;
      case Tok::eq: op = ast::CmpOp::eq; break;
      case Tok::ne: op = ast::CmpOp::ne; break;
      default:
        return err("expected comparison operator");
    }
    take();
    auto rhs = parse_term();
    if (!rhs.ok()) return rhs.error();
    auto node = std::make_unique<ast::BoolExpr>();
    node->kind = ast::BoolExpr::Kind::cmp;
    node->lhs = lhs.value();
    node->op = op;
    node->rhs = rhs.value();
    return node;
  }

  Result<double> number_with_unit(const Token& t) {
    if (t.unit.empty()) return t.number;
    // Try bytes then duration (durations normalize to seconds for eval).
    const std::string text = std::to_string(t.number) + t.unit;
    if (auto b = Config::parse_bytes(text); b.ok()) {
      return static_cast<double>(b.value());
    }
    if (auto d = Config::parse_duration(text); d.ok()) {
      return simtime::to_seconds(d.value());
    }
    return Error{Errc::parse_error,
                 "line " + std::to_string(t.line) + ": unknown unit '" +
                     t.unit + "'"};
  }

  Result<SimDuration> duration_arg() {
    if (peek().kind != Tok::number) return err("expected duration");
    const Token t = take();
    if (t.unit.empty()) return simtime::seconds(t.number);
    auto d = Config::parse_duration(std::to_string(t.number) + t.unit);
    if (!d.ok()) return err("bad duration unit '" + t.unit + "'");
    return d.value();
  }

  Result<ast::NumExpr> parse_term() {
    ast::NumExpr node;
    if (peek().kind == Tok::number) {
      const Token t = take();
      auto v = number_with_unit(t);
      if (!v.ok()) return v.error();
      node.kind = ast::NumExpr::Kind::constant;
      node.constant = v.value();
      return node;
    }
    if (peek().kind != Tok::ident) return err("expected term");
    const std::string fn = take().text;
    if (auto r = expect(Tok::lparen, "'('"); !r.ok()) return r.error();
    if (fn == "trust") {
      node.kind = ast::NumExpr::Kind::trust;
    } else if (fn == "rate" || fn == "total") {
      node.kind = fn == "rate" ? ast::NumExpr::Kind::rate
                               : ast::NumExpr::Kind::total;
      if (peek().kind != Tok::ident) return err("expected metric name");
      auto metric = metric_from_name(take().text);
      if (!metric.ok()) return err(metric.error().message);
      node.metric = metric.value();
      if (auto r = expect(Tok::comma, "','"); !r.ok()) return r.error();
      auto window = duration_arg();
      if (!window.ok()) return window.error();
      node.window = window.value();
    } else {
      return err("unknown function '" + fn + "'");
    }
    if (auto r = expect(Tok::rparen, "')'"); !r.ok()) return r.error();
    return node;
  }

  Result<Action> parse_action() {
    if (peek().kind != Tok::ident) return err("expected action");
    const std::string name = take().text;
    Action a;
    if (name == "alert") {
      a.type = Action::Type::alert;
      return a;
    }
    if (name == "log") {
      a.type = Action::Type::log;
      return a;
    }
    if (auto r = expect(Tok::lparen, "'('"); !r.ok()) return r.error();
    if (name == "block") {
      a.type = Action::Type::block;
      auto d = duration_arg();
      if (!d.ok()) return d.error();
      a.duration = d.value();
    } else if (name == "throttle") {
      a.type = Action::Type::throttle;
      if (peek().kind != Tok::number) return err("expected rate");
      a.value = take().number;
      if (peek().kind == Tok::comma) {
        take();
        auto d = duration_arg();
        if (!d.ok()) return d.error();
        a.duration = d.value();  // 0 = until pardoned
      }
    } else if (name == "trust") {
      a.type = Action::Type::trust_delta;
      if (peek().kind != Tok::number) return err("expected delta");
      a.value = take().number;
    } else {
      return err("unknown action '" + name + "'");
    }
    if (auto r = expect(Tok::rparen, "')'"); !r.ok()) return r.error();
    return a;
  }

  std::vector<Token> toks_;
  std::size_t pos_{0};
};

}  // namespace

Result<std::vector<Policy>> parse_policies(const std::string& source) {
  Lexer lexer(source);
  auto tokens = lexer.run();
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).value());
  return parser.run();
}

std::string default_policy_source() {
  return R"(
# Request-flooding DoS: far more write requests per second than any honest
# client can issue while actually moving data.
policy dos_write_flood {
  severity high;
  description "chunk-write request flood";
  when rate(write_ops, 10s) > 60;
  then block(60s), trust(-0.3), alert;
}

# Read-side DoS.
policy dos_read_flood {
  severity high;
  description "chunk-read request flood";
  when rate(read_ops, 10s) > 120;
  then block(60s), trust(-0.3), alert;
}

# Metadata scraping: hammering metadata providers without moving data.
policy meta_scrape {
  severity medium;
  description "metadata scan without data traffic";
  when rate(meta_ops, 30s) > 200 and total(write_bytes, 30s) < 1MB
       and total(read_bytes, 30s) < 1MB;
  then throttle(20), trust(-0.1), log;
}

# Repeat offender: keeps knocking while rejected.
policy repeat_offender {
  severity high;
  description "persistent access attempts while sanctioned";
  when total(rejected_ops, 60s) > 500 and trust() < 0.5;
  then block(300s), trust(-0.2), alert;
}
)";
}

}  // namespace bs::sec
