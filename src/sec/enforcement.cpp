#include "sec/enforcement.hpp"

#include "common/log.hpp"

namespace bs::sec {

PolicyEnforcement::PolicyEnforcement(sim::Simulation& sim,
                                     TrustManager& trust,
                                     EnforcementOptions options)
    : sim_(sim), trust_(trust), options_(options) {}

void PolicyEnforcement::handle(const Violation& v) {
  trust_.record_violation(v.client, v.policy->severity);
  for (const Action& action : v.policy->actions) {
    apply(v, action);
  }
}

void PolicyEnforcement::apply(const Violation& v, const Action& action) {
  ActionLogEntry entry;
  entry.time = sim_.now();
  entry.client = v.client;
  entry.policy = v.policy->name;
  entry.severity = v.policy->severity;
  entry.action = action;

  switch (action.type) {
    case Action::Type::block: {
      SimDuration dur = action.duration;
      if (options_.trust_scaled_blocks) {
        const double scale = 2.0 - trust_.trust(v.client);
        dur = static_cast<SimDuration>(static_cast<double>(dur) * scale);
      }
      SimTime& until = blocked_[v.client.value];
      until = std::max(until, sim_.now() + dur);
      BS_INFO("sec", "client %llu blocked for %s by policy '%s'",
              (unsigned long long)v.client.value,
              simtime::to_string(dur).c_str(), v.policy->name.c_str());
      break;
    }
    case Action::Type::throttle: {
      Throttle t{TokenBucket(action.value, action.value),
                 action.duration > 0 ? sim_.now() + action.duration
                                     : simtime::kInfinite};
      throttles_.insert_or_assign(v.client.value, std::move(t));
      break;
    }
    case Action::Type::trust_delta:
      trust_.adjust(v.client, action.value);
      break;
    case Action::Type::alert:
      BS_WARN("sec", "ALERT policy '%s' violated by client %llu",
              v.policy->name.c_str(), (unsigned long long)v.client.value);
      break;
    case Action::Type::log:
      BS_INFO("sec", "policy '%s' violated by client %llu",
              v.policy->name.c_str(), (unsigned long long)v.client.value);
      break;
  }
  log_.push_back(entry);
  if (observer_) observer_(entry);
}

Result<void> PolicyEnforcement::admission_check(const rpc::Envelope& env,
                                                const char* /*req_name*/) {
  if (!env.client.valid()) return ok_result();  // internal traffic
  const SimTime now = sim_.now();
  if (is_blocked(env.client, now)) {
    ++rejections_;
    return Error{Errc::blocked, "client is blocked"};
  }
  auto it = throttles_.find(env.client.value);
  if (it != throttles_.end()) {
    if (it->second.until <= now) {
      throttles_.erase(it);  // sanction served
    } else if (!it->second.bucket.try_consume(now)) {
      ++rejections_;
      return Error{Errc::throttled, "client exceeds throttle rate"};
    }
  }
  return ok_result();
}

void PolicyEnforcement::attach(rpc::Node& node) {
  node.set_admission([this](const rpc::Envelope& env, const char* name) {
    return admission_check(env, name);
  });
}

bool PolicyEnforcement::is_blocked(ClientId client, SimTime now) const {
  auto it = blocked_.find(client.value);
  return it != blocked_.end() && it->second > now;
}

std::optional<SimTime> PolicyEnforcement::blocked_until(
    ClientId client) const {
  auto it = blocked_.find(client.value);
  if (it == blocked_.end()) return std::nullopt;
  return it->second;
}

void PolicyEnforcement::pardon(ClientId client) {
  blocked_.erase(client.value);
  throttles_.erase(client.value);
}

std::size_t PolicyEnforcement::blocked_count(SimTime now) const {
  std::size_t n = 0;
  for (const auto& [id, until] : blocked_) {
    if (until > now) ++n;
  }
  return n;
}

}  // namespace bs::sec
