// SecurityFramework: the assembled self-protection stack (User Activity
// History -> Detection Engine -> Enforcement -> admission feedback into
// every BlobSeer actor), "designed to be generic, so that it can be employed
// in conjunction with any system that can monitor and store relevant user
// activity" — the BlobSeer binding lives entirely in attach_deployment().
#pragma once

#include "blob/deployment.hpp"
#include "intro/introspection.hpp"
#include "sec/engine.hpp"

namespace bs::sec {

struct SecurityConfig {
  DetectionOptions detection{};
  TrustOptions trust{};
  EnforcementOptions enforcement{};
  std::string policy_source;  ///< empty = default_policy_source()
};

class SecurityFramework {
 public:
  SecurityFramework(sim::Simulation& sim,
                    const intro::UserActivityHistory& activity,
                    SecurityConfig config = SecurityConfig());

  /// Installs the enforcement admission hook on every current BlobSeer
  /// actor node of the deployment (call again after adding providers).
  void attach_deployment(blob::Deployment& deployment);
  void attach(rpc::Node& node) { enforcement_.attach(node); }

  void start() { engine_.start(); }
  void stop() { engine_.stop(); }

  [[nodiscard]] TrustManager& trust() { return trust_; }
  [[nodiscard]] PolicyEnforcement& enforcement() { return enforcement_; }
  [[nodiscard]] DetectionEngine& engine() { return engine_; }

 private:
  TrustManager trust_;
  PolicyEnforcement enforcement_;
  DetectionEngine engine_;
};

}  // namespace bs::sec
