// Policy Enforcement component (§III-C): turns detected violations into
// sanctions — blocking a client for a (trust- and severity-scaled) period,
// throttling it with a token bucket, logging, alerting, adjusting trust —
// and feeds the decision back into BlobSeer through the admission hook of
// every service node, so blocked clients are rejected before they consume
// any service capacity.
#pragma once

#include <functional>
#include <map>
#include <optional>

#include "common/token_bucket.hpp"
#include "rpc/rpc.hpp"
#include "sec/policy.hpp"
#include "sec/trust.hpp"

namespace bs::sec {

struct Violation {
  ClientId client{};
  const Policy* policy{nullptr};
  SimTime detected_at{0};
};

struct EnforcementOptions {
  /// Block durations scale with (2 - trust): repeat offenders sit out
  /// longer. 1.0 disables scaling.
  bool trust_scaled_blocks{true};
};

class PolicyEnforcement {
 public:
  struct ActionLogEntry {
    SimTime time{0};
    ClientId client{};
    std::string policy;
    Severity severity{Severity::low};
    Action action;
  };

  PolicyEnforcement(sim::Simulation& sim, TrustManager& trust,
                    EnforcementOptions options = EnforcementOptions());

  /// Applies all actions of a violated policy.
  void handle(const Violation& violation);

  /// Admission predicate (installed on BlobSeer nodes).
  [[nodiscard]] Result<void> admission_check(const rpc::Envelope& env,
                                             const char* req_name);

  /// Installs this enforcement's admission hook on a node.
  void attach(rpc::Node& node);

  [[nodiscard]] bool is_blocked(ClientId client, SimTime now) const;
  [[nodiscard]] std::optional<SimTime> blocked_until(ClientId client) const;
  [[nodiscard]] bool is_throttled(ClientId client, SimTime now) const {
    auto it = throttles_.find(client.value);
    return it != throttles_.end() && it->second.until > now;
  }

  /// Clears an active sanction (manual operator override).
  void pardon(ClientId client);

  void set_action_observer(std::function<void(const ActionLogEntry&)> obs) {
    observer_ = std::move(obs);
  }

  [[nodiscard]] const std::vector<ActionLogEntry>& action_log() const {
    return log_;
  }
  [[nodiscard]] std::size_t blocked_count(SimTime now) const;
  [[nodiscard]] std::uint64_t rejections() const { return rejections_; }

 private:
  void apply(const Violation& v, const Action& action);

  sim::Simulation& sim_;
  TrustManager& trust_;
  EnforcementOptions options_;
  struct Throttle {
    TokenBucket bucket;
    SimTime until{simtime::kInfinite};  // expiry (kInfinite = until pardon)
  };

  std::map<std::uint64_t, SimTime> blocked_;  // client -> expiry
  std::map<std::uint64_t, Throttle> throttles_;
  std::vector<ActionLogEntry> log_;
  std::function<void(const ActionLogEntry&)> observer_;
  std::uint64_t rejections_{0};
};

}  // namespace bs::sec
