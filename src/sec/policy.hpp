// Security-policy definition language (§III-C, §VI: "an expressive policy
// description language enabling system administrators to define a large
// array of security attacks"). Policies compile to predicate evaluators over
// the User Activity History:
//
//   policy dos_write_flood {
//     severity high;
//     description "client floods chunk writes";
//     when rate(write_ops, 10s) > 100 and total(write_bytes, 10s) > 500MB;
//     then block(60s), alert;
//   }
//
// Terms: rate(metric, window) — per-second rate over a trailing window;
//        total(metric, window) — sum over the window;
//        trust() — the caller's current trust in [0,1];
//        numeric literals with optional byte (KB/MB/GB) or duration units.
// Metrics: write_ops, read_ops, write_bytes, read_bytes, rejected_ops,
//          failed_ops, meta_ops, control_ops, op_latency.
// Actions: block(duration), throttle(ops_per_sec[, duration]),
//          trust(delta), alert, log.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "intro/activity.hpp"

namespace bs::sec {

enum class Severity : std::uint8_t { low = 0, medium, high };
const char* severity_name(Severity s);

/// Everything a policy condition may consult.
struct EvalContext {
  const intro::UserActivityHistory* activity{nullptr};
  ClientId client{};
  SimTime now{0};
  double trust{1.0};
  /// Thresholds are divided by this (low-trust clients => stricter).
  double threshold_scale{1.0};
};

namespace ast {

struct NumExpr {
  enum class Kind { constant, rate, total, trust };
  Kind kind{Kind::constant};
  double constant{0};
  mon::Metric metric{mon::Metric::write_ops};
  SimDuration window{0};

  [[nodiscard]] double eval(const EvalContext& ctx) const;
};

enum class CmpOp { gt, ge, lt, le, eq, ne };

struct BoolExpr;
using BoolPtr = std::unique_ptr<BoolExpr>;

struct BoolExpr {
  enum class Kind { cmp, logical_and, logical_or, logical_not };
  Kind kind{Kind::cmp};
  // cmp
  NumExpr lhs;
  CmpOp op{CmpOp::gt};
  NumExpr rhs;
  // logical
  BoolPtr a;
  BoolPtr b;

  [[nodiscard]] bool eval(const EvalContext& ctx) const;
};

}  // namespace ast

struct Action {
  enum class Type { block, throttle, alert, log, trust_delta };
  Type type{Type::log};
  double value{0};          ///< throttle rate / trust delta
  SimDuration duration{0};  ///< block duration

  [[nodiscard]] std::string to_string() const;
};

struct Policy {
  std::string name;
  Severity severity{Severity::medium};
  std::string description;
  ast::BoolPtr condition;
  std::vector<Action> actions;

  [[nodiscard]] bool matches(const EvalContext& ctx) const {
    return condition != nullptr && condition->eval(ctx);
  }
};

/// Parses a policy program; returns parse_error with line info on failure.
Result<std::vector<Policy>> parse_policies(const std::string& source);

/// Metric name <-> enum used by the language.
Result<mon::Metric> metric_from_name(const std::string& name);

/// The stock policy set used by the self-protection experiments.
std::string default_policy_source();

}  // namespace bs::sec
