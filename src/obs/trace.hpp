// Deterministic observability plane, part 1: structured tracing keyed to
// *simulated* time. A TraceSink ring-buffers span begin/end and instant
// records; spans are RAII handles whose ids flow through RPC envelopes so a
// client write shows its nested provider / metadata / version-manager
// activity. Everything is derived from the simulation clock and seeded
// state — two runs of the same seed produce bit-identical traces, which is
// what lets tests pin golden trace digests.
//
// Instrumented code guards every record behind `if (auto* s = obs::sink())`
// where sink() is a single global-pointer load (and a compile-time nullptr
// when built with BS_TRACE=OFF), so the disabled plane costs one predicted
// branch per site. Record name/category/status strings MUST be string
// literals (static storage duration): records store the pointers only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/teardown.hpp"
#include "common/types.hpp"

namespace bs::obs {

/// Span identity; 0 means "no span" (used as a root parent).
using SpanId = std::uint64_t;

enum class RecordKind : std::uint8_t { span_begin, span_end, instant };

/// Small named integer attached to a record (attempt index, byte count...).
/// A null key means "absent".
struct TraceArg {
  const char* key{nullptr};
  std::int64_t value{0};
};

struct TraceRecord {
  SimTime time{0};
  RecordKind kind{RecordKind::instant};
  SpanId id{0};      ///< span id (begin/end); 0 for instants
  SpanId parent{0};  ///< enclosing span, 0 for roots
  const char* name{""};
  const char* cat{""};
  const char* status{""};  ///< span_end outcome / instant detail
  TraceArg args[2]{};
};

class TraceSink;

/// Move-only RAII span handle. A span that is destroyed without an explicit
/// end() is closed with status "aborted" — crash-interrupted spans are
/// marked, never leaked open.
class Span {
 public:
  Span() = default;
  Span(TraceSink* sink, SpanId id) : sink_(sink), id_(id) {}
  Span(Span&& o) noexcept : sink_(o.sink_), id_(o.id_) { o.sink_ = nullptr; }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      finish("aborted");
      sink_ = o.sink_;
      id_ = o.id_;
      o.sink_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  // Teardown guard: a span held by a frame destroyed in ~Simulation points
  // at a sink the owner already destroyed; the abort record is unwritable.
  ~Span() {
    if (!in_frame_teardown()) finish("aborted");
  }

  /// Closes the span with `status` (a string literal, e.g. errc_name()).
  void end(const char* status = "ok") { finish(status); }

  /// Id to hand to children (0 when tracing is off / span inactive).
  [[nodiscard]] SpanId id() const { return sink_ != nullptr ? id_ : 0; }
  [[nodiscard]] bool active() const { return sink_ != nullptr; }

 private:
  void finish(const char* status);

  TraceSink* sink_{nullptr};
  SpanId id_{0};
};

struct TraceSinkOptions {
  /// Ring capacity in records; the oldest records are overwritten once the
  /// ring is full (`dropped()` counts overwrites).
  std::size_t capacity{1u << 20};
};

class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions opts = {});

  /// Installs the (simulated) clock used to stamp records. Without a clock
  /// every record is stamped 0.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  [[nodiscard]] SimTime now() const { return clock_ ? clock_() : 0; }

  /// Opens a span and returns the RAII handle.
  Span span(const char* name, const char* cat, SpanId parent = 0,
            TraceArg a = {}, TraceArg b = {});

  SpanId begin_span(const char* name, const char* cat, SpanId parent = 0,
                    TraceArg a = {}, TraceArg b = {});
  /// Closes an open span; unknown / already-closed ids are counted in
  /// stray_ends() and otherwise ignored, so double closes are harmless.
  void end_span(SpanId id, const char* status = "ok");

  void instant(const char* name, const char* cat, SpanId parent = 0,
               const char* detail = "", TraceArg a = {}, TraceArg b = {});

  /// Visits records oldest-first.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(ring_[(head_ + i) % ring_.size()]);
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t stray_ends() const { return stray_ends_; }
  [[nodiscard]] std::size_t open_spans() const { return open_.size(); }
  [[nodiscard]] SimTime last_time() const { return last_time_; }

  struct OpenSpan {
    const char* name{""};
    const char* cat{""};
    SpanId parent{0};
    SimTime begin{0};
  };
  [[nodiscard]] const std::unordered_map<SpanId, OpenSpan>& open() const {
    return open_;
  }

  void clear();

 private:
  void push(TraceRecord r);

  std::function<SimTime()> clock_;
  std::vector<TraceRecord> ring_;
  std::size_t head_{0};
  std::size_t size_{0};
  SpanId next_id_{1};
  std::uint64_t dropped_{0};
  std::uint64_t stray_ends_{0};
  SimTime last_time_{0};
  std::unordered_map<SpanId, OpenSpan> open_;
};

// ---------------------------------------------------------------- global hook
//
// The process-wide sink the instrumentation hooks consult. With
// BS_TRACE=OFF (BS_OBS_DISABLED) sink() is a compile-time nullptr and every
// instrumentation block folds away; otherwise it is one pointer load.

#ifdef BS_OBS_DISABLED
inline constexpr bool kEnabled = false;
constexpr TraceSink* sink() { return nullptr; }
inline void set_sink(TraceSink*) {}
#else
inline constexpr bool kEnabled = true;
namespace detail {
extern TraceSink* g_sink;
}
inline TraceSink* sink() { return detail::g_sink; }
void set_sink(TraceSink* s);
#endif

/// RAII installer for the global sink (tests, examples, benches).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSink& s) { set_sink(&s); }
  ~ScopedTrace() { set_sink(nullptr); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

}  // namespace bs::obs
