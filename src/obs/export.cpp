#include "obs/export.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace bs::obs {

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

std::string escape_json(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

struct SpanInfo {
  SimTime begin{0};
  SimTime end{-1};
  bool has_begin{false};
  std::size_t lane{0};
};

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001b3ull;
  }
}

void mix_str(std::uint64_t& h, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ull;
  }
  h ^= 0xFFu;  // terminator: "ab"+"c" != "a"+"bc"
  h *= 0x100000001b3ull;
}

std::string fmt_g(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string chrome_trace_json(const TraceSink& sink) {
  // Pass 1: span intervals. Spans still open at export time are closed at
  // the sink's last timestamp (status "open") so B/E stays balanced; ends
  // whose begin record was overwritten in the ring are dropped.
  std::unordered_map<SpanId, SpanInfo> spans;
  sink.for_each([&](const TraceRecord& r) {
    if (r.kind == RecordKind::span_begin) {
      SpanInfo si;
      si.begin = r.time;
      si.has_begin = true;
      spans[r.id] = si;
    } else if (r.kind == RecordKind::span_end) {
      auto it = spans.find(r.id);
      if (it != spans.end()) it->second.end = r.time;
    }
  });
  std::vector<SpanId> open_ids;
  // bslint: allow(det-unordered-iter): mutation is per-span; open_ids is
  // sorted below before it shapes output
  for (auto& [id, si] : spans) {
    if (si.end < si.begin) {
      si.end = std::max(sink.last_time(), si.begin);
      open_ids.push_back(id);
    }
  }
  std::sort(open_ids.begin(), open_ids.end(), std::greater<>());

  // Pass 2: lane-pack spans so no two spans on a tid overlap — each lane is
  // then a strictly sequential, balanced B/E stream.
  std::vector<std::pair<SimTime, SpanId>> order;
  order.reserve(spans.size());
  // bslint: allow(det-unordered-iter): snapshot is sorted before lane-packing
  for (const auto& [id, si] : spans) order.emplace_back(si.begin, id);
  std::sort(order.begin(), order.end());
  std::vector<SimTime> lane_end;
  for (const auto& [begin, id] : order) {
    SpanInfo& si = spans[id];
    std::size_t lane = lane_end.size();
    for (std::size_t i = 0; i < lane_end.size(); ++i) {
      if (lane_end[i] < begin) {
        lane = i;
        break;
      }
    }
    if (lane == lane_end.size()) lane_end.push_back(si.end);
    lane_end[lane] = si.end;
    si.lane = lane + 1;  // tid 0 is the instant-event lane
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const TraceRecord& r, const char* ph, std::size_t tid) {
    if (!first) out += ',';
    first = false;
    append_fmt(out, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\"",
               escape_json(r.name).c_str(), escape_json(r.cat).c_str(), ph);
    append_fmt(out, ",\"ts\":%.3f,\"pid\":1,\"tid\":%zu",
               static_cast<double>(r.time) / 1e3, tid);
    if (ph[0] == 'i') out += ",\"s\":\"g\"";
    out += ",\"args\":{";
    bool farg = true;
    if (r.status != nullptr && r.status[0] != '\0') {
      append_fmt(out, "\"status\":\"%s\"", escape_json(r.status).c_str());
      farg = false;
    }
    for (const TraceArg& a : r.args) {
      if (a.key == nullptr) continue;
      if (!farg) out += ',';
      farg = false;
      append_fmt(out, "\"%s\":%lld", escape_json(a.key).c_str(),
                 static_cast<long long>(a.value));
    }
    if (r.parent != 0) {
      if (!farg) out += ',';
      append_fmt(out, "\"parent_span\":%llu",
                 static_cast<unsigned long long>(r.parent));
    }
    out += "}}";
  };

  sink.for_each([&](const TraceRecord& r) {
    switch (r.kind) {
      case RecordKind::span_begin:
        emit(r, "B", spans[r.id].lane);
        break;
      case RecordKind::span_end: {
        auto it = spans.find(r.id);
        if (it != spans.end() && it->second.has_begin) {
          emit(r, "E", it->second.lane);
        }
        break;
      }
      case RecordKind::instant:
        emit(r, "i", 0);
        break;
    }
  });
  // Balanced closes for spans still open at export time.
  for (SpanId id : open_ids) {
    const auto& os = sink.open().at(id);
    TraceRecord r;
    r.time = spans[id].end;
    r.kind = RecordKind::span_end;
    r.id = id;
    r.parent = os.parent;
    r.name = os.name;
    r.cat = os.cat;
    r.status = "open";
    emit(r, "E", spans[id].lane);
  }
  out += "]}";
  return out;
}

std::uint64_t trace_hash(const TraceSink& sink) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  sink.for_each([&](const TraceRecord& r) {
    mix(h, static_cast<std::uint64_t>(r.time));
    mix(h, static_cast<std::uint64_t>(r.kind));
    mix(h, r.id);
    mix(h, r.parent);
    mix_str(h, r.name);
    mix_str(h, r.cat);
    mix_str(h, r.status);
    for (const TraceArg& a : r.args) {
      if (a.key == nullptr) continue;
      mix_str(h, a.key);
      mix(h, static_cast<std::uint64_t>(a.value));
    }
  });
  return h;
}

std::string trace_digest(const TraceSink& sink) {
  struct SpanAgg {
    std::uint64_t n{0};
    std::uint64_t aborted{0};
    std::uint64_t errors{0};
    std::int64_t dur_ns{0};
  };
  std::map<std::string, SpanAgg> span_aggs;
  std::map<std::string, std::uint64_t> inst_aggs;
  sink.for_each([&](const TraceRecord& r) {
    const std::string key = std::string(r.name) + '|' + r.cat;
    if (r.kind == RecordKind::span_end) {
      SpanAgg& a = span_aggs[key];
      ++a.n;
      if (std::strcmp(r.status, "aborted") == 0) {
        ++a.aborted;
      } else if (std::strcmp(r.status, "ok") != 0) {
        ++a.errors;
      }
      if (r.args[0].key != nullptr) a.dur_ns += r.args[0].value;
    } else if (r.kind == RecordKind::instant) {
      ++inst_aggs[key];
    }
  });
  std::map<std::string, std::uint64_t> open_aggs;
  // bslint: allow(det-unordered-iter): counts aggregate into an ordered map
  for (const auto& [id, os] : sink.open()) {
    ++open_aggs[std::string(os.name) + '|' + os.cat];
  }

  std::string out = "# bs-trace-digest v1\n";
  append_fmt(out,
             "records=%zu dropped=%llu stray_ends=%llu open=%zu last_ns=%lld\n",
             sink.size(), static_cast<unsigned long long>(sink.dropped()),
             static_cast<unsigned long long>(sink.stray_ends()),
             sink.open_spans(), static_cast<long long>(sink.last_time()));
  append_fmt(out, "stream=%016llx\n",
             static_cast<unsigned long long>(trace_hash(sink)));
  for (const auto& [key, a] : span_aggs) {
    append_fmt(out, "span %s n=%llu aborted=%llu err=%llu dur_ns=%lld\n",
               key.c_str(), static_cast<unsigned long long>(a.n),
               static_cast<unsigned long long>(a.aborted),
               static_cast<unsigned long long>(a.errors),
               static_cast<long long>(a.dur_ns));
  }
  for (const auto& [key, n] : inst_aggs) {
    append_fmt(out, "inst %s n=%llu\n", key.c_str(),
               static_cast<unsigned long long>(n));
  }
  for (const auto& [key, n] : open_aggs) {
    append_fmt(out, "open %s n=%llu\n", key.c_str(),
               static_cast<unsigned long long>(n));
  }
  return out;
}

std::string metrics_digest(const MetricsRegistry& reg, SimTime now) {
  std::string out;
  append_fmt(out, "# bs-metrics v1 now_ns=%lld\n", static_cast<long long>(now));
  reg.for_each([&](const MetricsRegistry::Entry& e) {
    switch (e.kind) {
      case MetricsRegistry::Kind::counter:
        append_fmt(out, "ctr %s %llu\n", e.name.c_str(),
                   static_cast<unsigned long long>(e.counter.value()));
        break;
      case MetricsRegistry::Kind::gauge:
        append_fmt(out, "gge %s last=%s avg=%s n=%llu\n", e.name.c_str(),
                   fmt_g(e.gauge.value()).c_str(),
                   fmt_g(e.gauge.average(now)).c_str(),
                   static_cast<unsigned long long>(e.gauge.samples()));
        break;
      case MetricsRegistry::Kind::histogram:
        append_fmt(out, "hst %s count=%llu mean=%s p50=%s p99=%s max=%s\n",
                   e.name.c_str(),
                   static_cast<unsigned long long>(e.hist->count()),
                   fmt_g(e.hist->mean()).c_str(),
                   fmt_g(e.hist->quantile(0.50)).c_str(),
                   fmt_g(e.hist->quantile(0.99)).c_str(),
                   fmt_g(e.hist->max()).c_str());
        break;
    }
  });
  return out;
}

std::string metrics_csv(const MetricsRegistry& reg, SimTime now) {
  std::string out = "name,kind,field,value\n";
  reg.for_each([&](const MetricsRegistry::Entry& e) {
    switch (e.kind) {
      case MetricsRegistry::Kind::counter:
        append_fmt(out, "%s,counter,value,%llu\n", e.name.c_str(),
                   static_cast<unsigned long long>(e.counter.value()));
        break;
      case MetricsRegistry::Kind::gauge:
        append_fmt(out, "%s,gauge,last,%s\n", e.name.c_str(),
                   fmt_g(e.gauge.value()).c_str());
        append_fmt(out, "%s,gauge,avg,%s\n", e.name.c_str(),
                   fmt_g(e.gauge.average(now)).c_str());
        break;
      case MetricsRegistry::Kind::histogram:
        append_fmt(out, "%s,histogram,count,%llu\n", e.name.c_str(),
                   static_cast<unsigned long long>(e.hist->count()));
        append_fmt(out, "%s,histogram,mean,%s\n", e.name.c_str(),
                   fmt_g(e.hist->mean()).c_str());
        append_fmt(out, "%s,histogram,p50,%s\n", e.name.c_str(),
                   fmt_g(e.hist->quantile(0.50)).c_str());
        append_fmt(out, "%s,histogram,p99,%s\n", e.name.c_str(),
                   fmt_g(e.hist->quantile(0.99)).c_str());
        break;
    }
  });
  return out;
}

void SampleLog::sample(const MetricsRegistry& reg, SimTime now) {
  reg.for_each([&](const MetricsRegistry::Entry& e) {
    switch (e.kind) {
      case MetricsRegistry::Kind::counter:
        series_[e.name].append(now, static_cast<double>(e.counter.value()));
        break;
      case MetricsRegistry::Kind::gauge:
        series_[e.name].append(now, e.gauge.value());
        break;
      case MetricsRegistry::Kind::histogram:
        break;  // summarized by metrics_digest/csv instead
    }
  });
}

const TimeSeries* SampleLog::find(const std::string& name) const {
  auto it = series_.find(name);
  return it != series_.end() ? &it->second : nullptr;
}

std::string SampleLog::csv() const {
  std::string out = "time_s,name,value\n";
  for (const auto& [name, ts] : series_) {
    for (const Sample& s : ts.samples()) {
      append_fmt(out, "%.6f,%s,%s\n", simtime::to_seconds(s.time),
                 name.c_str(), fmt_g(s.value).c_str());
    }
  }
  return out;
}

}  // namespace bs::obs
