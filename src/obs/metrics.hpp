// Deterministic observability plane, part 2: a process-wide metrics
// registry. Counters, sim-time-weighted gauges and histograms are created
// lazily by name; iteration order is insertion order, so exports are
// deterministic. Modules (rpc, blob, mon, fault, core) register into the
// installed registry through the cheap helpers at the bottom — each helper
// is a single global-pointer null check when no registry is installed, and
// a compile-time no-op with BS_TRACE=OFF.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace bs::obs {

/// Monotonic event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_{0};
};

/// Last-value gauge that also tracks its sim-time-weighted average: each
/// set() weights the previous value by the sim time it was held. A gauge
/// observed over a zero-length interval averages to its current value.
class Gauge {
 public:
  void set(double v, SimTime now);

  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  /// Time-weighted mean over [first_set, max(now, last_set)].
  [[nodiscard]] double average(SimTime now) const;

 private:
  double value_{0.0};
  SimTime first_{0};
  SimTime last_{0};
  double weighted_{0.0};
  std::uint64_t samples_{0};
};

/// Named-metric registry. Lookup is by exact name; the shape parameters of
/// a histogram are fixed by its first creation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, double lo = 0.0,
                       double hi = 1000.0, std::size_t bins = 100);

  enum class Kind : std::uint8_t { counter, gauge, histogram };
  struct Entry {
    Kind kind{Kind::counter};
    std::string name;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> hist;
  };

  /// Visits entries in insertion order (deterministic export order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& e : order_) fn(*e);
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  void reset();

 private:
  // Transparent hash/equality: lookups take the string_view as-is, so a
  // counter bump from a `const char*` site never materializes a
  // std::string (for names past SSO that was a heap allocation per bump).
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct NameEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  Entry& entry(std::string_view name, Kind kind);

  std::vector<std::unique_ptr<Entry>> order_;
  std::unordered_map<std::string, Entry*, NameHash, NameEq> index_;
};

// ---------------------------------------------------------------- global hook

#ifdef BS_OBS_DISABLED
constexpr MetricsRegistry* metrics() { return nullptr; }
inline void set_metrics(MetricsRegistry*) {}
#else
namespace detail {
extern MetricsRegistry* g_metrics;
}
inline MetricsRegistry* metrics() { return detail::g_metrics; }
void set_metrics(MetricsRegistry* m);
#endif

/// RAII installer for the global registry.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry& m) { set_metrics(&m); }
  ~ScopedMetrics() { set_metrics(nullptr); }
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;
};

// ------------------------------------------------------- instrumentation API

inline void count(const char* name, std::uint64_t n = 1) {
  if (auto* m = metrics()) m->counter(name).inc(n);
}

inline void gauge_set(const char* name, double v, SimTime now) {
  if (auto* m = metrics()) m->gauge(name).set(v, now);
}

inline void observe(const char* name, double v, double lo = 0.0,
                    double hi = 1000.0, std::size_t bins = 100) {
  if (auto* m = metrics()) m->histogram(name, lo, hi, bins).add(v);
}

}  // namespace bs::obs
