#include "obs/trace.hpp"

#include <algorithm>

namespace bs::obs {

#ifndef BS_OBS_DISABLED
namespace detail {
TraceSink* g_sink = nullptr;
}
void set_sink(TraceSink* s) { detail::g_sink = s; }
#endif

void Span::finish(const char* status) {
  if (sink_ == nullptr) return;
  sink_->end_span(id_, status);
  sink_ = nullptr;
}

TraceSink::TraceSink(TraceSinkOptions opts)
    : ring_(std::max<std::size_t>(1, opts.capacity)) {}

Span TraceSink::span(const char* name, const char* cat, SpanId parent,
                     TraceArg a, TraceArg b) {
  return Span(this, begin_span(name, cat, parent, a, b));
}

SpanId TraceSink::begin_span(const char* name, const char* cat, SpanId parent,
                             TraceArg a, TraceArg b) {
  const SpanId id = next_id_++;
  const SimTime t = now();
  TraceRecord r;
  r.time = t;
  r.kind = RecordKind::span_begin;
  r.id = id;
  r.parent = parent;
  r.name = name;
  r.cat = cat;
  r.args[0] = a;
  r.args[1] = b;
  push(r);
  open_.emplace(id, OpenSpan{name, cat, parent, t});
  return id;
}

void TraceSink::end_span(SpanId id, const char* status) {
  auto it = open_.find(id);
  if (it == open_.end()) {
    ++stray_ends_;
    return;
  }
  TraceRecord r;
  r.time = now();
  r.kind = RecordKind::span_end;
  r.id = id;
  r.parent = it->second.parent;
  r.name = it->second.name;
  r.cat = it->second.cat;
  r.status = status;
  r.args[0] = TraceArg{"dur_ns", r.time - it->second.begin};
  open_.erase(it);
  push(r);
}

void TraceSink::instant(const char* name, const char* cat, SpanId parent,
                        const char* detail, TraceArg a, TraceArg b) {
  TraceRecord r;
  r.time = now();
  r.kind = RecordKind::instant;
  r.parent = parent;
  r.name = name;
  r.cat = cat;
  r.status = detail;
  r.args[0] = a;
  r.args[1] = b;
  push(r);
}

void TraceSink::push(TraceRecord r) {
  last_time_ = std::max(last_time_, r.time);
  if (size_ == ring_.size()) {
    ring_[head_] = r;
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  } else {
    ring_[(head_ + size_) % ring_.size()] = r;
    ++size_;
  }
}

void TraceSink::clear() {
  head_ = size_ = 0;
  dropped_ = stray_ends_ = 0;
  last_time_ = 0;
  next_id_ = 1;
  open_.clear();
}

}  // namespace bs::obs
