#include "obs/metrics.hpp"

namespace bs::obs {

#ifndef BS_OBS_DISABLED
namespace detail {
MetricsRegistry* g_metrics = nullptr;
}
void set_metrics(MetricsRegistry* m) { detail::g_metrics = m; }
#endif

void Gauge::set(double v, SimTime now) {
  if (samples_ == 0) {
    first_ = last_ = now;
  } else if (now > last_) {
    weighted_ += value_ * static_cast<double>(now - last_);
    last_ = now;
  }
  // A set() at (or before) the previous timestamp replaces the value
  // without accruing weight: zero-length intervals carry no mass.
  value_ = v;
  ++samples_;
}

double Gauge::average(SimTime now) const {
  if (samples_ == 0) return 0.0;
  const SimTime end = std::max(now, last_);
  const double total =
      weighted_ + value_ * static_cast<double>(end - last_);
  const SimTime span = end - first_;
  return span > 0 ? total / static_cast<double>(span) : value_;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               Kind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) return *it->second;
  auto e = std::make_unique<Entry>();
  e->kind = kind;
  e->name = std::string(name);
  Entry* raw = e.get();
  order_.push_back(std::move(e));
  index_.emplace(raw->name, raw);
  return *raw;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return entry(name, Kind::counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return entry(name, Kind::gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins) {
  Entry& e = entry(name, Kind::histogram);
  if (!e.hist) e.hist = std::make_unique<Histogram>(lo, hi, bins);
  return *e.hist;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  auto it = index_.find(name);
  return it != index_.end() && it->second->kind == Kind::counter
             ? &it->second->counter
             : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  auto it = index_.find(name);
  return it != index_.end() && it->second->kind == Kind::gauge
             ? &it->second->gauge
             : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(
    std::string_view name) const {
  auto it = index_.find(name);
  return it != index_.end() && it->second->kind == Kind::histogram
             ? it->second->hist.get()
             : nullptr;
}

void MetricsRegistry::reset() {
  order_.clear();
  index_.clear();
}

}  // namespace bs::obs
