// Deterministic observability plane, part 3: exporters.
//
//  * chrome_trace_json — Chrome trace_event JSON (loadable in
//    chrome://tracing and Perfetto). Spans are lane-packed onto synthetic
//    tids so every tid carries a strictly nested, balanced B/E sequence
//    even though sim coroutines overlap freely; spans still open at export
//    time are closed with status "open" so the stream stays balanced.
//  * trace_digest — compact deterministic text: per-(name|cat) span and
//    instant aggregates plus a 64-bit FNV hash over every record field.
//    Two runs are bit-identical iff their digests match; golden tests pin
//    this format.
//  * metrics_digest / metrics_csv — registry contents in insertion order.
//  * SampleLog — periodic registry sampling into TimeSeries + CSV, the
//    bridge into bs::viz charts.
//
// Determinism rules: records carry sim time only (no wall clocks), ids are
// sequential per sink, exports iterate ring / insertion order, doubles are
// printed with fixed %.6g formatting.
#pragma once

#include <map>
#include <string>

#include "common/timeseries.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bs::obs {

/// Chrome trace_event JSON object {"traceEvents": [...]}; `ts` is sim time
/// in microseconds (monotone non-decreasing in stream order).
[[nodiscard]] std::string chrome_trace_json(const TraceSink& sink);

/// Compact deterministic text digest of the trace (see header comment).
[[nodiscard]] std::string trace_digest(const TraceSink& sink);

/// 64-bit FNV-1a over every record field, the raw determinism fingerprint.
[[nodiscard]] std::uint64_t trace_hash(const TraceSink& sink);

/// Registry contents as deterministic text lines (`ctr|gge|hst name ...`).
[[nodiscard]] std::string metrics_digest(const MetricsRegistry& reg,
                                         SimTime now);

/// Registry contents as CSV (`name,kind,field,value` rows).
[[nodiscard]] std::string metrics_csv(const MetricsRegistry& reg,
                                      SimTime now);

/// Periodically samples counters/gauges into per-metric TimeSeries for the
/// visualization tool, and exports them as `time_s,name,value` CSV.
class SampleLog {
 public:
  /// Appends one sample per counter/gauge currently in the registry.
  void sample(const MetricsRegistry& reg, SimTime now);

  [[nodiscard]] const std::map<std::string, TimeSeries>& series() const {
    return series_;
  }
  [[nodiscard]] const TimeSeries* find(const std::string& name) const;

  [[nodiscard]] std::string csv() const;

 private:
  std::map<std::string, TimeSeries> series_;  // ordered => deterministic
};

}  // namespace bs::obs
