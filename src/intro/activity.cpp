#include "intro/activity.hpp"

#include <algorithm>

namespace bs::intro {

void UserActivityHistory::ingest(const mon::Record& record) {
  if (record.key.domain != mon::Domain::client) return;
  PerClient& pc = clients_[record.key.id];
  auto& ts = pc.metrics[record.key.metric];
  const SimTime t =
      ts.empty() ? record.time : std::max(record.time, ts.back().time);
  ts.append(t, record.value);
  if (record.value > 0) pc.last_activity = std::max(pc.last_activity, t);
  ++ingested_;
}

double UserActivityHistory::total(ClientId client, mon::Metric metric,
                                  SimDuration window, SimTime now) const {
  auto cit = clients_.find(client.value);
  if (cit == clients_.end()) return 0;
  auto mit = cit->second.metrics.find(metric);
  if (mit == cit->second.metrics.end()) return 0;
  // Half-open trailing window (now - window, now].
  double sum = 0;
  for (const auto& s : mit->second.range(now - window + 1, now + 1)) {
    sum += s.value;
  }
  return sum;
}

double UserActivityHistory::rate(ClientId client, mon::Metric metric,
                                 SimDuration window, SimTime now) const {
  const double w = simtime::to_seconds(window);
  return w > 0 ? total(client, metric, window, now) / w : 0;
}

std::vector<ClientId> UserActivityHistory::active_clients(
    SimDuration window, SimTime now) const {
  std::vector<ClientId> out;
  for (const auto& [id, pc] : clients_) {
    if (pc.last_activity + window >= now && pc.last_activity > 0) {
      out.push_back(ClientId{id});
    }
  }
  return out;
}

const TimeSeries* UserActivityHistory::series(ClientId client,
                                              mon::Metric metric) const {
  auto cit = clients_.find(client.value);
  if (cit == clients_.end()) return nullptr;
  auto mit = cit->second.metrics.find(metric);
  return mit == cit->second.metrics.end() ? nullptr : &mit->second;
}

void UserActivityHistory::prune(SimTime now) {
  const SimTime cutoff = now - retention_;
  if (cutoff <= 0) return;
  for (auto& [id, pc] : clients_) {
    for (auto& [metric, ts] : pc.metrics) {
      auto keep = ts.range(cutoff, simtime::kInfinite);
      TimeSeries pruned;
      for (const auto& s : keep) pruned.append(s.time, s.value);
      ts = std::move(pruned);
    }
  }
}

}  // namespace bs::intro
