#include "intro/introspection.hpp"

#include <algorithm>

namespace bs::intro {

IntrospectionService::IntrospectionService(rpc::Node& node,
                                           IntrospectionOptions options)
    : node_(node), options_(options), activity_(options.retention) {
  node_.serve<mon::MonStoreReq, mon::MonStoreResp>(
      [this](const mon::MonStoreReq& req,
             const rpc::Envelope&) -> sim::Task<Result<mon::MonStoreResp>> {
        for (const auto& r : req.batch()) ingest(r);
        mon::MonStoreResp resp;
        resp.accepted = req.batch().size();
        co_return resp;
      });
}

void IntrospectionService::start() {
  if (running_) return;
  running_ = true;
  node_.cluster().sim().spawn(prune_loop());
}

sim::Task<void> IntrospectionService::prune_loop() {
  auto& sim = node_.cluster().sim();
  while (running_ && node_.up()) {
    co_await sim.delay(options_.prune_interval);
    if (!running_) break;
    activity_.prune(sim.now());
    const SimTime cutoff = sim.now() - options_.retention;
    if (cutoff > 0) {
      // Per-series transform, no cross-series state: order-insensitive.
      series_.for_each_unordered([&](const mon::RecordKey&, TimeSeries& ts) {
        auto keep = ts.range(cutoff, simtime::kInfinite);
        TimeSeries pruned;
        for (const auto& s : keep) pruned.append(s.time, s.value);
        ts = std::move(pruned);
      });
    }
  }
}

void IntrospectionService::ingest(const mon::Record& record) {
  ++ingested_;
  if (record.key.domain == mon::Domain::client) {
    activity_.ingest(record);
    return;
  }
  TimeSeries& ts = series_.at(series_.intern(record.key));
  const SimTime t =
      ts.empty() ? record.time : std::max(record.time, ts.back().time);
  ts.append(t, record.value);
}

const TimeSeries* IntrospectionService::series(
    const mon::RecordKey& key) const {
  return series_.find(key);
}

std::vector<mon::RecordKey> IntrospectionService::keys() const {
  return series_.sorted_keys();
}

SystemSnapshot IntrospectionService::snapshot() const {
  const SimTime now = node_.cluster().sim().now();
  const SimTime from = now - options_.analysis_window;
  const double window_sec = simtime::to_seconds(options_.analysis_window);

  SystemSnapshot snap;
  snap.time = now;

  std::map<std::uint64_t, SystemSnapshot::ProviderInfo> providers;
  std::map<std::uint64_t, SystemSnapshot::BlobInfo> blobs;
  RunningStats cpu_stats;

  // Sorted traversal: the floating-point accumulations below are evaluated
  // in key order, matching the std::map iteration this store replaced.
  series_.for_each_sorted([&](const mon::RecordKey& key,
                              const TimeSeries& ts) {
    if (ts.empty()) return;
    switch (key.domain) {
      case mon::Domain::provider: {
        auto& p = providers[key.id];
        p.node = NodeId{key.id};
        const Sample& last = ts.back();
        switch (key.metric) {
          case mon::Metric::used_bytes:
            p.used = last.value;
            p.updated = std::max(p.updated, last.time);
            break;
          case mon::Metric::capacity_bytes:
            p.capacity = last.value;
            break;
          case mon::Metric::chunk_count:
            p.chunks = last.value;
            break;
          case mon::Metric::store_rate:
            p.store_rate = ts.mean(from, now + 1, 0.0);
            break;
          default:
            break;
        }
        break;
      }
      case mon::Domain::blob: {
        auto& b = blobs[key.id];
        b.blob = BlobId{key.id};
        double sum = 0;
        for (const auto& s : ts.range(from, now + 1)) sum += s.value;
        switch (key.metric) {
          case mon::Metric::blob_read_bytes:
            b.read_rate = window_sec > 0 ? sum / window_sec : 0;
            break;
          case mon::Metric::blob_write_bytes:
            b.write_rate = window_sec > 0 ? sum / window_sec : 0;
            break;
          case mon::Metric::blob_versions:
            b.versions = sum;
            break;
          default:
            break;
        }
        break;
      }
      case mon::Domain::node: {
        if (key.metric == mon::Metric::cpu_load) {
          const double v = ts.value_at(now, 0.0);
          cpu_stats.add(v);
        }
        break;
      }
      default:
        break;
    }
  });

  // Node CPU attribution onto providers.
  for (auto& [id, p] : providers) {
    if (const TimeSeries* cpu =
            series(mon::RecordKey{mon::Domain::node, id,
                                  mon::Metric::cpu_load})) {
      p.cpu = cpu->value_at(now, 0.0);
    }
    if (const TimeSeries* mem =
            series(mon::RecordKey{mon::Domain::node, id,
                                  mon::Metric::mem_used})) {
      p.mem = mem->value_at(now, 0.0);
    }
    snap.providers.push_back(p);
    snap.total_used += p.used;
    snap.total_capacity += p.capacity;
    snap.aggregate_write_rate += p.store_rate;
  }
  for (auto& [id, b] : blobs) {
    snap.aggregate_read_rate += b.read_rate;
    snap.blobs.push_back(b);
  }
  snap.avg_cpu = cpu_stats.mean();
  snap.max_cpu = cpu_stats.max();

  const auto active =
      activity_.active_clients(options_.analysis_window, now);
  snap.active_clients = active.size();
  for (ClientId c : active) {
    snap.rejected_rate += activity_.rate(c, mon::Metric::rejected_ops,
                                         options_.analysis_window, now);
  }
  return snap;
}

}  // namespace bs::intro
