// Introspection layer (§III-B layer 1): an actor that receives the
// aggregated record stream pushed by the monitoring services and distills it
// into "relevant information related to the state and the behavior of the
// system, which can be fed as input to various higher-level self-*
// components": per-provider storage state, BLOB access patterns, per-user
// activity history, and whole-system snapshots for the autonomic engine.
#pragma once

#include "common/stats.hpp"
#include "intro/activity.hpp"
#include "mon/messages.hpp"
#include "mon/series_table.hpp"
#include "rpc/rpc.hpp"

namespace bs::intro {

/// Point-in-time digest of the whole system, the "knowledge" input of the
/// MAPE-K loop.
struct SystemSnapshot {
  SimTime time{0};

  struct ProviderInfo {
    NodeId node;
    double used{0};
    double capacity{0};
    double chunks{0};
    double store_rate{0};  ///< bytes/s over the analysis window
    double cpu{0};
    double mem{0};
    SimTime updated{0};
  };
  std::vector<ProviderInfo> providers;

  struct BlobInfo {
    BlobId blob;
    double read_rate{0};   ///< bytes/s
    double write_rate{0};  ///< bytes/s
    double versions{0};    ///< versions published in the window
  };
  std::vector<BlobInfo> blobs;

  double total_used{0};
  double total_capacity{0};
  double aggregate_write_rate{0};  ///< bytes/s across providers
  double aggregate_read_rate{0};
  double avg_cpu{0};
  double max_cpu{0};
  std::size_t active_clients{0};
  double rejected_rate{0};  ///< rejections/s across clients

  /// Provider health tally (from the provider manager's failure tracking);
  /// filled by the autonomic controller when it enriches the snapshot.
  std::size_t providers_alive{0};
  std::size_t providers_suspect{0};
  std::size_t providers_dead{0};

  [[nodiscard]] double utilization() const {
    return total_capacity > 0 ? total_used / total_capacity : 0;
  }
};

struct IntrospectionOptions {
  SimDuration retention{simtime::minutes(10)};
  SimDuration prune_interval{simtime::seconds(30)};
  SimDuration analysis_window{simtime::seconds(10)};
};

class IntrospectionService {
 public:
  IntrospectionService(rpc::Node& node,
                       IntrospectionOptions options = IntrospectionOptions());

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] UserActivityHistory& activity() { return activity_; }
  [[nodiscard]] const UserActivityHistory& activity() const {
    return activity_;
  }

  /// Builds a snapshot over the configured analysis window.
  [[nodiscard]] SystemSnapshot snapshot() const;

  /// Raw series access for visualization (provider/blob/node/system data
  /// retained here mirrors what the storage servers persist).
  [[nodiscard]] const TimeSeries* series(const mon::RecordKey& key) const;
  [[nodiscard]] std::vector<mon::RecordKey> keys() const;

  [[nodiscard]] std::uint64_t records_ingested() const { return ingested_; }

 private:
  sim::Task<void> prune_loop();
  void ingest(const mon::Record& record);

  rpc::Node& node_;
  IntrospectionOptions options_;
  UserActivityHistory activity_;
  // Interned store: hashed O(1) ingest; snapshot()/keys() traverse in
  // sorted key order so aggregation and the viz layer see the order the
  // std::map this replaces used to give them.
  mon::SeriesTable series_;
  bool running_{false};
  std::uint64_t ingested_{0};
};

}  // namespace bs::intro
