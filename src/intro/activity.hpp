// User Activity History — "a container for monitoring data collected through
// monitoring mechanisms specific to each storage system" (§III-C). The
// security framework's detection engine scans it through the rate/total
// query API; it is fed per-interval client-domain records pushed by the
// monitoring services.
#pragma once

#include <map>
#include <vector>

#include "common/timeseries.hpp"
#include "mon/record.hpp"

namespace bs::intro {

class UserActivityHistory {
 public:
  explicit UserActivityHistory(SimDuration retention = simtime::minutes(10))
      : retention_(retention) {}

  /// Ingests one client-domain record (others are ignored).
  void ingest(const mon::Record& record);

  /// Sum of a per-interval metric over the trailing window.
  [[nodiscard]] double total(ClientId client, mon::Metric metric,
                             SimDuration window, SimTime now) const;

  /// Per-second rate of a metric over the trailing window.
  [[nodiscard]] double rate(ClientId client, mon::Metric metric,
                            SimDuration window, SimTime now) const;

  /// Clients with any activity inside the window.
  [[nodiscard]] std::vector<ClientId> active_clients(SimDuration window,
                                                     SimTime now) const;

  /// Full per-metric series of one client (viz, tests).
  [[nodiscard]] const TimeSeries* series(ClientId client,
                                         mon::Metric metric) const;

  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] std::uint64_t records_ingested() const { return ingested_; }

  /// Drops samples older than the retention horizon.
  void prune(SimTime now);

 private:
  struct PerClient {
    std::map<mon::Metric, TimeSeries> metrics;
    SimTime last_activity{0};
  };

  SimDuration retention_;
  std::map<std::uint64_t, PerClient> clients_;
  std::uint64_t ingested_{0};
};

}  // namespace bs::intro
