// S3Gateway: an S3-interface-compatible storage service whose back end is
// BlobSeer — the Cumulus integration the paper reports preliminary results
// for in §V. Each object maps to one BLOB (object overwrites become new
// BLOB versions, so objects inherit BlobSeer's snapshot history); operations
// authenticate through per-bucket/per-object ACLs, and every user's traffic
// reaches BlobSeer under that user's identity so the self-protection
// framework sees end users, not the gateway.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "blob/client.hpp"
#include "cloud/s3_types.hpp"

namespace bs::cloud {

// ------------------------------------------------------------- S3 messages

struct S3CreateBucketReq {
  static constexpr const char* kName = "s3.create_bucket";
  std::string bucket;
  bool public_read{false};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 24 + bucket.size();
  }
};
struct S3CreateBucketResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct S3DeleteBucketReq {
  static constexpr const char* kName = "s3.delete_bucket";
  std::string bucket;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 24 + bucket.size();
  }
};
struct S3DeleteBucketResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct S3ListBucketsReq {
  static constexpr const char* kName = "s3.list_buckets";
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};
struct S3ListBucketsResp {
  std::vector<BucketInfo> buckets;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t n = 16;
    for (const auto& b : buckets) n += b.wire_size();
    return n;
  }
};

struct S3PutObjectReq {
  static constexpr const char* kName = "s3.put_object";
  static constexpr bool kPayloadToDisk = false;  // gateway relays to blobs
  std::string bucket;
  std::string key;
  blob::Payload payload;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + bucket.size() + key.size() + payload.size;
  }
};
struct S3PutObjectResp {
  std::uint64_t etag{0};
  blob::Version version{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 32; }
};

struct S3GetObjectReq {
  static constexpr const char* kName = "s3.get_object";
  std::string bucket;
  std::string key;
  std::uint64_t offset{0};
  std::uint64_t length{std::numeric_limits<std::uint64_t>::max()};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + bucket.size() + key.size();
  }
};
struct S3GetObjectResp {
  blob::Payload payload;
  std::uint64_t etag{0};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 40 + payload.size;
  }
};

struct S3HeadObjectReq {
  static constexpr const char* kName = "s3.head_object";
  std::string bucket;
  std::string key;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 32 + bucket.size() + key.size();
  }
};
struct S3HeadObjectResp {
  ObjectInfo info;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + info.wire_size();
  }
};

struct S3DeleteObjectReq {
  static constexpr const char* kName = "s3.delete_object";
  std::string bucket;
  std::string key;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 32 + bucket.size() + key.size();
  }
};
struct S3DeleteObjectResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct S3ListObjectsReq {
  static constexpr const char* kName = "s3.list_objects";
  std::string bucket;
  std::string prefix;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 32 + bucket.size() + prefix.size();
  }
};
struct S3ListObjectsResp {
  std::vector<ObjectInfo> objects;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t n = 16;
    for (const auto& o : objects) n += o.wire_size();
    return n;
  }
};

struct S3SetAclReq {
  static constexpr const char* kName = "s3.set_acl";
  std::string bucket;
  ClientId grantee{};
  Permission permission{Permission::read};
  bool public_read{false};
  bool set_public_read{false};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 40 + bucket.size();
  }
};
struct S3SetAclResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

// ----------------------------------------------------------------- gateway

struct GatewayOptions {
  std::uint64_t object_chunk_size{4 * units::MB};
  std::uint32_t replication{1};
};

class S3Gateway {
 public:
  S3Gateway(rpc::Node& node, blob::BlobClient::Endpoints endpoints,
            GatewayOptions options = GatewayOptions());

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

 private:
  struct Bucket {
    BucketInfo info;
    Acl acl;
    std::map<std::string, ObjectInfo> objects;
  };

  void register_handlers();

  /// Per-user BlobSeer client on the gateway node, so BlobSeer attributes
  /// the traffic to the end user (required for self-protection).
  blob::BlobClient& client_for(ClientId user);

  Result<Bucket*> bucket_checked(const std::string& name, ClientId who,
                                 Permission want);

  rpc::Node& node_;
  blob::BlobClient::Endpoints endpoints_;
  GatewayOptions options_;
  std::map<std::string, Bucket> buckets_;
  std::map<std::uint64_t, std::unique_ptr<blob::BlobClient>> clients_;
  std::uint64_t requests_{0};
};

}  // namespace bs::cloud
