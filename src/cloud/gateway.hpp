// S3Gateway: an S3-interface-compatible storage service whose back end is
// BlobSeer — the Cumulus integration the paper reports preliminary results
// for in §V. Objects are manifests of content-addressed chunks stored in a
// shared, provider-striped chunk-store blob: identical chunk hashes across
// tenants and object versions share one stored chunk (refcounted dedup), a
// multipart path uploads parts concurrently through the BlobSeer client's
// bounded-parallel put pipeline, and a delta-sync path ships only chunks
// whose hashes differ from a named base version. Bucket/object metadata and
// the dedup index are journal-backed (PR 7 model) so they survive gateway
// crash/recovery. Every user's traffic reaches BlobSeer under that user's
// identity so the self-protection framework sees end users, not the
// gateway.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "blob/client.hpp"
#include "blob/journal.hpp"
#include "cloud/dedup_index.hpp"
#include "cloud/s3_types.hpp"

namespace bs::cloud {

// ------------------------------------------------------------- S3 messages

struct S3CreateBucketReq {
  static constexpr const char* kName = "s3.create_bucket";
  std::string bucket;
  bool public_read{false};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 24 + bucket.size();
  }
};
struct S3CreateBucketResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct S3DeleteBucketReq {
  static constexpr const char* kName = "s3.delete_bucket";
  std::string bucket;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 24 + bucket.size();
  }
};
struct S3DeleteBucketResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct S3ListBucketsReq {
  static constexpr const char* kName = "s3.list_buckets";
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};
struct S3ListBucketsResp {
  std::vector<BucketInfo> buckets;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t n = 16;
    for (const auto& b : buckets) n += b.wire_size();
    return n;
  }
};

struct S3PutObjectReq {
  static constexpr const char* kName = "s3.put_object";
  static constexpr bool kPayloadToDisk = false;  // gateway relays to blobs
  std::string bucket;
  std::string key;
  blob::Payload payload;
  /// Optional per-chunk content checksums for synthetic payloads, so
  /// workload generators can model chunk-level content identity without
  /// shipping real bytes (real-byte payloads are sliced and hashed at the
  /// gateway). Size must be the object's chunk count when present.
  std::vector<std::uint64_t> chunk_sums;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + bucket.size() + key.size() + payload.size +
           8 * chunk_sums.size();
  }
};
struct S3PutObjectResp {
  std::uint64_t etag{0};
  blob::Version version{0};
  std::uint32_t chunks{0};
  std::uint32_t chunks_deduped{0};  ///< provider writes skipped
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};

struct S3GetObjectReq {
  static constexpr const char* kName = "s3.get_object";
  std::string bucket;
  std::string key;
  std::uint64_t offset{0};
  std::uint64_t length{std::numeric_limits<std::uint64_t>::max()};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + bucket.size() + key.size();
  }
};
struct S3GetObjectResp {
  blob::Payload payload;
  std::uint64_t etag{0};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 40 + payload.size;
  }
};

struct S3HeadObjectReq {
  static constexpr const char* kName = "s3.head_object";
  std::string bucket;
  std::string key;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 32 + bucket.size() + key.size();
  }
};
struct S3HeadObjectResp {
  ObjectInfo info;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 16 + info.wire_size();
  }
};

struct S3DeleteObjectReq {
  static constexpr const char* kName = "s3.delete_object";
  std::string bucket;
  std::string key;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 32 + bucket.size() + key.size();
  }
};
struct S3DeleteObjectResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

struct S3ListObjectsReq {
  static constexpr const char* kName = "s3.list_objects";
  std::string bucket;
  std::string prefix;
  /// Paging: return keys strictly after `marker`, at most `max_keys`
  /// (0 = server cap). The response says whether it was truncated and
  /// where to resume.
  std::string marker;
  std::uint64_t max_keys{0};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 40 + bucket.size() + prefix.size() + marker.size();
  }
};
struct S3ListObjectsResp {
  std::vector<ObjectInfo> objects;
  bool truncated{false};
  std::string next_marker;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t n = 24 + next_marker.size();
    for (const auto& o : objects) n += o.wire_size();
    return n;
  }
};

struct S3SetAclReq {
  static constexpr const char* kName = "s3.set_acl";
  std::string bucket;
  ClientId grantee{};
  Permission permission{Permission::read};
  bool public_read{false};
  bool set_public_read{false};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 40 + bucket.size();
  }
};
struct S3SetAclResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

// -------------------------------------------------- multipart + delta sync

struct S3CreateMultipartReq {
  static constexpr const char* kName = "s3.create_multipart";
  std::string bucket;
  std::string key;
  [[nodiscard]] std::uint64_t wire_size() const {
    return 32 + bucket.size() + key.size();
  }
};
struct S3CreateMultipartResp {
  std::uint64_t upload_id{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 24; }
};

struct S3UploadPartReq {
  static constexpr const char* kName = "s3.upload_part";
  static constexpr bool kPayloadToDisk = false;
  std::string bucket;
  std::string key;
  std::uint64_t upload_id{0};
  std::uint32_t part_number{0};  ///< 1-based
  blob::Payload payload;
  std::vector<std::uint64_t> chunk_sums;  ///< as in S3PutObjectReq
  [[nodiscard]] std::uint64_t wire_size() const {
    return 64 + bucket.size() + key.size() + payload.size +
           8 * chunk_sums.size();
  }
};
struct S3UploadPartResp {
  std::uint64_t etag{0};
  std::uint32_t chunks{0};
  std::uint32_t chunks_deduped{0};
  /// True when the part was already committed with the same etag (a
  /// resumed retry after a crashed upload): no chunk was re-ingested.
  bool resumed{false};
  [[nodiscard]] std::uint64_t wire_size() const { return 33; }
};

struct S3CompleteMultipartReq {
  static constexpr const char* kName = "s3.complete_multipart";
  std::string bucket;
  std::string key;
  std::uint64_t upload_id{0};
  std::uint32_t part_count{0};  ///< parts 1..part_count must be committed
  [[nodiscard]] std::uint64_t wire_size() const {
    return 48 + bucket.size() + key.size();
  }
};
struct S3CompleteMultipartResp {
  std::uint64_t etag{0};
  std::uint64_t size{0};
  blob::Version version{0};
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};

struct S3AbortMultipartReq {
  static constexpr const char* kName = "s3.abort_multipart";
  std::string bucket;
  std::string key;
  std::uint64_t upload_id{0};
  [[nodiscard]] std::uint64_t wire_size() const {
    return 40 + bucket.size() + key.size();
  }
};
struct S3AbortMultipartResp {
  [[nodiscard]] std::uint64_t wire_size() const { return 16; }
};

/// One changed chunk of a delta upload.
struct S3DeltaChunk {
  std::uint64_t index{0};  ///< chunk index in the new object layout
  blob::Payload payload;
  [[nodiscard]] std::uint64_t wire_size() const { return 16 + payload.size; }
};

/// Overwrite an object by shipping only the chunks whose content changed
/// relative to the current version (named by its etag); unchanged chunks
/// are shared with the base manifest. Wire cost is O(changed bytes).
struct S3PutDeltaReq {
  static constexpr const char* kName = "s3.put_delta";
  static constexpr bool kPayloadToDisk = false;
  std::string bucket;
  std::string key;
  std::uint64_t base_etag{0};  ///< etag the delta was computed against
  std::uint64_t new_size{0};
  std::uint64_t new_etag{0};  ///< whole-object etag of the new content
  std::vector<S3DeltaChunk> chunks;
  [[nodiscard]] std::uint64_t wire_size() const {
    std::uint64_t n = 64 + bucket.size() + key.size();
    for (const auto& c : chunks) n += c.wire_size();
    return n;
  }
};
struct S3PutDeltaResp {
  std::uint64_t etag{0};
  blob::Version version{0};
  std::uint32_t chunks_shipped{0};
  std::uint32_t chunks_shared{0};  ///< reused from the base version
  [[nodiscard]] std::uint64_t wire_size() const { return 40; }
};

// ----------------------------------------------------------------- gateway

struct GatewayOptions {
  std::uint64_t object_chunk_size{4 * units::MB};
  std::uint32_t replication{1};
  /// Content-addressed dedup across tenants and object versions. Off keeps
  /// the same manifest/refcount machinery but makes every ingested chunk
  /// unique, so every chunk pays a provider write (the ablation baseline).
  bool dedup{true};
  /// Bound on cached per-user BlobClients, idle-LRU evicted; 0 = unbounded.
  std::size_t max_user_clients{64};
  /// Concurrent store-chunk fetches per GET.
  std::uint32_t get_parallelism{8};
  /// Hard cap on a list_objects page (AWS S3 uses 1000).
  std::uint64_t max_keys_cap{1000};
  /// After a journal recovery, re-verify an index entry on its first dedup
  /// hit: the providers may have lost the chunk independently of the
  /// gateway, and a hit on a vanished chunk would corrupt the new object.
  bool verify_hits_after_recovery{true};
  /// Identity that owns the shared chunk-store blob and chunk reclamation.
  ClientId store_identity{0x5707E};
  /// WAL for bucket/object metadata and the dedup index (PR 7 model).
  blob::JournalOptions journal{};
};

/// Env-knob overrides: BS_GW_DEDUP=on|off, BS_GW_CHUNK_KB=<n>,
/// BS_GW_MAX_CLIENTS=<n>, BS_GW_JOURNAL=on|off.
GatewayOptions apply_gateway_env(GatewayOptions base);

/// Gateway-side counters (also exported through bs::obs as gateway.*).
struct GatewayStats {
  std::uint64_t puts{0};
  std::uint64_t gets{0};
  std::uint64_t deletes{0};
  std::uint64_t multipart_uploads{0};
  std::uint64_t parts{0};
  std::uint64_t parts_resumed{0};
  std::uint64_t delta_puts{0};
  std::uint64_t chunks_ingested{0};
  std::uint64_t dedup_hits{0};
  std::uint64_t dedup_misses{0};
  std::uint64_t bytes_ingested{0};      ///< logical object bytes received
  std::uint64_t bytes_saved{0};         ///< dedup hits: provider writes skipped
  std::uint64_t bytes_to_providers{0};  ///< chunk bytes actually stored
  std::uint64_t delta_bytes_shipped{0};
  std::uint64_t delta_bytes_shared{0};
  std::uint64_t chunks_reclaimed{0};
  std::uint64_t bytes_reclaimed{0};
  std::uint64_t clients_evicted{0};
  std::uint64_t parts_in_flight{0};
};

class S3Gateway {
 public:
  S3Gateway(rpc::Node& node, blob::BlobClient::Endpoints endpoints,
            GatewayOptions options = GatewayOptions());

  [[nodiscard]] NodeId id() const { return node_.id(); }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }
  [[nodiscard]] const GatewayStats& stats() const { return stats_; }
  [[nodiscard]] const ChunkIndex& index() const { return chunk_index_; }
  [[nodiscard]] std::size_t user_client_count() const {
    return clients_.size();
  }
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] const blob::RecoveryStats& recovery_stats() const {
    return rec_stats_;
  }
  /// Deterministic digest over buckets, objects, manifests and the dedup
  /// index; chaos suites compare it across replays and stepper modes.
  [[nodiscard]] std::uint64_t state_digest() const;

 private:
  struct ObjectRecord {
    ObjectInfo info;
    std::vector<ChunkRef> manifest;
  };
  struct Bucket {
    BucketInfo info;
    Acl acl;
    std::map<std::string, ObjectRecord> objects;
  };
  struct PartInfo {
    std::uint64_t size{0};
    std::uint64_t etag{0};
    std::vector<ChunkRef> manifest;
  };
  struct Mpu {
    std::string bucket;
    std::string key;
    ClientId owner{};
    std::map<std::uint32_t, PartInfo> parts;
  };
  struct UserClient {
    std::unique_ptr<blob::BlobClient> client;
    std::uint64_t last_used{0};  ///< LRU tick
    std::uint32_t active{0};     ///< in-flight handlers using it
  };

  /// Journal record. Field use is kind-specific; `a`/`b`/`c` are scalar
  /// slots (hash/upload id/refs/…) documented per kind in gateway.cpp.
  struct GwRecord {
    enum class Kind : std::uint8_t {
      create_bucket,  ///< bucket, acl, a = created_at
      delete_bucket,  ///< bucket
      set_acl,        ///< bucket, acl (full snapshot)
      put_object,     ///< bucket, key, info, manifest
      delete_object,  ///< bucket, key
      index_insert,   ///< manifest[0] = ref, replicas, b = nonce, c = refs
      index_ref,      ///< a = hash (one manifest occurrence)
      index_release,  ///< a = hash
      mpu_create,     ///< a = upload id, bucket, key, b = owner
      mpu_part,       ///< a = upload id, b = part no, info.{size,etag}, manifest
      mpu_drop,       ///< a = upload id
      store_blob,     ///< a = blob id
      counters,       ///< a = next upload id, b = unique-chunk nonce
    };
    Kind kind{Kind::counters};
    std::string bucket;
    std::string key;
    std::uint64_t a{0};
    std::uint64_t b{0};
    std::uint64_t c{0};
    ObjectInfo info;
    std::vector<ChunkRef> manifest;
    std::vector<NodeId> replicas;
    Acl acl;
  };

  /// What one ingest pass resolved: the manifest (every entry holds one
  /// in-flight pin in the index) plus the journal records for chunks that
  /// were freshly stored.
  struct IngestResult {
    std::vector<ChunkRef> manifest;
    std::vector<GwRecord> insert_records;
    std::uint32_t hits{0};
    std::uint32_t misses{0};
    std::uint64_t bytes_saved{0};
    std::uint64_t bytes_stored{0};
  };

  /// RAII pin on a cached per-user client so LRU eviction never destroys a
  /// BlobClient an in-flight handler still references.
  class ClientLease {
   public:
    ClientLease(S3Gateway* gw, std::uint64_t key, blob::BlobClient* client)
        : gw_(gw), key_(key), client_(client) {}
    ClientLease(const ClientLease&) = delete;
    ClientLease& operator=(const ClientLease&) = delete;
    ClientLease(ClientLease&& o) noexcept
        : gw_(o.gw_), key_(o.key_), client_(o.client_) {
      o.gw_ = nullptr;
    }
    ClientLease& operator=(ClientLease&&) = delete;
    ~ClientLease() {
      if (gw_ != nullptr) gw_->unpin_client(key_, client_);
    }
    [[nodiscard]] blob::BlobClient& operator*() const { return *client_; }

   private:
    S3Gateway* gw_;
    std::uint64_t key_;
    blob::BlobClient* client_;
  };

  void register_handlers();

  /// Per-user BlobSeer client on the gateway node, so BlobSeer attributes
  /// the traffic to the end user (required for self-protection). The lease
  /// pins the entry against LRU eviction for the handler's lifetime.
  ClientLease lease_client(ClientId user);
  void unpin_client(std::uint64_t key, blob::BlobClient* client);
  void evict_idle_clients();

  Result<Bucket*> bucket_checked(const std::string& name, ClientId who,
                                 Permission want);
  Bucket* find_bucket(const std::string& name);

  /// Splits an object/part payload into per-chunk payloads at the gateway
  /// chunk size (real bytes are sliced and checksummed; synthetic payloads
  /// use `chunk_sums` or derived per-chunk checksums).
  Result<std::vector<blob::Payload>> split_payload(
      const blob::Payload& payload,
      const std::vector<std::uint64_t>& chunk_sums) const;
  [[nodiscard]] std::uint64_t chunk_hash(const blob::Payload& p) const;

  /// Lazily creates the shared chunk-store blob (one per gateway).
  sim::Task<Result<BlobId>> ensure_store_blob();

  /// Content-addressed ingest: dedup-hit chunks are pinned, missed chunks
  /// are appended to the store blob in one new version through the user's
  /// client (bounded-parallel puts). On return every manifest entry holds
  /// one pin; commit with commit_ref or roll back with rollback_ingest.
  // bslint: allow(coro-ref-param): client is pinned by the handler's
  // ClientLease, held across the co_await of this task
  // bslint: allow(perf-large-byvalue): every caller moves the freshly
  // split batch; Payload bodies are shared_ptr-backed either way
  sim::Task<Result<IngestResult>> ingest_chunks(
      blob::BlobClient& client, std::vector<blob::Payload> chunks);
  void rollback_ingest(const IngestResult& ing);

  /// Releases one committed manifest occurrence per entry, appending the
  /// index_release records and queueing reclaimable chunks on `reclaims`.
  void release_manifest(const std::vector<ChunkRef>& manifest,
                        std::vector<GwRecord>& records,
                        std::vector<ChunkIndex::Entry>& reclaims);
  /// Fire-and-forget chunk removal on every replica of a reclaimed entry.
  void reclaim(std::vector<ChunkIndex::Entry> entries);

  // Journal plumbing (PR 7 model; mirrors DataProvider).
  static std::uint64_t record_bytes(const GwRecord& rec);
  void apply_record(const GwRecord& rec);
  std::vector<blob::Journal<GwRecord>::Entry> encode_checkpoint() const;
  void maybe_checkpoint();
  // bslint: allow(perf-large-byvalue): every caller moves its record batch
  sim::Task<Result<void>> journal_commit(std::vector<GwRecord> records);
  sim::Task<void> recover(std::uint64_t incarnation);
  void wipe();

  rpc::Node& node_;
  blob::BlobClient::Endpoints endpoints_;
  GatewayOptions options_;
  std::map<std::string, Bucket> buckets_;
  std::map<std::uint64_t, UserClient> clients_;
  std::uint64_t lru_tick_{0};
  std::uint64_t requests_{0};
  GatewayStats stats_;

  ChunkIndex chunk_index_;
  BlobId store_blob_{};
  /// In-flight store barrier per chunk hash: the first writer stores, the
  /// rest wait on the event and re-check the index.
  std::map<std::uint64_t, std::shared_ptr<sim::Event>> pending_stores_;
  std::shared_ptr<sim::Event> store_creating_;
  std::uint64_t nonce_{0};  ///< uniquifier for dedup-off chunk hashes
  std::map<std::uint64_t, Mpu> mpus_;
  std::uint64_t next_upload_id_{1};

  blob::Journal<GwRecord> journal_;
  bool recovering_{false};
  blob::RecoveryStats rec_stats_;
};

}  // namespace bs::cloud
