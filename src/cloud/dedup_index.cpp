#include "cloud/dedup_index.hpp"

#include <cassert>

#include "common/hash.hpp"

namespace bs::cloud {

ChunkIndex::Entry* ChunkIndex::find(std::uint64_t hash) {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

const ChunkIndex::Entry* ChunkIndex::find(std::uint64_t hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

ChunkIndex::Entry& ChunkIndex::insert(const ChunkRef& ref,
                                      std::vector<NodeId> replicas) {
  auto [it, inserted] = entries_.emplace(ref.hash, Entry{});
  assert(inserted && "chunk hash already indexed");
  it->second.ref = ref;
  it->second.replicas = std::move(replicas);
  it->second.pending = 1;
  bytes_ += ref.size;
  return it->second;
}

void ChunkIndex::pin(std::uint64_t hash) {
  if (Entry* e = find(hash)) ++e->pending;
}

std::optional<ChunkIndex::Entry> ChunkIndex::maybe_reclaim(
    std::map<std::uint64_t, Entry>::iterator it) {
  if (it->second.refs > 0 || it->second.pending > 0) return std::nullopt;
  Entry out = std::move(it->second);
  bytes_ -= out.ref.size;
  entries_.erase(it);
  return out;
}

std::optional<ChunkIndex::Entry> ChunkIndex::unpin(const ChunkRef& ref) {
  auto it = entries_.find(ref.hash);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.ref.store_index != ref.store_index) return std::nullopt;
  if (it->second.pending > 0) --it->second.pending;
  return maybe_reclaim(it);
}

void ChunkIndex::commit_ref(const ChunkRef& ref) {
  // Tolerates a missing or regenerated entry: a failed post-recovery
  // verification may force-drop a hash another in-flight operation still
  // holds a pin on, and the content may then be re-stored under the same
  // hash at a new store index.
  Entry* e = find(ref.hash);
  if (e == nullptr || e->ref.store_index != ref.store_index) return;
  if (e->pending > 0) --e->pending;
  ++e->refs;
}

void ChunkIndex::add_ref(const ChunkRef& ref) {
  Entry* e = find(ref.hash);
  if (e == nullptr || e->ref.store_index != ref.store_index) return;
  ++e->refs;
}

std::optional<ChunkIndex::Entry> ChunkIndex::release(const ChunkRef& ref) {
  auto it = entries_.find(ref.hash);
  if (it == entries_.end()) return std::nullopt;
  if (it->second.ref.store_index != ref.store_index) return std::nullopt;
  if (it->second.refs == 0) return std::nullopt;  // dropped + re-inserted
  --it->second.refs;
  return maybe_reclaim(it);
}

void ChunkIndex::drop(std::uint64_t hash) {
  auto it = entries_.find(hash);
  if (it == entries_.end()) return;
  bytes_ -= it->second.ref.size;
  entries_.erase(it);
}

void ChunkIndex::apply_insert(const ChunkRef& ref,
                              std::vector<NodeId> replicas,
                              std::uint64_t refs) {
  auto [it, inserted] = entries_.emplace(ref.hash, Entry{});
  if (inserted) bytes_ += ref.size;
  it->second.ref = ref;
  it->second.replicas = std::move(replicas);
  it->second.refs = refs;
  it->second.pending = 0;
}

void ChunkIndex::apply_ref(std::uint64_t hash, std::uint64_t store_index) {
  Entry* e = find(hash);
  if (e == nullptr || e->ref.store_index != store_index) return;
  ++e->refs;
}

void ChunkIndex::apply_release(std::uint64_t hash,
                               std::uint64_t store_index) {
  auto it = entries_.find(hash);
  if (it == entries_.end()) return;
  if (it->second.ref.store_index != store_index) return;
  if (it->second.refs > 0) --it->second.refs;
  if (it->second.refs == 0) {
    bytes_ -= it->second.ref.size;
    entries_.erase(it);
  }
}

void ChunkIndex::clear() {
  entries_.clear();
  bytes_ = 0;
}

void ChunkIndex::invalidate_verification() {
  for (auto& [hash, e] : entries_) e.verified = false;
}

std::uint64_t ChunkIndex::digest() const {
  std::uint64_t d = fnv1a_u64(entries_.size());
  for (const auto& [hash, e] : entries_) {
    d = hash_combine(d, hash);
    d = hash_combine(d, e.ref.size);
    d = hash_combine(d, e.ref.checksum);
    d = hash_combine(d, e.ref.store_version);
    d = hash_combine(d, e.ref.store_index);
    d = hash_combine(d, e.refs);
    d = hash_combine(d, e.replicas.size());
  }
  return d;
}

}  // namespace bs::cloud
