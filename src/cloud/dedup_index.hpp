// Refcounted content-addressed chunk index for the S3 gateway. Maps a chunk
// hash to where the chunk lives in the shared store blob, how many manifest
// occurrences reference it, and how many in-flight operations are pinning
// it. The container is a std::map on purpose: checkpoint encoding and state
// digests iterate it, and both must be deterministic across replays
// (bslint's det-custody-order ban on unordered containers covers src/cloud).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cloud/s3_types.hpp"

namespace bs::cloud {

class ChunkIndex {
 public:
  struct Entry {
    ChunkRef ref;
    std::vector<NodeId> replicas;  ///< providers holding the stored chunk
    std::uint64_t refs{0};     ///< committed manifest occurrences
    std::uint32_t pending{0};  ///< in-flight holds (never journaled)
    /// Cleared after a journal recovery: the providers may have lost the
    /// chunk independently, so the first dedup hit re-probes presence.
    bool verified{true};
  };

  [[nodiscard]] Entry* find(std::uint64_t hash);
  [[nodiscard]] const Entry* find(std::uint64_t hash) const;

  /// Registers a freshly stored chunk, held by the inserting operation
  /// (pending = 1) until the manifest commit converts the hold into a ref.
  Entry& insert(const ChunkRef& ref, std::vector<NodeId> replicas);

  /// Pins an existing entry so no concurrent release can reclaim it while
  /// an operation is mid-flight against it.
  void pin(std::uint64_t hash);

  // The hold/ref mutators below take the caller's full ChunkRef, not just
  // the hash: an entry that failed post-recovery verification is dropped
  // and may be re-inserted under the same hash at a new store index. A
  // stale manifest must not move the fresh generation's counts, so every
  // mutation no-ops unless the caller's store_index matches the entry's.

  /// Drops an in-flight hold. Returns the erased entry when this was the
  /// last hold on a zero-ref chunk, i.e. the caller must reclaim it.
  std::optional<Entry> unpin(const ChunkRef& ref);

  /// Converts one in-flight hold into a committed manifest reference.
  void commit_ref(const ChunkRef& ref);

  /// Adds a committed reference directly (delta-sync sharing of a chunk
  /// that the base manifest keeps alive for the duration of the call).
  void add_ref(const ChunkRef& ref);

  /// Drops one committed reference; returns the erased entry when the
  /// chunk became unreferenced and unpinned (reclaim it). Tolerates
  /// unknown hashes (entry force-dropped after a failed verification).
  std::optional<Entry> release(const ChunkRef& ref);

  /// Force-erases an entry whose stored chunk is gone (verification
  /// failure after recovery); later releases of the hash become no-ops.
  void drop(std::uint64_t hash);

  // Replay-side appliers (no pending holds exist during replay).
  void apply_insert(const ChunkRef& ref, std::vector<NodeId> replicas,
                    std::uint64_t refs);
  void apply_ref(std::uint64_t hash, std::uint64_t store_index);
  void apply_release(std::uint64_t hash, std::uint64_t store_index);

  void clear();
  /// Marks every entry unverified (call after a journal recovery).
  void invalidate_verification();

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t bytes_indexed() const { return bytes_; }
  [[nodiscard]] std::uint64_t digest() const;
  [[nodiscard]] const std::map<std::uint64_t, Entry>& entries() const {
    return entries_;
  }

 private:
  std::optional<Entry> maybe_reclaim(
      std::map<std::uint64_t, Entry>::iterator it);

  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t bytes_{0};  ///< sum of indexed chunk sizes
};

}  // namespace bs::cloud
