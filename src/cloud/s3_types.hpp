// S3-compatible data model: buckets, objects, ACLs. The gateway mirrors the
// role of Cumulus (Nimbus' storage manager, "designed to be
// interface-compatible with Amazon S3") with BlobSeer as the back end (§V).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "blob/blob_types.hpp"

namespace bs::cloud {

enum class Permission : std::uint8_t {
  none = 0,
  read = 1,
  write = 2,
  read_write = 3,
  full_control = 7,  ///< read + write + ACL administration
};

constexpr bool allows(Permission have, Permission want) {
  return (static_cast<std::uint8_t>(have) &
          static_cast<std::uint8_t>(want)) ==
         static_cast<std::uint8_t>(want);
}

struct Acl {
  ClientId owner{};
  bool public_read{false};
  std::map<std::uint64_t, Permission> grants;  ///< by ClientId value

  [[nodiscard]] bool check(ClientId who, Permission want) const {
    if (who == owner) return true;
    if (public_read && want == Permission::read) return true;
    auto it = grants.find(who.value);
    return it != grants.end() && allows(it->second, want);
  }
};

struct ObjectInfo {
  std::string key;
  std::uint64_t size{0};
  std::uint64_t etag{0};  ///< content checksum
  SimTime last_modified{0};
  ClientId owner{};
  BlobId blob{};          ///< backing store blob (shared chunk store)
  blob::Version version{0};  ///< per-object revision, bumped on overwrite

  [[nodiscard]] std::uint64_t wire_size() const { return 64 + key.size(); }
};

/// One entry of an object manifest: a content-addressed chunk and where it
/// lives in the shared chunk-store blob. `hash` is the dedup index key;
/// identical hashes across tenants and object versions share one stored
/// chunk (refcounted in the gateway's ChunkIndex).
struct ChunkRef {
  std::uint64_t hash{0};
  std::uint64_t size{0};      ///< payload bytes (≤ gateway chunk size)
  std::uint64_t checksum{0};  ///< chunk content checksum
  BlobId store_blob{};
  blob::Version store_version{0};
  std::uint64_t store_index{0};  ///< absolute chunk index in the store blob

  [[nodiscard]] blob::ChunkKey store_key() const {
    return blob::ChunkKey{store_blob, store_version, store_index};
  }
  [[nodiscard]] std::uint64_t wire_size() const { return 48; }
};

struct BucketInfo {
  std::string name;
  SimTime created_at{0};
  std::uint64_t object_count{0};
  std::uint64_t total_bytes{0};

  [[nodiscard]] std::uint64_t wire_size() const { return 40 + name.size(); }
};

}  // namespace bs::cloud
