// S3-compatible data model: buckets, objects, ACLs. The gateway mirrors the
// role of Cumulus (Nimbus' storage manager, "designed to be
// interface-compatible with Amazon S3") with BlobSeer as the back end (§V).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "blob/blob_types.hpp"

namespace bs::cloud {

enum class Permission : std::uint8_t {
  none = 0,
  read = 1,
  write = 2,
  read_write = 3,
  full_control = 7,  ///< read + write + ACL administration
};

constexpr bool allows(Permission have, Permission want) {
  return (static_cast<std::uint8_t>(have) &
          static_cast<std::uint8_t>(want)) ==
         static_cast<std::uint8_t>(want);
}

struct Acl {
  ClientId owner{};
  bool public_read{false};
  std::map<std::uint64_t, Permission> grants;  ///< by ClientId value

  [[nodiscard]] bool check(ClientId who, Permission want) const {
    if (who == owner) return true;
    if (public_read && want == Permission::read) return true;
    auto it = grants.find(who.value);
    return it != grants.end() && allows(it->second, want);
  }
};

struct ObjectInfo {
  std::string key;
  std::uint64_t size{0};
  std::uint64_t etag{0};  ///< content checksum
  SimTime last_modified{0};
  ClientId owner{};
  BlobId blob{};
  blob::Version version{0};

  [[nodiscard]] std::uint64_t wire_size() const { return 64 + key.size(); }
};

struct BucketInfo {
  std::string name;
  SimTime created_at{0};
  std::uint64_t object_count{0};
  std::uint64_t total_bytes{0};

  [[nodiscard]] std::uint64_t wire_size() const { return 40 + name.size(); }
};

}  // namespace bs::cloud
