#include "cloud/gateway.hpp"

namespace bs::cloud {

S3Gateway::S3Gateway(rpc::Node& node, blob::BlobClient::Endpoints endpoints,
                     GatewayOptions options)
    : node_(node), endpoints_(std::move(endpoints)), options_(options) {
  register_handlers();
}

blob::BlobClient& S3Gateway::client_for(ClientId user) {
  auto it = clients_.find(user.value);
  if (it == clients_.end()) {
    auto client = std::make_unique<blob::BlobClient>(
        node_, user, endpoints_, blob::ClientConfig{},
        /*rng_seed=*/0x53C4E7 + user.value);
    it = clients_.emplace(user.value, std::move(client)).first;
  }
  return *it->second;
}

Result<S3Gateway::Bucket*> S3Gateway::bucket_checked(const std::string& name,
                                                     ClientId who,
                                                     Permission want) {
  auto it = buckets_.find(name);
  if (it == buckets_.end()) {
    return Error{Errc::not_found, "no such bucket: " + name};
  }
  if (!it->second.acl.check(who, want)) {
    return Error{Errc::permission_denied, "access denied to " + name};
  }
  return &it->second;
}

void S3Gateway::register_handlers() {
  node_.serve<S3CreateBucketReq, S3CreateBucketResp>(
      [this](const S3CreateBucketReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3CreateBucketResp>> {
        ++requests_;
        if (req.bucket.empty()) {
          co_return Error{Errc::invalid_argument, "empty bucket name"};
        }
        if (buckets_.count(req.bucket)) {
          co_return Error{Errc::already_exists, "bucket exists"};
        }
        Bucket b;
        b.info.name = req.bucket;
        b.info.created_at = node_.cluster().sim().now();
        b.acl.owner = env.client;
        b.acl.public_read = req.public_read;
        buckets_.emplace(req.bucket, std::move(b));
        co_return S3CreateBucketResp{};
      });

  node_.serve<S3DeleteBucketReq, S3DeleteBucketResp>(
      [this](const S3DeleteBucketReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3DeleteBucketResp>> {
        ++requests_;
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::full_control);
        if (!bucket.ok()) co_return bucket.error();
        if (!bucket.value()->objects.empty()) {
          co_return Error{Errc::conflict, "bucket not empty"};
        }
        buckets_.erase(req.bucket);
        co_return S3DeleteBucketResp{};
      });

  node_.serve<S3ListBucketsReq, S3ListBucketsResp>(
      [this](const S3ListBucketsReq&, const rpc::Envelope& env)
          -> sim::Task<Result<S3ListBucketsResp>> {
        ++requests_;
        S3ListBucketsResp resp;
        for (const auto& [name, b] : buckets_) {
          if (b.acl.check(env.client, Permission::read)) {
            resp.buckets.push_back(b.info);
          }
        }
        co_return resp;
      });

  node_.serve<S3SetAclReq, S3SetAclResp>(
      [this](const S3SetAclReq& req,
             const rpc::Envelope& env) -> sim::Task<Result<S3SetAclResp>> {
        ++requests_;
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::full_control);
        if (!bucket.ok()) co_return bucket.error();
        if (req.grantee.valid()) {
          bucket.value()->acl.grants[req.grantee.value] = req.permission;
        }
        if (req.set_public_read) {
          bucket.value()->acl.public_read = req.public_read;
        }
        co_return S3SetAclResp{};
      });

  node_.serve<S3PutObjectReq, S3PutObjectResp>(
      [this](const S3PutObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3PutObjectResp>> {
        ++requests_;
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        if (req.payload.size == 0) {
          co_return Error{Errc::invalid_argument, "empty object"};
        }
        blob::BlobClient& client = client_for(env.client);

        auto oit = bucket.value()->objects.find(req.key);
        BlobId blob_id;
        if (oit == bucket.value()->objects.end()) {
          auto created = co_await client.create(options_.object_chunk_size,
                                                options_.replication);
          if (!created.ok()) co_return created.error();
          blob_id = created.value();
        } else {
          blob_id = oit->second.blob;
        }
        auto written = co_await client.write(blob_id, 0, req.payload);
        if (!written.ok()) co_return written.error();

        ObjectInfo info;
        info.key = req.key;
        info.size = req.payload.size;
        info.etag = req.payload.checksum;
        info.last_modified = node_.cluster().sim().now();
        info.owner = env.client;
        info.blob = blob_id;
        info.version = written.value().version;
        Bucket* b = bucket.value();
        if (oit != b->objects.end()) {
          b->info.total_bytes -= oit->second.size;
          oit->second = info;
        } else {
          b->objects.emplace(req.key, info);
          ++b->info.object_count;
        }
        b->info.total_bytes += info.size;

        S3PutObjectResp resp;
        resp.etag = info.etag;
        resp.version = info.version;
        co_return resp;
      });

  node_.serve<S3GetObjectReq, S3GetObjectResp>(
      [this](const S3GetObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3GetObjectResp>> {
        ++requests_;
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::read);
        if (!bucket.ok()) co_return bucket.error();
        auto oit = bucket.value()->objects.find(req.key);
        if (oit == bucket.value()->objects.end()) {
          co_return Error{Errc::not_found, "no such key: " + req.key};
        }
        const ObjectInfo& info = oit->second;
        const std::uint64_t offset = std::min(req.offset, info.size);
        const std::uint64_t length =
            std::min(req.length, info.size - offset);

        blob::BlobClient& client = client_for(env.client);
        auto read =
            co_await client.read(info.blob, offset, length, info.version);
        if (!read.ok()) co_return read.error();

        S3GetObjectResp resp;
        resp.etag = info.etag;
        resp.payload.size = read.value().bytes;
        if (auto data = read.value().assemble(offset, length)) {
          resp.payload = blob::Payload::from_bytes(std::move(*data));
        } else {
          resp.payload.checksum = info.etag;
        }
        co_return resp;
      });

  node_.serve<S3HeadObjectReq, S3HeadObjectResp>(
      [this](const S3HeadObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3HeadObjectResp>> {
        ++requests_;
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::read);
        if (!bucket.ok()) co_return bucket.error();
        auto oit = bucket.value()->objects.find(req.key);
        if (oit == bucket.value()->objects.end()) {
          co_return Error{Errc::not_found, "no such key: " + req.key};
        }
        co_return S3HeadObjectResp{oit->second};
      });

  node_.serve<S3DeleteObjectReq, S3DeleteObjectResp>(
      [this](const S3DeleteObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3DeleteObjectResp>> {
        ++requests_;
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        Bucket* b = bucket.value();
        auto oit = b->objects.find(req.key);
        if (oit == b->objects.end()) {
          co_return Error{Errc::not_found, "no such key: " + req.key};
        }
        blob::BlobClient& client = client_for(env.client);
        (void)co_await client.remove(oit->second.blob);
        b->info.total_bytes -= oit->second.size;
        --b->info.object_count;
        b->objects.erase(oit);
        co_return S3DeleteObjectResp{};
      });

  node_.serve<S3ListObjectsReq, S3ListObjectsResp>(
      [this](const S3ListObjectsReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3ListObjectsResp>> {
        ++requests_;
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::read);
        if (!bucket.ok()) co_return bucket.error();
        S3ListObjectsResp resp;
        for (const auto& [key, info] : bucket.value()->objects) {
          if (key.rfind(req.prefix, 0) == 0) resp.objects.push_back(info);
        }
        co_return resp;
      });
}

}  // namespace bs::cloud
