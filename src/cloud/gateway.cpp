#include "cloud/gateway.hpp"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bs::cloud {

namespace {

bool env_flag(const char* v) {
  const std::string_view s(v);
  return !(s == "off" || s == "0" || s == "false" || s == "no");
}

}  // namespace

GatewayOptions apply_gateway_env(GatewayOptions base) {
  if (const char* env = std::getenv("BS_GW_DEDUP")) {
    base.dedup = env_flag(env);
  }
  if (const char* env = std::getenv("BS_GW_CHUNK_KB")) {
    const std::uint64_t kb = std::strtoull(env, nullptr, 10);
    if (kb > 0) base.object_chunk_size = kb * units::KB;
  }
  if (const char* env = std::getenv("BS_GW_MAX_CLIENTS")) {
    base.max_user_clients = std::strtoull(env, nullptr, 10);
  }
  if (const char* env = std::getenv("BS_GW_JOURNAL")) {
    base.journal.enabled = env_flag(env);
  }
  return base;
}

S3Gateway::S3Gateway(rpc::Node& node, blob::BlobClient::Endpoints endpoints,
                     GatewayOptions options)
    : node_(node), endpoints_(std::move(endpoints)),
      options_(apply_gateway_env(options)), journal_(options_.journal) {
  register_handlers();
  node_.add_crash_listener([this](const rpc::CrashOptions& c) {
    if (journal_.enabled()) {
      // The in-memory image dies with the process; the journal's durable
      // prefix is replayed on restart. Handlers suspended mid-await keep
      // running as zombies (the RPC layer discards their results) — every
      // handler re-checks the node incarnation after each await and bails
      // before touching rebuilt state.
      wipe();
      journal_.crash(c.lose_storage, c.torn_tail);
      recovering_ = true;
    } else if (c.lose_storage) {
      wipe();
    }
  });
  node_.add_restart_listener([this] {
    if (journal_.enabled()) {
      node_.cluster().sim().spawn(recover(node_.incarnation()));
    }
  });
}

void S3Gateway::wipe() {
  buckets_.clear();
  chunk_index_.clear();
  mpus_.clear();
  // Wake every coroutine parked on an in-flight store so it can observe
  // the incarnation change and bail. The cached per-user BlobClients are
  // NOT destroyed: zombie handler frames still reference them, and they
  // hold no durable state.
  for (auto& [hash, ev] : pending_stores_) ev->set();
  pending_stores_.clear();
  if (store_creating_) {
    store_creating_->set();
    store_creating_.reset();
  }
  store_blob_ = BlobId{};
  nonce_ = 0;
  next_upload_id_ = 1;
}

// ------------------------------------------------------------ user clients

S3Gateway::ClientLease S3Gateway::lease_client(ClientId user) {
  UserClient& uc = clients_[user.value];
  if (!uc.client) {
    uc.client = std::make_unique<blob::BlobClient>(
        node_, user, endpoints_, blob::ClientConfig{},
        /*rng_seed=*/0x53C4E7 + user.value);
  }
  uc.last_used = ++lru_tick_;
  ++uc.active;
  evict_idle_clients();
  return ClientLease(this, user.value, uc.client.get());
}

void S3Gateway::unpin_client(std::uint64_t key, blob::BlobClient* client) {
  auto it = clients_.find(key);
  if (it == clients_.end() || it->second.client.get() != client) return;
  if (it->second.active > 0) --it->second.active;
}

void S3Gateway::evict_idle_clients() {
  if (options_.max_user_clients == 0) return;
  while (clients_.size() > options_.max_user_clients) {
    auto victim = clients_.end();
    for (auto it = clients_.begin(); it != clients_.end(); ++it) {
      if (it->second.active > 0) continue;
      if (victim == clients_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == clients_.end()) return;  // everything pinned in-flight
    clients_.erase(victim);
    ++stats_.clients_evicted;
    obs::count("gateway.clients_evicted");
  }
}

// ----------------------------------------------------------------- buckets

Result<S3Gateway::Bucket*> S3Gateway::bucket_checked(const std::string& name,
                                                     ClientId who,
                                                     Permission want) {
  auto it = buckets_.find(name);
  if (it == buckets_.end()) {
    return Error{Errc::not_found, "no such bucket: " + name};
  }
  if (!it->second.acl.check(who, want)) {
    return Error{Errc::permission_denied, "access denied to " + name};
  }
  return &it->second;
}

S3Gateway::Bucket* S3Gateway::find_bucket(const std::string& name) {
  auto it = buckets_.find(name);
  return it == buckets_.end() ? nullptr : &it->second;
}

// --------------------------------------------------------------- chunking

Result<std::vector<blob::Payload>> S3Gateway::split_payload(
    const blob::Payload& payload,
    const std::vector<std::uint64_t>& chunk_sums) const {
  const std::uint64_t cs = options_.object_chunk_size;
  const std::uint64_t n = blob::div_ceil(payload.size, cs);
  if (!chunk_sums.empty() && chunk_sums.size() != n) {
    return Error{Errc::invalid_argument,
                 "chunk_sums size does not match chunk count"};
  }
  std::vector<blob::Payload> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t lo = i * cs;
    const std::uint64_t len = std::min(cs, payload.size - lo);
    blob::Payload p;
    if (payload.bytes) {
      std::vector<std::uint8_t> slice(
          payload.bytes->begin() + static_cast<std::ptrdiff_t>(lo),
          payload.bytes->begin() + static_cast<std::ptrdiff_t>(lo + len));
      p = blob::Payload::from_bytes(std::move(slice));
    } else {
      p.size = len;
      p.checksum = chunk_sums.empty() ? hash_combine(payload.checksum, i)
                                      : chunk_sums[i];
    }
    out.push_back(std::move(p));
  }
  return out;
}

std::uint64_t S3Gateway::chunk_hash(const blob::Payload& p) const {
  // Content address: checksum x size. Size folds in so a short chunk never
  // collides with a full chunk that shares a checksum prefix.
  return hash_combine(p.checksum, p.size);
}

sim::Task<Result<BlobId>> S3Gateway::ensure_store_blob() {
  const std::uint64_t inc = node_.incarnation();
  while (!store_blob_.valid()) {
    if (store_creating_) {
      auto ev = store_creating_;
      co_await ev->wait();
      if (node_.incarnation() != inc || recovering_) {
        co_return Error{Errc::unavailable, "gateway restarted"};
      }
      continue;
    }
    store_creating_ = std::make_shared<sim::Event>(node_.cluster().sim());
    auto ev = store_creating_;
    {
      ClientLease store = lease_client(options_.store_identity);
      auto created = co_await (*store).create(options_.object_chunk_size,
                                              options_.replication);
      if (node_.incarnation() != inc || recovering_) {
        ev->set();  // wake fellow zombies so they bail too
        co_return Error{Errc::unavailable, "gateway restarted"};
      }
      if (store_creating_ == ev) store_creating_.reset();
      ev->set();
      if (!created.ok()) co_return created.error();
      store_blob_ = created.value();
    }
    GwRecord rec;
    rec.kind = GwRecord::Kind::store_blob;
    rec.a = store_blob_.value;
    std::vector<GwRecord> recs;
    recs.push_back(std::move(rec));
    auto jc = co_await journal_commit(std::move(recs));
    if (!jc.ok()) co_return jc.error();
  }
  co_return store_blob_;
}

// bslint: allow(coro-ref-param): client is pinned by the handler's
// ClientLease, held across the co_await of this task
// bslint: allow(perf-large-byvalue): every caller moves the freshly split
// batch; Payload bodies are shared_ptr-backed either way
sim::Task<Result<S3Gateway::IngestResult>> S3Gateway::ingest_chunks(
    blob::BlobClient& client, std::vector<blob::Payload> chunks) {
  const std::uint64_t inc = node_.incarnation();
  const std::uint64_t cs = options_.object_chunk_size;

  auto sb = co_await ensure_store_blob();
  if (!sb.ok()) co_return sb.error();
  if (node_.incarnation() != inc || recovering_) {
    co_return Error{Errc::unavailable, "gateway restarted"};
  }

  IngestResult out;
  out.manifest.resize(chunks.size());
  struct Miss {
    std::size_t first;                ///< chunk position that stores it
    std::uint64_t nonce{0};           ///< dedup-off uniquifier
    std::vector<std::size_t> extras;  ///< same-hash positions in this batch
  };
  std::vector<std::uint64_t> miss_order;
  std::map<std::uint64_t, Miss> misses;
  std::vector<std::size_t> pinned;  ///< positions holding a dedup-hit pin

  // Roll back every hold this ingest has taken so far (pre-commit failure
  // on a live incarnation only — after a crash the index died with it).
  auto rollback = [&] {
    std::vector<ChunkIndex::Entry> reclaims;
    for (std::size_t i : pinned) {
      if (auto r = chunk_index_.unpin(out.manifest[i])) {
        reclaims.push_back(std::move(*r));
      }
    }
    for (std::uint64_t h : miss_order) {
      auto pit = pending_stores_.find(h);
      if (pit != pending_stores_.end()) {
        auto ev = pit->second;
        pending_stores_.erase(pit);
        ev->set();  // waiters re-resolve and store it themselves
      }
    }
    reclaim(std::move(reclaims));
  };

  for (std::size_t i = 0; i < chunks.size(); ++i) {
    std::uint64_t h = chunk_hash(chunks[i]);
    std::uint64_t nonce = 0;
    if (!options_.dedup) {
      // Ablation baseline: uniquify every chunk so no sharing happens but
      // the manifest/refcount machinery stays identical.
      nonce = ++nonce_;
      h = hash_combine(h, nonce);
    }
    for (;;) {
      ChunkIndex::Entry* e = chunk_index_.find(h);
      if (e != nullptr) {
        if (!e->verified && options_.verify_hits_after_recovery) {
          // Recovered entry: the providers may have been wiped while the
          // gateway journal survived. Probe before trusting the hit.
          chunk_index_.pin(h);
          auto present =
              co_await client.chunk_present(e->ref.store_key(), e->replicas);
          if (node_.incarnation() != inc || recovering_) {
            co_return Error{Errc::unavailable, "gateway restarted"};
          }
          ChunkIndex::Entry* e2 = chunk_index_.find(h);
          if (e2 == nullptr) continue;  // dropped meanwhile; resolve again
          if (present.ok() && present.value()) {
            e2->verified = true;
            // Keep our pin as this occurrence's hold.
          } else {
            // The stored chunk is gone: drop the entry (later releases of
            // the hash become no-ops) and store this content fresh.
            --e2->pending;
            chunk_index_.drop(h);
            obs::count("gateway.verify_drops");
            continue;
          }
          e = e2;
        } else {
          chunk_index_.pin(h);
        }
        out.manifest[i] = e->ref;
        pinned.push_back(i);
        ++out.hits;
        out.bytes_saved += chunks[i].size;
        break;
      }
      if (auto mit = misses.find(h); mit != misses.end()) {
        // Same content twice in this batch: the first occurrence stores
        // it; this one shares the entry once it lands.
        mit->second.extras.push_back(i);
        break;
      }
      if (auto pit = pending_stores_.find(h); pit != pending_stores_.end()) {
        auto ev = pit->second;
        co_await ev->wait();
        if (node_.incarnation() != inc || recovering_) {
          co_return Error{Errc::unavailable, "gateway restarted"};
        }
        continue;  // the storer finished (or failed); re-resolve
      }
      // First writer of this content: claim the store.
      pending_stores_.emplace(
          h, std::make_shared<sim::Event>(node_.cluster().sim()));
      Miss m;
      m.first = i;
      m.nonce = nonce;
      misses.emplace(h, std::move(m));
      miss_order.push_back(h);
      break;
    }
  }

  if (!miss_order.empty()) {
    std::vector<blob::Payload> payloads;
    payloads.reserve(miss_order.size());
    for (std::uint64_t h : miss_order) {
      payloads.push_back(chunks[misses[h].first]);
    }
    auto receipt =
        co_await client.append_chunks(store_blob_, cs, std::move(payloads));
    if (node_.incarnation() != inc || recovering_) {
      // The crash wiped the index and the pending-store map; waiters were
      // woken by the crash listener. Nothing of ours survived to clean up.
      co_return Error{Errc::unavailable, "gateway restarted"};
    }
    if (!receipt.ok()) {
      rollback();
      co_return receipt.error();
    }
    const auto& stored = receipt.value().chunks;
    for (std::size_t k = 0; k < miss_order.size(); ++k) {
      const std::uint64_t h = miss_order[k];
      Miss& m = misses[h];
      ChunkRef ref;
      ref.hash = h;
      ref.size = chunks[m.first].size;
      ref.checksum = chunks[m.first].checksum;
      ref.store_blob = store_blob_;
      ref.store_version = stored[k].key.version;
      ref.store_index = stored[k].key.index;
      chunk_index_.insert(ref, stored[k].replicas);
      out.manifest[m.first] = ref;
      ++out.misses;
      out.bytes_stored += ref.size;
      for (std::size_t extra : m.extras) {
        chunk_index_.pin(h);
        out.manifest[extra] = ref;
        ++out.hits;
        out.bytes_saved += ref.size;
      }
      GwRecord rec;
      rec.kind = GwRecord::Kind::index_insert;
      rec.b = m.nonce;
      rec.manifest.push_back(ref);
      rec.replicas = stored[k].replicas;
      out.insert_records.push_back(std::move(rec));
      auto pit = pending_stores_.find(h);
      if (pit != pending_stores_.end()) {
        auto ev = pit->second;
        pending_stores_.erase(pit);
        ev->set();
      }
    }
  }

  stats_.chunks_ingested += chunks.size();
  stats_.dedup_hits += out.hits;
  stats_.dedup_misses += out.misses;
  stats_.bytes_saved += out.bytes_saved;
  stats_.bytes_to_providers += out.bytes_stored;
  obs::count("gateway.dedup_hits", out.hits);
  obs::count("gateway.dedup_misses", out.misses);
  obs::count("gateway.bytes_saved", out.bytes_saved);
  obs::count("gateway.bytes_to_providers", out.bytes_stored);
  co_return out;
}

void S3Gateway::rollback_ingest(const IngestResult& ing) {
  std::vector<ChunkIndex::Entry> reclaims;
  for (const ChunkRef& ref : ing.manifest) {
    if (auto r = chunk_index_.unpin(ref)) reclaims.push_back(std::move(*r));
  }
  reclaim(std::move(reclaims));
}

void S3Gateway::release_manifest(const std::vector<ChunkRef>& manifest,
                                 std::vector<GwRecord>& records,
                                 std::vector<ChunkIndex::Entry>& reclaims) {
  for (const ChunkRef& ref : manifest) {
    GwRecord rec;
    rec.kind = GwRecord::Kind::index_release;
    rec.a = ref.hash;
    rec.b = ref.store_index;
    records.push_back(std::move(rec));
    if (auto r = chunk_index_.release(ref)) reclaims.push_back(std::move(*r));
  }
}

void S3Gateway::reclaim(std::vector<ChunkIndex::Entry> entries) {
  for (const ChunkIndex::Entry& e : entries) {
    ++stats_.chunks_reclaimed;
    stats_.bytes_reclaimed += e.ref.size;
    obs::count("gateway.chunks_reclaimed");
    obs::count("gateway.bytes_reclaimed", e.ref.size);
    for (NodeId target : e.replicas) {
      // Fire-and-forget: reclamation is best-effort garbage collection; a
      // lost remove leaks a dead chunk on one provider, never corrupts.
      node_.cluster().sim().spawn(
          [](rpc::Node& n, NodeId t, blob::ChunkKey key,
             ClientId who) -> sim::Task<void> {
            blob::RemoveChunkReq req;
            req.key = key;
            rpc::CallOptions o;
            o.timeout = simtime::seconds(30);
            o.client = who;
            (void)co_await
                n.cluster().call<blob::RemoveChunkReq, blob::RemoveChunkResp>(
                    n, t, std::move(req), o);
          }(node_, target, e.ref.store_key(), options_.store_identity));
    }
  }
}

// ----------------------------------------------------------------- journal

std::uint64_t S3Gateway::record_bytes(const GwRecord& rec) {
  // Metadata-only WAL: fixed header plus names, 48 B per manifest entry,
  // 8 B per replica id, 24 B per ACL grant. Chunk payload durability is
  // the data providers' journal's job, not the gateway's.
  return 48 + rec.bucket.size() + rec.key.size() + 48 * rec.manifest.size() +
         8 * rec.replicas.size() + 24 * rec.acl.grants.size();
}

void S3Gateway::apply_record(const GwRecord& rec) {
  switch (rec.kind) {
    case GwRecord::Kind::create_bucket: {
      Bucket b;
      b.info.name = rec.bucket;
      b.info.created_at = static_cast<SimTime>(rec.a);
      b.acl = rec.acl;
      buckets_[rec.bucket] = std::move(b);
      break;
    }
    case GwRecord::Kind::delete_bucket:
      buckets_.erase(rec.bucket);
      break;
    case GwRecord::Kind::set_acl:
      if (Bucket* b = find_bucket(rec.bucket)) b->acl = rec.acl;
      break;
    case GwRecord::Kind::put_object: {
      Bucket* b = find_bucket(rec.bucket);
      if (b == nullptr) break;
      auto [it, inserted] = b->objects.emplace(rec.key, ObjectRecord{});
      if (inserted) {
        ++b->info.object_count;
      } else {
        b->info.total_bytes -= it->second.info.size;
      }
      it->second.info = rec.info;
      it->second.manifest = rec.manifest;
      b->info.total_bytes += rec.info.size;
      break;
    }
    case GwRecord::Kind::delete_object: {
      Bucket* b = find_bucket(rec.bucket);
      if (b == nullptr) break;
      auto it = b->objects.find(rec.key);
      if (it == b->objects.end()) break;
      b->info.total_bytes -= it->second.info.size;
      --b->info.object_count;
      b->objects.erase(it);
      break;
    }
    case GwRecord::Kind::index_insert:
      chunk_index_.apply_insert(rec.manifest[0], rec.replicas, rec.c);
      nonce_ = std::max(nonce_, rec.b);
      break;
    case GwRecord::Kind::index_ref:
      chunk_index_.apply_ref(rec.a, rec.b);
      break;
    case GwRecord::Kind::index_release:
      chunk_index_.apply_release(rec.a, rec.b);
      break;
    case GwRecord::Kind::mpu_create: {
      Mpu m;
      m.bucket = rec.bucket;
      m.key = rec.key;
      m.owner = ClientId{rec.b};
      mpus_[rec.a] = std::move(m);
      next_upload_id_ = std::max(next_upload_id_, rec.a + 1);
      break;
    }
    case GwRecord::Kind::mpu_part: {
      auto it = mpus_.find(rec.a);
      if (it == mpus_.end()) break;
      PartInfo part;
      part.size = rec.info.size;
      part.etag = rec.info.etag;
      part.manifest = rec.manifest;
      it->second.parts[static_cast<std::uint32_t>(rec.b)] = std::move(part);
      break;
    }
    case GwRecord::Kind::mpu_drop:
      mpus_.erase(rec.a);
      break;
    case GwRecord::Kind::store_blob:
      store_blob_ = BlobId{rec.a};
      break;
    case GwRecord::Kind::counters:
      next_upload_id_ = std::max(next_upload_id_, rec.a);
      nonce_ = std::max(nonce_, rec.b);
      break;
  }
}

std::vector<blob::Journal<S3Gateway::GwRecord>::Entry>
S3Gateway::encode_checkpoint() const {
  // The checkpoint is the full gateway metadata image — buckets, objects
  // with manifests, the refcounted dedup index, live multipart uploads and
  // the id counters — encoded over ordered containers only, so the image
  // is byte-deterministic across replays and stepper modes.
  std::vector<blob::Journal<GwRecord>::Entry> image;
  auto push = [&image](GwRecord rec) {
    const std::uint64_t bytes = record_bytes(rec);
    image.push_back({std::move(rec), bytes});
  };
  {
    GwRecord rec;
    rec.kind = GwRecord::Kind::counters;
    rec.a = next_upload_id_;
    rec.b = nonce_;
    push(std::move(rec));
  }
  if (store_blob_.valid()) {
    GwRecord rec;
    rec.kind = GwRecord::Kind::store_blob;
    rec.a = store_blob_.value;
    push(std::move(rec));
  }
  for (const auto& [name, b] : buckets_) {
    GwRecord rec;
    rec.kind = GwRecord::Kind::create_bucket;
    rec.bucket = name;
    rec.a = static_cast<std::uint64_t>(b.info.created_at);
    rec.acl = b.acl;
    push(std::move(rec));
    for (const auto& [key, obj] : b.objects) {
      GwRecord put;
      put.kind = GwRecord::Kind::put_object;
      put.bucket = name;
      put.key = key;
      put.info = obj.info;
      put.manifest = obj.manifest;
      push(std::move(put));
    }
  }
  for (const auto& [hash, e] : chunk_index_.entries()) {
    GwRecord rec;
    rec.kind = GwRecord::Kind::index_insert;
    rec.c = e.refs;
    rec.manifest.push_back(e.ref);
    rec.replicas = e.replicas;
    push(std::move(rec));
  }
  for (const auto& [id, mpu] : mpus_) {
    GwRecord rec;
    rec.kind = GwRecord::Kind::mpu_create;
    rec.a = id;
    rec.bucket = mpu.bucket;
    rec.key = mpu.key;
    rec.b = mpu.owner.value;
    push(std::move(rec));
    for (const auto& [part_no, part] : mpu.parts) {
      GwRecord prec;
      prec.kind = GwRecord::Kind::mpu_part;
      prec.a = id;
      prec.b = part_no;
      prec.info.size = part.size;
      prec.info.etag = part.etag;
      prec.manifest = part.manifest;
      push(std::move(prec));
    }
  }
  return image;
}

void S3Gateway::maybe_checkpoint() {
  if (!journal_.checkpoint_due()) return;
  if (!journal_.install_checkpoint(encode_checkpoint())) return;
  obs::count("journal.checkpoints");
  blob::charge_checkpoint_write(node_, journal_.checkpoint_bytes());
}

// bslint: allow(perf-large-byvalue): every caller moves its record batch
sim::Task<Result<void>> S3Gateway::journal_commit(
    std::vector<GwRecord> records) {
  if (!journal_.enabled() || records.empty()) co_return ok_result();
  std::uint64_t bytes = 0;
  for (GwRecord& rec : records) {
    const std::uint64_t b = record_bytes(rec);
    bytes += b;
    journal_.append(std::move(rec), b);
  }
  const std::uint64_t seq = journal_.tail_seq();
  if (!co_await blob::journal_fsync(node_, journal_.options().disk, bytes)) {
    co_return Error{Errc::unavailable, "crashed before commit"};
  }
  journal_.seal(seq);
  maybe_checkpoint();
  co_return ok_result();
}

sim::Task<void> S3Gateway::recover(std::uint64_t incarnation) {
  auto& sim = node_.cluster().sim();
  const SimTime t0 = sim.now();
  const blob::ReplayPlan plan = journal_.replay_plan();
  obs::SpanId span = 0;
  if (auto* ts = obs::sink()) {
    span = ts->begin_span(
        "recovery.replay", "recovery", 0,
        {"node", static_cast<std::int64_t>(node_.id().value)},
        {"records", static_cast<std::int64_t>(plan.total_records())});
  }
  if (!co_await blob::journal_replay_cost(node_, journal_.options().disk,
                                          plan) ||
      node_.incarnation() != incarnation) {
    if (auto* ts = obs::sink()) ts->end_span(span, "aborted");
    co_return;
  }
  const auto outcome = journal_.finish_recovery();
  if (outcome.torn_bytes > 0) {
    ++rec_stats_.torn_tails_truncated;
    obs::count("recovery.torn_tails");
  }
  if (outcome.wiped) ++rec_stats_.cold_starts;
  journal_.replay([this](const GwRecord& rec) { apply_record(rec); });
  if (options_.verify_hits_after_recovery) chunk_index_.invalidate_verification();
  recovering_ = false;
  ++rec_stats_.recoveries;
  rec_stats_.replay_bytes += plan.total_bytes();
  rec_stats_.replay_records += plan.total_records();
  rec_stats_.last_time_to_readable = sim.now() - t0;
  rec_stats_.total_time_to_readable += rec_stats_.last_time_to_readable;
  obs::count("recovery.replays");
  obs::count("recovery.replay_bytes", plan.total_bytes());
  obs::count("recovery.replay_records", plan.total_records());
  if (auto* ts = obs::sink()) ts->end_span(span, "ok");
  BS_INFO("gateway", "gateway %llu readable after %llu records",
          (unsigned long long)node_.id().value,
          (unsigned long long)plan.total_records());
}

// ------------------------------------------------------------------ digest

std::uint64_t S3Gateway::state_digest() const {
  std::uint64_t d = fnv1a_u64(buckets_.size());
  for (const auto& [name, b] : buckets_) {
    d = hash_combine(d, fnv1a(name));
    d = hash_combine(d, b.info.object_count);
    d = hash_combine(d, b.info.total_bytes);
    d = hash_combine(d, b.acl.owner.value);
    d = hash_combine(d, b.acl.public_read ? 1 : 0);
    for (const auto& [who, perm] : b.acl.grants) {
      d = hash_combine(d, who);
      d = hash_combine(d, static_cast<std::uint64_t>(perm));
    }
    for (const auto& [key, obj] : b.objects) {
      d = hash_combine(d, fnv1a(key));
      d = hash_combine(d, obj.info.size);
      d = hash_combine(d, obj.info.etag);
      d = hash_combine(d, obj.info.version);
      d = hash_combine(d, obj.info.owner.value);
      for (const ChunkRef& ref : obj.manifest) {
        d = hash_combine(d, ref.hash);
        d = hash_combine(d, ref.store_version);
        d = hash_combine(d, ref.store_index);
      }
    }
  }
  d = hash_combine(d, chunk_index_.digest());
  d = hash_combine(d, mpus_.size());
  for (const auto& [id, mpu] : mpus_) {
    d = hash_combine(d, id);
    d = hash_combine(d, fnv1a(mpu.key));
    for (const auto& [no, part] : mpu.parts) {
      d = hash_combine(d, no);
      d = hash_combine(d, part.etag);
      d = hash_combine(d, part.size);
    }
  }
  return d;
}

// ---------------------------------------------------------------- handlers

void S3Gateway::register_handlers() {
  node_.serve<S3CreateBucketReq, S3CreateBucketResp>(
      [this](const S3CreateBucketReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3CreateBucketResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        if (req.bucket.empty()) {
          co_return Error{Errc::invalid_argument, "empty bucket name"};
        }
        if (buckets_.count(req.bucket)) {
          co_return Error{Errc::already_exists, "bucket exists"};
        }
        Bucket b;
        b.info.name = req.bucket;
        b.info.created_at = node_.cluster().sim().now();
        b.acl.owner = env.client;
        b.acl.public_read = req.public_read;
        GwRecord rec;
        rec.kind = GwRecord::Kind::create_bucket;
        rec.bucket = req.bucket;
        rec.a = static_cast<std::uint64_t>(b.info.created_at);
        rec.acl = b.acl;
        buckets_.emplace(req.bucket, std::move(b));
        std::vector<GwRecord> recs;
        recs.push_back(std::move(rec));
        auto jc = co_await journal_commit(std::move(recs));
        if (!jc.ok()) co_return jc.error();
        co_return S3CreateBucketResp{};
      });

  node_.serve<S3DeleteBucketReq, S3DeleteBucketResp>(
      [this](const S3DeleteBucketReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3DeleteBucketResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::full_control);
        if (!bucket.ok()) co_return bucket.error();
        if (!bucket.value()->objects.empty()) {
          co_return Error{Errc::conflict, "bucket not empty"};
        }
        buckets_.erase(req.bucket);
        GwRecord rec;
        rec.kind = GwRecord::Kind::delete_bucket;
        rec.bucket = req.bucket;
        std::vector<GwRecord> recs;
        recs.push_back(std::move(rec));
        auto jc = co_await journal_commit(std::move(recs));
        if (!jc.ok()) co_return jc.error();
        co_return S3DeleteBucketResp{};
      });

  node_.serve<S3ListBucketsReq, S3ListBucketsResp>(
      [this](const S3ListBucketsReq&, const rpc::Envelope& env)
          -> sim::Task<Result<S3ListBucketsResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        S3ListBucketsResp resp;
        for (const auto& [name, b] : buckets_) {
          if (b.acl.check(env.client, Permission::read)) {
            resp.buckets.push_back(b.info);
          }
        }
        co_return resp;
      });

  node_.serve<S3SetAclReq, S3SetAclResp>(
      [this](const S3SetAclReq& req,
             const rpc::Envelope& env) -> sim::Task<Result<S3SetAclResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::full_control);
        if (!bucket.ok()) co_return bucket.error();
        if (req.grantee.valid()) {
          if (req.permission == Permission::none) {
            bucket.value()->acl.grants.erase(req.grantee.value);
          } else {
            bucket.value()->acl.grants[req.grantee.value] = req.permission;
          }
        }
        if (req.set_public_read) {
          bucket.value()->acl.public_read = req.public_read;
        }
        GwRecord rec;
        rec.kind = GwRecord::Kind::set_acl;
        rec.bucket = req.bucket;
        rec.acl = bucket.value()->acl;
        std::vector<GwRecord> recs;
        recs.push_back(std::move(rec));
        auto jc = co_await journal_commit(std::move(recs));
        if (!jc.ok()) co_return jc.error();
        co_return S3SetAclResp{};
      });

  node_.serve<S3PutObjectReq, S3PutObjectResp>(
      [this](const S3PutObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3PutObjectResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        if (req.payload.size == 0) {
          co_return Error{Errc::invalid_argument, "empty object"};
        }
        auto split = split_payload(req.payload, req.chunk_sums);
        if (!split.ok()) co_return split.error();

        const std::uint64_t inc = node_.incarnation();
        ClientLease client = lease_client(env.client);
        auto ing = co_await ingest_chunks(*client, std::move(split.value()));
        if (!ing.ok()) co_return ing.error();
        if (node_.incarnation() != inc || recovering_) {
          co_return Error{Errc::unavailable, "gateway restarted"};
        }
        Bucket* b = find_bucket(req.bucket);
        if (b == nullptr || !b->acl.check(env.client, Permission::write)) {
          rollback_ingest(ing.value());
          co_return b == nullptr
              ? Error{Errc::not_found, "bucket vanished mid-put"}
              : Error{Errc::permission_denied, "access revoked mid-put"};
        }

        std::vector<GwRecord> records =
            std::move(ing.value().insert_records);
        std::vector<ChunkIndex::Entry> reclaims;
        for (const ChunkRef& ref : ing.value().manifest) {
          chunk_index_.commit_ref(ref);
          GwRecord rec;
          rec.kind = GwRecord::Kind::index_ref;
          rec.a = ref.hash;
          rec.b = ref.store_index;
          records.push_back(std::move(rec));
        }
        ObjectInfo info;
        info.key = req.key;
        info.size = req.payload.size;
        info.etag = req.payload.checksum;
        info.last_modified = node_.cluster().sim().now();
        info.owner = env.client;
        info.blob = store_blob_;
        auto oit = b->objects.find(req.key);
        if (oit != b->objects.end()) {
          info.version = oit->second.info.version + 1;
          release_manifest(oit->second.manifest, records, reclaims);
          b->info.total_bytes -= oit->second.info.size;
          oit->second.info = info;
          oit->second.manifest = ing.value().manifest;
        } else {
          info.version = 1;
          ObjectRecord obj;
          obj.info = info;
          obj.manifest = ing.value().manifest;
          b->objects.emplace(req.key, std::move(obj));
          ++b->info.object_count;
        }
        b->info.total_bytes += info.size;
        GwRecord put;
        put.kind = GwRecord::Kind::put_object;
        put.bucket = req.bucket;
        put.key = req.key;
        put.info = info;
        put.manifest = ing.value().manifest;
        records.push_back(std::move(put));
        ++stats_.puts;
        stats_.bytes_ingested += req.payload.size;
        obs::count("gateway.puts");

        auto jc = co_await journal_commit(std::move(records));
        if (!jc.ok()) co_return jc.error();
        reclaim(std::move(reclaims));

        S3PutObjectResp resp;
        resp.etag = info.etag;
        resp.version = info.version;
        resp.chunks = static_cast<std::uint32_t>(ing.value().manifest.size());
        resp.chunks_deduped = ing.value().hits;
        co_return resp;
      });

  node_.serve<S3GetObjectReq, S3GetObjectResp>(
      [this](const S3GetObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3GetObjectResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::read);
        if (!bucket.ok()) co_return bucket.error();
        auto oit = bucket.value()->objects.find(req.key);
        if (oit == bucket.value()->objects.end()) {
          co_return Error{Errc::not_found, "no such key: " + req.key};
        }
        const ObjectInfo info = oit->second.info;
        const std::uint64_t cs = options_.object_chunk_size;
        const std::uint64_t lo = std::min(req.offset, info.size);
        const std::uint64_t len = std::min(req.length, info.size - lo);
        ++stats_.gets;
        obs::count("gateway.gets");
        if (len == 0) {
          S3GetObjectResp resp;
          resp.etag = info.etag;
          co_return resp;
        }

        // Manifest range scan: only the chunks intersecting [lo, lo+len).
        struct Fetch {
          ChunkRef ref;
          std::uint64_t store_lo{0};  ///< absolute store-blob read offset
          std::uint64_t rlen{0};
          std::uint64_t obj_off{0};
          Result<blob::ReadResult> result{Errc::internal};
        };
        std::vector<Fetch> fetches;
        std::vector<ChunkRef> pinned;
        const std::uint64_t hi = lo + len;
        const std::uint64_t lo_chunk = lo / cs;
        const auto& manifest = oit->second.manifest;
        for (std::uint64_t i = lo_chunk;
             i < manifest.size() && i * cs < hi; ++i) {
          const ChunkRef& ref = manifest[i];
          const std::uint64_t base = i * cs;
          const std::uint64_t clo = std::max(lo, base);
          const std::uint64_t chi = std::min(hi, base + ref.size);
          if (chi <= clo) continue;
          Fetch f;
          f.ref = ref;
          f.store_lo = ref.store_index * cs + (clo - base);
          f.rlen = chi - clo;
          f.obj_off = clo;
          fetches.push_back(std::move(f));
          // Pin so a concurrent delete cannot reclaim the chunk mid-read.
          if (chunk_index_.find(ref.hash) != nullptr) {
            chunk_index_.pin(ref.hash);
            pinned.push_back(ref);
          }
        }

        const std::uint64_t inc = node_.incarnation();
        ClientLease client = lease_client(env.client);
        auto& sim = node_.cluster().sim();
        {
          sim::Semaphore sem(sim, options_.get_parallelism);
          sim::WaitGroup wg(sim);
          for (Fetch& f : fetches) {
            wg.launch([](blob::BlobClient& c, sim::Semaphore& s,
                         Fetch& slot) -> sim::Task<void> {
              co_await s.acquire();
              sim::SemGuard guard(s);
              slot.result = co_await c.read(slot.ref.store_blob,
                                            slot.store_lo, slot.rlen,
                                            slot.ref.store_version);
            }(*client, sem, f));
          }
          co_await wg.wait();
        }
        if (node_.incarnation() != inc || recovering_) {
          co_return Error{Errc::unavailable, "gateway restarted"};
        }
        std::vector<ChunkIndex::Entry> reclaims;
        for (const ChunkRef& ref : pinned) {
          if (auto r = chunk_index_.unpin(ref)) reclaims.push_back(std::move(*r));
        }
        reclaim(std::move(reclaims));

        S3GetObjectResp resp;
        resp.etag = info.etag;
        resp.payload.size = len;
        resp.payload.checksum = info.etag;
        bool all_bytes = true;
        std::vector<std::uint8_t> bytes(len, 0);
        for (Fetch& f : fetches) {
          if (!f.result.ok()) co_return f.result.error();
          auto data = f.result.value().assemble(f.store_lo, f.rlen);
          if (!data) {
            all_bytes = false;
            continue;
          }
          std::copy(data->begin(), data->end(),
                    bytes.begin() +
                        static_cast<std::ptrdiff_t>(f.obj_off - lo));
        }
        if (all_bytes && !fetches.empty()) {
          resp.payload = blob::Payload::from_bytes(std::move(bytes));
        }
        co_return resp;
      });

  node_.serve<S3HeadObjectReq, S3HeadObjectResp>(
      [this](const S3HeadObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3HeadObjectResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::read);
        if (!bucket.ok()) co_return bucket.error();
        auto oit = bucket.value()->objects.find(req.key);
        if (oit == bucket.value()->objects.end()) {
          co_return Error{Errc::not_found, "no such key: " + req.key};
        }
        co_return S3HeadObjectResp{oit->second.info};
      });

  node_.serve<S3DeleteObjectReq, S3DeleteObjectResp>(
      [this](const S3DeleteObjectReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3DeleteObjectResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        Bucket* b = bucket.value();
        auto oit = b->objects.find(req.key);
        if (oit == b->objects.end()) {
          co_return Error{Errc::not_found, "no such key: " + req.key};
        }
        std::vector<GwRecord> records;
        std::vector<ChunkIndex::Entry> reclaims;
        release_manifest(oit->second.manifest, records, reclaims);
        GwRecord rec;
        rec.kind = GwRecord::Kind::delete_object;
        rec.bucket = req.bucket;
        rec.key = req.key;
        records.push_back(std::move(rec));
        b->info.total_bytes -= oit->second.info.size;
        --b->info.object_count;
        b->objects.erase(oit);
        ++stats_.deletes;
        obs::count("gateway.deletes");
        auto jc = co_await journal_commit(std::move(records));
        if (!jc.ok()) co_return jc.error();
        reclaim(std::move(reclaims));
        co_return S3DeleteObjectResp{};
      });

  node_.serve<S3ListObjectsReq, S3ListObjectsResp>(
      [this](const S3ListObjectsReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3ListObjectsResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::read);
        if (!bucket.ok()) co_return bucket.error();
        S3ListObjectsResp resp;
        const auto& objects = bucket.value()->objects;
        // Range scan: jump straight to the prefix (or just past the
        // marker) instead of walking the whole bucket; the prefixed keys
        // form one contiguous run of the ordered map.
        auto it = (req.marker.empty() || req.marker < req.prefix)
                      ? objects.lower_bound(req.prefix)
                      : objects.upper_bound(req.marker);
        std::uint64_t max_keys = options_.max_keys_cap;
        if (req.max_keys > 0) max_keys = std::min(max_keys, req.max_keys);
        for (; it != objects.end(); ++it) {
          if (it->first.compare(0, req.prefix.size(), req.prefix) != 0) {
            break;  // past the prefix run
          }
          if (resp.objects.size() >= max_keys) {
            resp.truncated = true;
            resp.next_marker = resp.objects.back().key;
            break;
          }
          resp.objects.push_back(it->second.info);
        }
        co_return resp;
      });

  node_.serve<S3CreateMultipartReq, S3CreateMultipartResp>(
      [this](const S3CreateMultipartReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3CreateMultipartResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        const std::uint64_t id = next_upload_id_++;
        Mpu mpu;
        mpu.bucket = req.bucket;
        mpu.key = req.key;
        mpu.owner = env.client;
        mpus_.emplace(id, std::move(mpu));
        ++stats_.multipart_uploads;
        obs::count("gateway.multipart_uploads");
        GwRecord rec;
        rec.kind = GwRecord::Kind::mpu_create;
        rec.a = id;
        rec.bucket = req.bucket;
        rec.key = req.key;
        rec.b = env.client.value;
        std::vector<GwRecord> recs;
        recs.push_back(std::move(rec));
        auto jc = co_await journal_commit(std::move(recs));
        if (!jc.ok()) co_return jc.error();
        co_return S3CreateMultipartResp{id};
      });

  node_.serve<S3UploadPartReq, S3UploadPartResp>(
      [this](const S3UploadPartReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3UploadPartResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        auto mit = mpus_.find(req.upload_id);
        if (mit == mpus_.end() || mit->second.bucket != req.bucket ||
            mit->second.key != req.key) {
          co_return Error{Errc::not_found, "no such multipart upload"};
        }
        if (mit->second.owner != env.client) {
          co_return Error{Errc::permission_denied, "not the upload owner"};
        }
        if (req.part_number == 0) {
          co_return Error{Errc::invalid_argument, "parts are 1-based"};
        }
        if (req.payload.size == 0) {
          co_return Error{Errc::invalid_argument, "empty part"};
        }
        // Per-part resume: a retry of an already-committed part with the
        // same content acks from the journal, no chunk is re-ingested.
        auto pit = mit->second.parts.find(req.part_number);
        if (pit != mit->second.parts.end() &&
            pit->second.etag == req.payload.checksum &&
            pit->second.size == req.payload.size) {
          ++stats_.parts_resumed;
          obs::count("gateway.parts_resumed");
          S3UploadPartResp resp;
          resp.etag = pit->second.etag;
          resp.chunks =
              static_cast<std::uint32_t>(pit->second.manifest.size());
          resp.resumed = true;
          co_return resp;
        }
        auto split = split_payload(req.payload, req.chunk_sums);
        if (!split.ok()) co_return split.error();

        const std::uint64_t inc = node_.incarnation();
        ClientLease client = lease_client(env.client);
        ++stats_.parts_in_flight;
        obs::gauge_set("gateway.parts_in_flight",
                       static_cast<double>(stats_.parts_in_flight),
                       node_.cluster().sim().now());
        auto ing = co_await ingest_chunks(*client, std::move(split.value()));
        if (stats_.parts_in_flight > 0) --stats_.parts_in_flight;
        obs::gauge_set("gateway.parts_in_flight",
                       static_cast<double>(stats_.parts_in_flight),
                       node_.cluster().sim().now());
        if (!ing.ok()) co_return ing.error();
        if (node_.incarnation() != inc || recovering_) {
          co_return Error{Errc::unavailable, "gateway restarted"};
        }
        mit = mpus_.find(req.upload_id);
        if (mit == mpus_.end()) {
          rollback_ingest(ing.value());
          co_return Error{Errc::not_found, "upload aborted mid-part"};
        }

        std::vector<GwRecord> records =
            std::move(ing.value().insert_records);
        std::vector<ChunkIndex::Entry> reclaims;
        for (const ChunkRef& ref : ing.value().manifest) {
          chunk_index_.commit_ref(ref);
          GwRecord rec;
          rec.kind = GwRecord::Kind::index_ref;
          rec.a = ref.hash;
          rec.b = ref.store_index;
          records.push_back(std::move(rec));
        }
        pit = mit->second.parts.find(req.part_number);
        if (pit != mit->second.parts.end()) {
          // Re-upload with different content replaces the committed part.
          release_manifest(pit->second.manifest, records, reclaims);
        }
        PartInfo part;
        part.size = req.payload.size;
        part.etag = req.payload.checksum;
        part.manifest = ing.value().manifest;
        mit->second.parts[req.part_number] = std::move(part);
        GwRecord rec;
        rec.kind = GwRecord::Kind::mpu_part;
        rec.a = req.upload_id;
        rec.b = req.part_number;
        rec.info.size = req.payload.size;
        rec.info.etag = req.payload.checksum;
        rec.manifest = ing.value().manifest;
        records.push_back(std::move(rec));
        ++stats_.parts;
        stats_.bytes_ingested += req.payload.size;
        obs::count("gateway.parts");

        auto jc = co_await journal_commit(std::move(records));
        if (!jc.ok()) co_return jc.error();
        reclaim(std::move(reclaims));

        S3UploadPartResp resp;
        resp.etag = req.payload.checksum;
        resp.chunks = static_cast<std::uint32_t>(ing.value().manifest.size());
        resp.chunks_deduped = ing.value().hits;
        co_return resp;
      });

  node_.serve<S3CompleteMultipartReq, S3CompleteMultipartResp>(
      [this](const S3CompleteMultipartReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3CompleteMultipartResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        auto mit = mpus_.find(req.upload_id);
        if (mit == mpus_.end() || mit->second.bucket != req.bucket ||
            mit->second.key != req.key) {
          co_return Error{Errc::not_found, "no such multipart upload"};
        }
        if (mit->second.owner != env.client) {
          co_return Error{Errc::permission_denied, "not the upload owner"};
        }
        const auto& parts = mit->second.parts;
        if (req.part_count == 0 || parts.size() != req.part_count ||
            parts.begin()->first != 1 ||
            parts.rbegin()->first != req.part_count) {
          co_return Error{Errc::invalid_argument,
                          "parts 1.." + std::to_string(req.part_count) +
                              " not all committed"};
        }
        const std::uint64_t cs = options_.object_chunk_size;
        std::vector<ChunkRef> manifest;
        std::uint64_t size = 0;
        std::uint64_t etag = fnv1a_u64(req.part_count);
        for (const auto& [no, part] : parts) {
          if (no != req.part_count && part.size % cs != 0) {
            co_return Error{Errc::invalid_argument,
                            "non-final part not chunk-aligned"};
          }
          manifest.insert(manifest.end(), part.manifest.begin(),
                          part.manifest.end());
          size += part.size;
          etag = hash_combine(etag, part.etag);
        }

        Bucket* b = bucket.value();
        std::vector<GwRecord> records;
        std::vector<ChunkIndex::Entry> reclaims;
        ObjectInfo info;
        info.key = req.key;
        info.size = size;
        info.etag = etag;
        info.last_modified = node_.cluster().sim().now();
        info.owner = env.client;
        info.blob = store_blob_;
        // The parts' committed refs transfer 1:1 into the object manifest,
        // so no index_ref/release records are needed for the transfer.
        auto oit = b->objects.find(req.key);
        if (oit != b->objects.end()) {
          info.version = oit->second.info.version + 1;
          release_manifest(oit->second.manifest, records, reclaims);
          b->info.total_bytes -= oit->second.info.size;
          oit->second.info = info;
          oit->second.manifest = manifest;
        } else {
          info.version = 1;
          ObjectRecord obj;
          obj.info = info;
          obj.manifest = manifest;
          b->objects.emplace(req.key, std::move(obj));
          ++b->info.object_count;
        }
        b->info.total_bytes += size;
        mpus_.erase(req.upload_id);
        GwRecord put;
        put.kind = GwRecord::Kind::put_object;
        put.bucket = req.bucket;
        put.key = req.key;
        put.info = info;
        put.manifest = manifest;
        records.push_back(std::move(put));
        GwRecord drop;
        drop.kind = GwRecord::Kind::mpu_drop;
        drop.a = req.upload_id;
        records.push_back(std::move(drop));

        auto jc = co_await journal_commit(std::move(records));
        if (!jc.ok()) co_return jc.error();
        reclaim(std::move(reclaims));

        S3CompleteMultipartResp resp;
        resp.etag = etag;
        resp.size = size;
        resp.version = info.version;
        co_return resp;
      });

  node_.serve<S3AbortMultipartReq, S3AbortMultipartResp>(
      [this](const S3AbortMultipartReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3AbortMultipartResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        auto mit = mpus_.find(req.upload_id);
        if (mit == mpus_.end()) {
          co_return Error{Errc::not_found, "no such multipart upload"};
        }
        if (mit->second.owner != env.client &&
            !bucket.value()->acl.check(env.client,
                                       Permission::full_control)) {
          co_return Error{Errc::permission_denied, "not the upload owner"};
        }
        std::vector<GwRecord> records;
        std::vector<ChunkIndex::Entry> reclaims;
        for (const auto& [no, part] : mit->second.parts) {
          release_manifest(part.manifest, records, reclaims);
        }
        GwRecord drop;
        drop.kind = GwRecord::Kind::mpu_drop;
        drop.a = req.upload_id;
        records.push_back(std::move(drop));
        mpus_.erase(mit);
        auto jc = co_await journal_commit(std::move(records));
        if (!jc.ok()) co_return jc.error();
        reclaim(std::move(reclaims));
        co_return S3AbortMultipartResp{};
      });

  node_.serve<S3PutDeltaReq, S3PutDeltaResp>(
      [this](const S3PutDeltaReq& req, const rpc::Envelope& env)
          -> sim::Task<Result<S3PutDeltaResp>> {
        ++requests_;
        if (recovering_) co_return Error{Errc::unavailable, "recovering"};
        auto bucket =
            bucket_checked(req.bucket, env.client, Permission::write);
        if (!bucket.ok()) co_return bucket.error();
        auto oit = bucket.value()->objects.find(req.key);
        if (oit == bucket.value()->objects.end()) {
          co_return Error{Errc::not_found,
                          "delta against missing object: " + req.key};
        }
        if (oit->second.info.etag != req.base_etag) {
          // The base moved under the client; it must re-diff (or full-PUT).
          co_return Error{Errc::conflict, "delta base etag mismatch"};
        }
        if (req.new_size == 0) {
          co_return Error{Errc::invalid_argument, "empty object"};
        }
        const std::uint64_t cs = options_.object_chunk_size;
        const std::uint64_t n = blob::div_ceil(req.new_size, cs);
        auto slot_size = [&](std::uint64_t i) {
          return i + 1 == n ? req.new_size - (n - 1) * cs : cs;
        };
        std::map<std::uint64_t, const S3DeltaChunk*> shipped;
        for (const S3DeltaChunk& c : req.chunks) {
          if (c.index >= n || c.payload.size != slot_size(c.index) ||
              !shipped.emplace(c.index, &c).second) {
            co_return Error{Errc::invalid_argument,
                            "delta chunk index/size invalid"};
          }
        }
        // Every slot not shipped must be reusable from the base manifest.
        const auto& base = oit->second.manifest;
        for (std::uint64_t i = 0; i < n; ++i) {
          if (shipped.count(i)) continue;
          if (i >= base.size() || base[i].size != slot_size(i)) {
            co_return Error{Errc::invalid_argument,
                            "delta missing changed chunk " +
                                std::to_string(i)};
          }
        }
        std::vector<blob::Payload> payloads;
        payloads.reserve(shipped.size());
        for (const auto& [i, c] : shipped) payloads.push_back(c->payload);

        const std::uint64_t inc = node_.incarnation();
        ClientLease client = lease_client(env.client);
        IngestResult ingested;
        if (!payloads.empty()) {
          auto ing = co_await ingest_chunks(*client, std::move(payloads));
          if (!ing.ok()) co_return ing.error();
          if (node_.incarnation() != inc || recovering_) {
            co_return Error{Errc::unavailable, "gateway restarted"};
          }
          ingested = std::move(ing.value());
        }
        // Re-validate after the await: the object (and thus the base
        // manifest the unshipped slots lean on) may have moved.
        Bucket* b = find_bucket(req.bucket);
        auto oit2 = b == nullptr ? decltype(oit){} : b->objects.find(req.key);
        if (b == nullptr || oit2 == b->objects.end() ||
            oit2->second.info.etag != req.base_etag) {
          rollback_ingest(ingested);
          co_return Error{Errc::conflict, "delta base changed mid-upload"};
        }

        std::vector<GwRecord> records = std::move(ingested.insert_records);
        std::vector<ChunkIndex::Entry> reclaims;
        std::vector<ChunkRef> manifest(n);
        std::size_t k = 0;
        std::uint64_t bytes_shipped = 0;
        std::uint64_t bytes_shared = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
          if (shipped.count(i)) {
            manifest[i] = ingested.manifest[k++];
            chunk_index_.commit_ref(manifest[i]);
            bytes_shipped += manifest[i].size;
          } else {
            // Shared with the base version; the base's committed ref keeps
            // the entry alive until we add ours (no await in between).
            manifest[i] = oit2->second.manifest[i];
            chunk_index_.add_ref(manifest[i]);
            bytes_shared += manifest[i].size;
          }
          GwRecord rec;
          rec.kind = GwRecord::Kind::index_ref;
          rec.a = manifest[i].hash;
          rec.b = manifest[i].store_index;
          records.push_back(std::move(rec));
        }
        release_manifest(oit2->second.manifest, records, reclaims);
        ObjectInfo info;
        info.key = req.key;
        info.size = req.new_size;
        info.etag = req.new_etag;
        info.last_modified = node_.cluster().sim().now();
        info.owner = env.client;
        info.blob = store_blob_;
        info.version = oit2->second.info.version + 1;
        b->info.total_bytes -= oit2->second.info.size;
        b->info.total_bytes += req.new_size;
        oit2->second.info = info;
        oit2->second.manifest = manifest;
        GwRecord put;
        put.kind = GwRecord::Kind::put_object;
        put.bucket = req.bucket;
        put.key = req.key;
        put.info = info;
        put.manifest = manifest;
        records.push_back(std::move(put));
        ++stats_.delta_puts;
        stats_.bytes_ingested += req.new_size;
        stats_.delta_bytes_shipped += bytes_shipped;
        stats_.delta_bytes_shared += bytes_shared;
        obs::count("gateway.delta_puts");
        obs::count("gateway.delta_bytes_shipped", bytes_shipped);
        obs::count("gateway.delta_bytes_shared", bytes_shared);

        auto jc = co_await journal_commit(std::move(records));
        if (!jc.ok()) co_return jc.error();
        reclaim(std::move(reclaims));

        S3PutDeltaResp resp;
        resp.etag = info.etag;
        resp.version = info.version;
        resp.chunks_shipped = static_cast<std::uint32_t>(shipped.size());
        resp.chunks_shared = static_cast<std::uint32_t>(n - shipped.size());
        co_return resp;
      });
}

}  // namespace bs::cloud
