#include "rpc/rpc.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.hpp"

namespace bs::rpc {

Node::Node(Cluster& cluster, NodeId id, net::SiteId site,
           const NodeSpec& spec)
    : cluster_(cluster), id_(id), site_(site), spec_(spec) {
  auto& flows = cluster.flows();
  const std::string base = "node" + std::to_string(id.value);
  nic_tx_ = flows.create_resource(base + ".tx", spec.nic_bps);
  nic_rx_ = flows.create_resource(base + ".rx", spec.nic_bps);
  disk_ = flows.create_resource(base + ".disk", spec.disk_bps);
  service_sem_ = std::make_unique<sim::Semaphore>(
      cluster.sim(), std::max<std::size_t>(1, spec.service_concurrency));
}

void Node::crash(const CrashOptions& opts) {
  if (!up_) return;
  up_ = false;
  ++incarnation_;
  obs::count("node.crashes");
  if (auto* ts = obs::sink()) {
    ts->instant("node.crash", "node", 0, opts.lose_storage ? "wiped" : "",
                {"node", static_cast<std::int64_t>(id_.value)},
                {"incarnation", static_cast<std::int64_t>(incarnation_)});
  }
  for (auto& l : crash_listeners_) l(opts);
}

void Node::restart() {
  if (up_) return;
  up_ = true;
  obs::count("node.restarts");
  if (auto* ts = obs::sink()) {
    ts->instant("node.restart", "node", 0, "",
                {"node", static_cast<std::int64_t>(id_.value)});
  }
  for (auto& l : restart_listeners_) l();
}

SimDuration RetryPolicy::backoff(std::uint32_t retry, Rng& rng) const {
  double d = static_cast<double>(base_backoff);
  for (std::uint32_t i = 1; i < retry; ++i) d *= multiplier;
  d = std::min(d, static_cast<double>(max_backoff));
  if (jitter > 0) {
    const double j = std::min(jitter, 1.0);
    d *= (1.0 - j) + j * rng.next_double();
  }
  return static_cast<SimDuration>(d);
}

Cluster::Cluster(sim::Simulation& sim, net::Topology topology,
                 std::uint64_t fault_seed)
    : sim_(sim),
      topology_(std::move(topology)),
      flows_(sim),
      retry_rng_(fault_seed) {
  // Shard the simulation into per-site event lanes unless BS_SIM_LANES=off
  // keeps the single-heap reference queue (the determinism oracle). The
  // lookahead horizon is the topology's minimum WAN latency.
  const char* lanes = std::getenv("BS_SIM_LANES");
  if (lanes == nullptr || std::string_view(lanes) != "off") {
    sim_.configure_sites(topology_.site_count(),
                         topology_.min_cross_site_latency());
  }
  if (const char* threads = std::getenv("BS_SIM_THREADS")) {
    const std::string_view tv(threads);
    if (!tv.empty() && tv != "off" && tv != "0") {
      unsigned n = 0;
      for (const char c : tv) {
        if (c < '0' || c > '9') {
          n = 0;
          break;
        }
        n = n * 10 + static_cast<unsigned>(c - '0');
      }
      if (n > 0) sim_.set_worker_threads(n);
    }
  }
}

Node* Cluster::add_node(net::SiteId site, const NodeSpec& spec) {
  assert(site < topology_.site_count());
  const NodeId id{nodes_.size()};
  nodes_.push_back(std::make_unique<Node>(*this, id, site, spec));
  return nodes_.back().get();
}

void Cluster::retire_node(NodeId id) {
  if (Node* n = node(id)) n->set_up(false);
}

Node* Cluster::node(NodeId id) {
  if (!id.valid() || id.value >= nodes_.size()) return nullptr;
  return nodes_[id.value].get();
}

// bslint: allow(coro-ref-param): see rpc.hpp — cluster-owned nodes
sim::Task<void> Cluster::transmit(Node& a, Node& b, std::uint64_t bytes,
                                  net::Resource* extra) {
  if (bytes == 0) co_return;
  if (bytes < kFlowThreshold) {
    // Control-plane message: pure serialization delay, no contention. Keeps
    // the flow scheduler's active set small while the data plane dominates.
    const double rate = std::min(a.spec().nic_bps, b.spec().nic_bps);
    co_await sim_.delay(
        simtime::seconds(static_cast<double>(bytes) / rate));
  } else {
    std::vector<net::Resource*> rs{a.nic_tx(), b.nic_rx()};
    if (net::Resource* wan = wan_link(a.site(), b.site())) {
      rs.push_back(wan);
    }
    if (extra != nullptr) rs.push_back(extra);
    co_await flows_.transfer(static_cast<double>(bytes), std::move(rs));
  }
}

net::Resource* Cluster::wan_link(net::SiteId a, net::SiteId b) {
  if (a == b || topology_.wan_bandwidth() <= 0) return nullptr;
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  const std::uint64_t key = (hi << 32) | lo;
  auto it = wan_links_.find(key);
  if (it == wan_links_.end()) {
    it = wan_links_
             .emplace(key, flows_.create_resource(
                               "wan." + std::to_string(lo) + "-" +
                                   std::to_string(hi),
                               topology_.wan_bandwidth()))
             .first;
  }
  return it->second;
}

// bslint: allow(coro-ref-param): see rpc.hpp — cluster-owned node
sim::Task<Result<detail::AnyPtr>> Cluster::call_erased(
    Node& src, NodeId dst, std::type_index type, const char* name,
    detail::AnyPtr req, std::uint64_t req_bytes, bool payload_to_disk,
    CallOptions opts) {
  const RetryPolicy policy = opts.retry ? *opts.retry : default_retry_;
  obs::TraceSink* ts = obs::sink();
  obs::Span call_span;
  if (ts) {
    call_span = ts->span(name, "rpc", opts.parent_span,
                         {"bytes", static_cast<std::int64_t>(req_bytes)},
                         {"dst", static_cast<std::int64_t>(dst.value)});
  }
  for (std::uint32_t attempt = 1;; ++attempt) {
    CallOptions att_opts = opts;
    obs::Span att;
    if (ts) {
      att = ts->span("rpc.attempt", "rpc", call_span.id(),
                     {"attempt", attempt});
      att_opts.parent_span = att.id();
    }
    auto r = co_await call_attempt(src, dst, type, name, req, req_bytes,
                                   payload_to_disk, att_opts);
    if (ts) att.end(errc_name(r.code()));
    if (r.ok() || attempt >= policy.max_attempts ||
        !RetryPolicy::retryable(r.error().code)) {
      if (ts) call_span.end(errc_name(r.code()));
      co_return r;
    }
    ++calls_retried_;
    obs::count("rpc.calls_retried");
    const SimDuration backoff = policy.backoff(attempt, retry_rng_);
    if (ts) {
      ts->instant("rpc.retry", "rpc", call_span.id(),
                  errc_name(r.error().code), {"attempt", attempt},
                  {"backoff_ns", backoff});
    }
    co_await sim_.delay(backoff);
  }
}

// bslint: allow(coro-ref-param): see rpc.hpp — cluster-owned node
sim::Task<Result<detail::AnyPtr>> Cluster::call_attempt(
    Node& src, NodeId dst, std::type_index type, const char* name,
    detail::AnyPtr req, std::uint64_t req_bytes, bool payload_to_disk,
    CallOptions opts) {
  ++calls_started_;
  obs::count("rpc.calls_started");
  auto state = std::make_shared<CallState>(sim_);
  sim_.spawn(call_body(state, &src, node(dst), type, name, std::move(req),
                       req_bytes, payload_to_disk, opts));
  if (opts.timeout > 0 && opts.timeout < simtime::kInfinite) {
    auto watcher = [this, state] {
      if (!state->settled) {
        state->settled = true;
        state->result = Error{Errc::timeout, "rpc timeout"};
        ++timeouts_;
        obs::count("rpc.timeouts");
        state->done.set();
      }
    };
    static_assert(sim::InlineCallback::fits_inline<decltype(watcher)>(),
                  "per-call timeout watcher must not allocate");
    sim_.schedule_in(opts.timeout, std::move(watcher));
  }
  co_await state->done.wait();
  co_return state->result;
}

sim::Task<void> Cluster::call_body(std::shared_ptr<CallState> state,
                                   Node* src, Node* dst, std::type_index type,
                                   const char* name, detail::AnyPtr req,
                                   std::uint64_t req_bytes,
                                   bool payload_to_disk, CallOptions opts) {
  auto settle = [&](Result<detail::AnyPtr> r) {
    if (state->settled) return;  // lost to the timeout watcher
    state->settled = true;
    state->result = std::move(r);
    state->done.set();
  };

  if (src == nullptr || !src->up()) {
    settle(Error{Errc::unavailable, "source node down"});
    co_return;
  }
  if (dst == nullptr || !dst->up() || !dst->serves(type)) {
    settle(Error{Errc::unavailable,
                 std::string("no service for ") + name});
    co_return;
  }

  // Pin both endpoints to their current incarnation: a crash on either side
  // while the call is in flight invalidates the request, the queued work and
  // the response. Every await below re-checks the pins.
  const std::uint64_t src_inc = src->incarnation();
  const std::uint64_t dst_inc = dst->incarnation();
  auto src_alive = [&] { return src->up() && src->incarnation() == src_inc; };
  auto dst_alive = [&] { return dst->up() && dst->incarnation() == dst_inc; };

  obs::TraceSink* ts = obs::sink();
  SimDuration latency = topology_.latency(src->site(), dst->site());
  if (link_fault_) {
    const LinkFault lf = link_fault_(src->site(), dst->site());
    if (lf.drop) {
      // Request lost on the wire: never settles, the timeout watcher fires.
      ++messages_dropped_;
      obs::count("rpc.messages_dropped");
      if (ts) {
        ts->instant("rpc.drop", "rpc", opts.parent_span, "request",
                    {"dst", static_cast<std::int64_t>(dst->id().value)});
      }
      co_return;
    }
    latency += lf.extra_latency;
  }
  Envelope env;
  env.client = opts.client;
  env.src_node = src->id();
  env.sent_at = sim_.now();
  env.parent_span = opts.parent_span;

  // Crossing the WAN moves the envelope into the destination site's event
  // lane — the site-tagged hand-off the sharded stepper merges on.
  co_await sim_.hop_to_site(dst->site(), latency);
  co_await transmit(*src, *dst, req_bytes,
                    payload_to_disk ? dst->disk() : nullptr);
  if (!dst_alive()) {
    settle(Error{Errc::unavailable, "destination crashed"});
    co_return;
  }
  if (!src_alive()) co_return;  // caller crashed; nobody awaits the result

  RequestInfo info;
  info.name = name;
  info.client = opts.client;
  info.src = src->id();
  info.request_bytes = req_bytes;

  // Admission: cheap rejection before any service capacity is consumed.
  if (dst->admission_) {
    if (auto admit = dst->admission_(env, name); !admit.ok()) {
      info.outcome = admit.error().code;
      obs::count("rpc.admission_rejects");
      if (ts) {
        ts->instant("rpc.reject", "rpc", opts.parent_span,
                    errc_name(admit.error().code),
                    {"dst", static_cast<std::int64_t>(dst->id().value)},
                    {"client", static_cast<std::int64_t>(opts.client.value)});
      }
      if (dst->observer_) dst->observer_(info);
      settle(admit.error());
      co_return;
    }
  }

  // The serve span covers queue wait + service on the destination. It is a
  // root of its own span tree (server work can legitimately outlive a
  // timed-out client attempt); the `cause` arg links it to the attempt.
  obs::Span serve;
  if (ts) {
    serve = ts->span(name, "rpc.serve", 0,
                     {"dst", static_cast<std::int64_t>(dst->id().value)},
                     {"cause", static_cast<std::int64_t>(opts.parent_span)});
    env.parent_span = serve.id();
  }

  // Service queue: bounded concurrency + fixed per-request overhead. A
  // flood of small requests saturates this, which is the DoS vector the
  // self-protection experiments exercise.
  if (dst->service_sem_->waiting() >= dst->spec().service_queue_limit) {
    info.outcome = Errc::unavailable;
    obs::count("rpc.load_shed");
    if (ts) {
      ts->instant("rpc.shed", "rpc", serve.id(), "queue overloaded",
                  {"dst", static_cast<std::int64_t>(dst->id().value)});
      serve.end(errc_name(Errc::unavailable));
    }
    if (dst->observer_) dst->observer_(info);
    settle(Error{Errc::unavailable, "service queue overloaded"});
    co_return;
  }
  const SimTime enqueue_at = sim_.now();
  co_await dst->service_sem_->acquire();
  if (!dst_alive()) {
    // The crash wiped the logical service queue: this waiter resumed into a
    // dead (or reincarnated) node, so its request is lost. The slot is still
    // handed on so the queue drains deterministically.
    dst->service_sem_->release();
    serve.end("aborted");
    settle(Error{Errc::unavailable, "destination crashed"});
    co_return;
  }
  info.queue_wait = sim_.now() - enqueue_at;
  const SimTime service_start = sim_.now();

  co_await sim_.delay(dst->spec().service_overhead);
  if (!dst_alive()) {
    dst->service_sem_->release();
    serve.end("aborted");
    settle(Error{Errc::unavailable, "destination crashed"});
    co_return;
  }
  detail::AnyResponse resp =
      co_await dst->handlers_[type](std::move(req), env);
  dst->service_sem_->release();
  if (!dst_alive()) {
    // Handler finished on a node that crashed mid-service: result lost.
    serve.end("aborted");
    settle(Error{Errc::unavailable, "destination crashed"});
    co_return;
  }

  ++dst->served_;
  info.service_time = sim_.now() - service_start;
  info.outcome = resp.status.ok() ? Errc::ok : resp.status.error().code;
  info.response_bytes = resp.wire_size;
  serve.end(errc_name(info.outcome));
  obs::count("rpc.requests_served");
  if (auto* m = obs::metrics()) {
    m->histogram("rpc.queue_wait_ms", 0.0, 10000.0, 200)
        .add(simtime::to_millis(info.queue_wait));
    m->histogram("rpc.service_ms", 0.0, 10000.0, 200)
        .add(simtime::to_millis(info.service_time));
  }
  if (dst->observer_) dst->observer_(info);

  if (!resp.status.ok()) {
    settle(resp.status.error());
    co_return;
  }

  // Response direction: link rules may have changed while the request was
  // being served, so they are re-evaluated for the way back.
  SimDuration resp_latency = topology_.latency(dst->site(), src->site());
  if (link_fault_) {
    const LinkFault lf = link_fault_(dst->site(), src->site());
    if (lf.drop) {
      ++messages_dropped_;
      obs::count("rpc.messages_dropped");
      if (ts) {
        ts->instant("rpc.drop", "rpc", opts.parent_span, "response",
                    {"dst", static_cast<std::int64_t>(dst->id().value)});
      }
      co_return;  // response lost; the caller's timeout fires
    }
    resp_latency += lf.extra_latency;
  }
  co_await sim_.hop_to_site(src->site(), resp_latency);
  co_await transmit(*dst, *src, resp.wire_size,
                    resp.from_disk ? dst->disk() : nullptr);
  if (!dst_alive()) co_return;  // crashed before the last byte left
  if (!src_alive()) co_return;  // caller crashed while the response flew
  settle(std::move(resp.payload));
}

}  // namespace bs::rpc
