#include "rpc/rpc.hpp"

#include <algorithm>
#include <cassert>

namespace bs::rpc {

Node::Node(Cluster& cluster, NodeId id, net::SiteId site,
           const NodeSpec& spec)
    : cluster_(cluster), id_(id), site_(site), spec_(spec) {
  auto& flows = cluster.flows();
  const std::string base = "node" + std::to_string(id.value);
  nic_tx_ = flows.create_resource(base + ".tx", spec.nic_bps);
  nic_rx_ = flows.create_resource(base + ".rx", spec.nic_bps);
  disk_ = flows.create_resource(base + ".disk", spec.disk_bps);
  service_sem_ = std::make_unique<sim::Semaphore>(
      cluster.sim(), std::max<std::size_t>(1, spec.service_concurrency));
}

Cluster::Cluster(sim::Simulation& sim, net::Topology topology)
    : sim_(sim), topology_(std::move(topology)), flows_(sim) {}

Node* Cluster::add_node(net::SiteId site, const NodeSpec& spec) {
  assert(site < topology_.site_count());
  const NodeId id{nodes_.size()};
  nodes_.push_back(std::make_unique<Node>(*this, id, site, spec));
  return nodes_.back().get();
}

void Cluster::retire_node(NodeId id) {
  if (Node* n = node(id)) n->set_up(false);
}

Node* Cluster::node(NodeId id) {
  if (!id.valid() || id.value >= nodes_.size()) return nullptr;
  return nodes_[id.value].get();
}

sim::Task<void> Cluster::transmit(Node& a, Node& b, std::uint64_t bytes,
                                  net::Resource* extra) {
  if (bytes == 0) co_return;
  if (bytes < kFlowThreshold) {
    // Control-plane message: pure serialization delay, no contention. Keeps
    // the flow scheduler's active set small while the data plane dominates.
    const double rate = std::min(a.spec().nic_bps, b.spec().nic_bps);
    co_await sim_.delay(
        simtime::seconds(static_cast<double>(bytes) / rate));
  } else {
    std::vector<net::Resource*> rs{a.nic_tx(), b.nic_rx()};
    if (extra != nullptr) rs.push_back(extra);
    co_await flows_.transfer(static_cast<double>(bytes), std::move(rs));
  }
}

sim::Task<Result<detail::AnyPtr>> Cluster::call_erased(
    Node& src, NodeId dst, std::type_index type, const char* name,
    detail::AnyPtr req, std::uint64_t req_bytes, bool payload_to_disk,
    CallOptions opts) {
  ++calls_started_;
  auto state = std::make_shared<CallState>(sim_);
  sim_.spawn(call_body(state, &src, node(dst), type, name, std::move(req),
                       req_bytes, payload_to_disk, opts));
  if (opts.timeout > 0 && opts.timeout < simtime::kInfinite) {
    sim_.schedule_in(opts.timeout, [this, state] {
      if (!state->settled) {
        state->settled = true;
        state->result = Error{Errc::timeout, "rpc timeout"};
        ++timeouts_;
        state->done.set();
      }
    });
  }
  co_await state->done.wait();
  co_return state->result;
}

sim::Task<void> Cluster::call_body(std::shared_ptr<CallState> state,
                                   Node* src, Node* dst, std::type_index type,
                                   const char* name, detail::AnyPtr req,
                                   std::uint64_t req_bytes,
                                   bool payload_to_disk, CallOptions opts) {
  auto settle = [&](Result<detail::AnyPtr> r) {
    if (state->settled) return;  // lost to the timeout watcher
    state->settled = true;
    state->result = std::move(r);
    state->done.set();
  };

  if (src == nullptr || !src->up()) {
    settle(Error{Errc::unavailable, "source node down"});
    co_return;
  }
  if (dst == nullptr || !dst->up() || !dst->serves(type)) {
    settle(Error{Errc::unavailable,
                 std::string("no service for ") + name});
    co_return;
  }

  const SimDuration latency =
      topology_.latency(src->site(), dst->site());
  Envelope env;
  env.client = opts.client;
  env.src_node = src->id();
  env.sent_at = sim_.now();

  co_await sim_.delay(latency);
  co_await transmit(*src, *dst, req_bytes,
                    payload_to_disk ? dst->disk() : nullptr);

  RequestInfo info;
  info.name = name;
  info.client = opts.client;
  info.src = src->id();
  info.request_bytes = req_bytes;

  // Admission: cheap rejection before any service capacity is consumed.
  if (dst->admission_) {
    if (auto admit = dst->admission_(env, name); !admit.ok()) {
      info.outcome = admit.error().code;
      if (dst->observer_) dst->observer_(info);
      settle(admit.error());
      co_return;
    }
  }

  // Service queue: bounded concurrency + fixed per-request overhead. A
  // flood of small requests saturates this, which is the DoS vector the
  // self-protection experiments exercise.
  if (dst->service_sem_->waiting() >= dst->spec().service_queue_limit) {
    info.outcome = Errc::unavailable;
    if (dst->observer_) dst->observer_(info);
    settle(Error{Errc::unavailable, "service queue overloaded"});
    co_return;
  }
  const SimTime enqueue_at = sim_.now();
  co_await dst->service_sem_->acquire();
  info.queue_wait = sim_.now() - enqueue_at;
  const SimTime service_start = sim_.now();

  co_await sim_.delay(dst->spec().service_overhead);
  detail::AnyResponse resp =
      co_await dst->handlers_[type](std::move(req), env);
  dst->service_sem_->release();

  ++dst->served_;
  info.service_time = sim_.now() - service_start;
  info.outcome = resp.status.ok() ? Errc::ok : resp.status.error().code;
  info.response_bytes = resp.wire_size;
  if (dst->observer_) dst->observer_(info);

  if (!resp.status.ok()) {
    settle(resp.status.error());
    co_return;
  }

  co_await sim_.delay(latency);
  co_await transmit(*dst, *src, resp.wire_size,
                    resp.from_disk ? dst->disk() : nullptr);
  settle(std::move(resp.payload));
}

}  // namespace bs::rpc
