// Simulated cluster + typed RPC. A Cluster owns Nodes placed on a Topology;
// calls between nodes pay propagation latency, transfer payloads through the
// flow scheduler (large payloads contend for NIC/disk bandwidth), pass an
// admission hook (the attachment point of the self-protection framework) and
// an optional service queue (bounded concurrency + per-request overhead,
// which is what a flood of small requests saturates), then run a registered
// coroutine handler.
//
// Request/response types are plain structs declaring:
//   static constexpr const char* kName;            // for observability
//   std::uint64_t wire_size() const;               // payload bytes
// and optionally:
//   static constexpr bool kPayloadToDisk = true;   // request payload is
//                                                  // streamed to dst disk
//   static constexpr bool kResponseFromDisk = true;// response payload is
//                                                  // read from dst disk
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/flow.hpp"
#include "net/topology.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace bs::rpc {

class Cluster;

/// Per-call metadata travelling with every request.
struct Envelope {
  ClientId client{};      ///< authenticated caller identity (may be invalid)
  NodeId src_node{};
  SimTime sent_at{0};
  /// Trace span enclosing the server-side work (the serve span once the
  /// request is admitted); handlers parent their downstream calls on it so
  /// a client write shows its nested provider/metadata/manager activity.
  obs::SpanId parent_span{0};
};

/// Retry policy: exponential backoff with jitter, deterministic because the
/// jitter is drawn from the cluster's seeded RNG. `max_attempts == 1`
/// disables retries. Only transport-level failures (timeout, unavailable)
/// are retried; application errors propagate to the caller unchanged.
struct RetryPolicy {
  std::uint32_t max_attempts{1};
  SimDuration base_backoff{simtime::millis(50)};
  double multiplier{2.0};
  SimDuration max_backoff{simtime::seconds(5)};
  /// Fraction of each backoff that is randomized: the delay before retry k
  /// is uniform in [d*(1-jitter), d] with d = min(base*mult^(k-1), max).
  double jitter{0.5};

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }
  [[nodiscard]] SimDuration backoff(std::uint32_t retry, Rng& rng) const;
  [[nodiscard]] static bool retryable(Errc code) {
    return code == Errc::timeout || code == Errc::unavailable;
  }
};

/// Options for a single call. `timeout` is per attempt; with a retry policy
/// the overall deadline is the sum of attempt timeouts plus backoffs.
struct CallOptions {
  SimDuration timeout{simtime::seconds(30)};
  ClientId client{};
  /// Per-call override; when absent the cluster default applies.
  std::optional<RetryPolicy> retry{};
  /// Trace span this call nests under (0 = root).
  obs::SpanId parent_span{0};
};

/// How a node crashes. Fail-stop: in-flight RPCs touching the node (either
/// side), queued requests and un-sent responses are all lost.
struct CrashOptions {
  bool lose_storage{false};  ///< stateful services wipe their stores
  /// Power-loss flavour: the journaled store's last un-synced record is
  /// left half-written and must be scanned and truncated at recovery.
  bool torn_tail{false};
};

/// Observation record handed to the instrumentation layer for every request
/// a node serves (or rejects).
struct RequestInfo {
  const char* name{""};
  ClientId client{};
  NodeId src{};
  std::uint64_t request_bytes{0};
  std::uint64_t response_bytes{0};
  SimDuration queue_wait{0};
  SimDuration service_time{0};
  Errc outcome{Errc::ok};
};

/// Hardware description of a simulated machine.
struct NodeSpec {
  double nic_bps{net::gbit_per_sec(1.0)};   ///< full-duplex per direction
  double disk_bps{net::mb_per_sec(400.0)};
  std::uint64_t disk_capacity{64ull * units::GB};
  std::size_t service_concurrency{4};       ///< parallel request slots
  SimDuration service_overhead{simtime::micros(300)};  ///< per request
  /// Requests queued beyond this are rejected with `unavailable`
  /// (overload shedding); effectively unbounded by default.
  std::size_t service_queue_limit{100000};
};

namespace detail {
using AnyPtr = std::shared_ptr<void>;
struct AnyResponse {
  Result<void> status;   // error, if the handler failed
  AnyPtr payload;        // valid iff status.ok()
  std::uint64_t wire_size{0};
  bool from_disk{false};
};
using ErasedHandler =
    std::function<sim::Task<AnyResponse>(AnyPtr, Envelope)>;

template <class T>
concept HasPayloadToDisk = requires { T::kPayloadToDisk; };
template <class T>
concept HasResponseFromDisk = requires { T::kResponseFromDisk; };

template <class T>
constexpr bool payload_to_disk() {
  if constexpr (HasPayloadToDisk<T>) return T::kPayloadToDisk;
  return false;
}
template <class T>
constexpr bool response_from_disk() {
  if constexpr (HasResponseFromDisk<T>) return T::kResponseFromDisk;
  return false;
}
}  // namespace detail

class Node {
 public:
  using AdmissionHook =
      std::function<Result<void>(const Envelope&, const char* req_name)>;
  using RequestObserver = std::function<void(const RequestInfo&)>;
  using CrashListener = std::function<void(const CrashOptions&)>;
  using RestartListener = std::function<void()>;

  Node(Cluster& cluster, NodeId id, net::SiteId site, const NodeSpec& spec);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] net::SiteId site() const { return site_; }
  [[nodiscard]] const NodeSpec& spec() const { return spec_; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }

  [[nodiscard]] bool up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  /// Fail-stop crash: bumps the incarnation (invalidating every RPC pinned
  /// to the old one) and runs crash listeners so stateful services can stop
  /// background loops and optionally wipe their stores. No-op if down.
  void crash(const CrashOptions& opts = {});
  /// Brings a crashed node back up and runs restart listeners (services
  /// re-register, heartbeats resume). No-op if already up.
  void restart();
  /// Bumped on every crash. RPCs pin both endpoints' incarnations at send
  /// time and abandon the call when either changes mid-flight.
  [[nodiscard]] std::uint64_t incarnation() const { return incarnation_; }
  void add_crash_listener(CrashListener l) {
    crash_listeners_.push_back(std::move(l));
  }
  void add_restart_listener(RestartListener l) {
    restart_listeners_.push_back(std::move(l));
  }

  net::Resource* nic_tx() { return nic_tx_; }
  net::Resource* nic_rx() { return nic_rx_; }
  net::Resource* disk() { return disk_; }

  /// Registers a coroutine handler for requests of type Req.
  template <class Req, class Resp, class F>
  void serve(F handler) {
    handlers_[std::type_index(typeid(Req))] =
        [handler = std::move(handler)](detail::AnyPtr any,
                                       Envelope env) -> sim::Task<detail::AnyResponse> {
      auto req = std::static_pointer_cast<Req>(std::move(any));
      Result<Resp> result = co_await handler(*req, env);
      detail::AnyResponse out;
      if (result.ok()) {
        auto payload = std::make_shared<Resp>(std::move(result).value());
        out.wire_size = payload->wire_size();
        out.from_disk = detail::response_from_disk<Req>();
        out.payload = std::move(payload);
        out.status = ok_result();
      } else {
        out.status = result.error();
      }
      co_return out;
    };
  }

  [[nodiscard]] bool serves(std::type_index t) const {
    return handlers_.count(t) > 0;
  }

  /// Admission control: run before queueing; an error rejects the request
  /// without consuming service capacity (this is how blocked clients are
  /// turned away cheaply).
  void set_admission(AdmissionHook hook) { admission_ = std::move(hook); }

  /// Instrumentation tap: invoked once per served/rejected request.
  void set_request_observer(RequestObserver obs) { observer_ = std::move(obs); }

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  friend class Cluster;

  Cluster& cluster_;
  NodeId id_;
  net::SiteId site_;
  NodeSpec spec_;
  bool up_{true};
  std::uint64_t incarnation_{0};
  std::vector<CrashListener> crash_listeners_;
  std::vector<RestartListener> restart_listeners_;
  net::Resource* nic_tx_;
  net::Resource* nic_rx_;
  net::Resource* disk_;
  std::unique_ptr<sim::Semaphore> service_sem_;
  std::unordered_map<std::type_index, detail::ErasedHandler> handlers_;
  AdmissionHook admission_;
  RequestObserver observer_;
  std::uint64_t served_{0};
};

class Cluster {
 public:
  /// `fault_seed` feeds the RNG used for retry jitter (and nothing else),
  /// keeping backoff schedules deterministic per seed.
  Cluster(sim::Simulation& sim, net::Topology topology,
          std::uint64_t fault_seed = 0xB5FA117ull);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] net::FlowScheduler& flows() { return flows_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }

  /// Creates a node on `site`.
  Node* add_node(net::SiteId site, const NodeSpec& spec = {});

  /// Removes a node from service (it stays addressable but unavailable).
  void retire_node(NodeId id);

  [[nodiscard]] Node* node(NodeId id);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Typed RPC. Fails with `unavailable` when dst is down/unknown,
  /// `timeout` when opts.timeout elapses first, or whatever the admission
  /// hook / handler returns.
  template <class Req, class Resp>
  // bslint: allow(coro-ref-param): src is cluster-owned and lives for the
  // whole simulation; the request moves into a shared_ptr immediately
  sim::Task<Result<Resp>> call(Node& src, NodeId dst, Req req,
                               CallOptions opts = {}) {
    auto any = std::make_shared<Req>(std::move(req));
    const std::uint64_t req_bytes = any->wire_size();
    auto erased = co_await call_erased(
        src, dst, std::type_index(typeid(Req)), Req::kName, std::move(any),
        req_bytes, detail::payload_to_disk<Req>(), opts);
    if (!erased.ok()) co_return erased.error();
    co_return std::move(*std::static_pointer_cast<Resp>(erased.value()));
  }

  /// Messages smaller than this bypass the flow scheduler (pure
  /// latency + serialization delay); larger payloads contend for bandwidth.
  static constexpr std::uint64_t kFlowThreshold = 64 * units::KiB;

  /// Link-level fault, evaluated once per message direction at send time. A
  /// dropped message vanishes (the caller's timeout fires); extra latency is
  /// added to the propagation delay of that message only.
  struct LinkFault {
    bool drop{false};
    SimDuration extra_latency{0};
  };
  using LinkFaultFn = std::function<LinkFault(net::SiteId from, net::SiteId to)>;
  /// Installs the fault-plane hook (empty function clears it).
  void set_link_fault_fn(LinkFaultFn fn) { link_fault_ = std::move(fn); }

  /// Default retry policy for calls that don't carry their own. Disabled by
  /// default: retries are opt-in per client.
  void set_default_retry(RetryPolicy policy) { default_retry_ = policy; }
  [[nodiscard]] const RetryPolicy& default_retry() const {
    return default_retry_;
  }

  /// `calls_started` counts every attempt (retries included); `timeouts`
  /// counts every attempt that timed out, so with retries enabled one
  /// logical call can contribute several of each.
  [[nodiscard]] std::uint64_t calls_started() const { return calls_started_; }
  [[nodiscard]] std::uint64_t calls_timed_out() const { return timeouts_; }
  [[nodiscard]] std::uint64_t calls_retried() const { return calls_retried_; }
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return messages_dropped_;
  }

 private:
  struct CallState {
    explicit CallState(sim::Simulation& sim) : done(sim) {}
    sim::Event done;
    bool settled{false};
    Result<detail::AnyPtr> result{Errc::internal};
  };

  /// Retry loop around `call_attempt`, driven by the effective RetryPolicy.
  // bslint: allow(coro-ref-param): src is cluster-owned for the whole sim
  sim::Task<Result<detail::AnyPtr>> call_erased(
      Node& src, NodeId dst, std::type_index type, const char* name,
      detail::AnyPtr req, std::uint64_t req_bytes, bool payload_to_disk,
      CallOptions opts);

  /// One attempt: spawns the call body and races it against the timeout.
  /// Options are by value (coroutine-frame copy, bslint coro-ref-param).
  // bslint: allow(coro-ref-param): src is cluster-owned for the whole sim
  sim::Task<Result<detail::AnyPtr>> call_attempt(
      Node& src, NodeId dst, std::type_index type, const char* name,
      detail::AnyPtr req, std::uint64_t req_bytes, bool payload_to_disk,
      CallOptions opts);

  sim::Task<void> call_body(std::shared_ptr<CallState> state, Node* src,
                            Node* dst, std::type_index type, const char* name,
                            detail::AnyPtr req, std::uint64_t req_bytes,
                            bool payload_to_disk, CallOptions opts);

  /// Models moving `bytes` from a to b (no-op for zero bytes). `extra` is an
  /// additional resource (e.g. destination disk) included in the flow.
  // bslint: allow(coro-ref-param): both nodes are cluster-owned; only the
  // cluster spawns transmits, and never across a node teardown
  sim::Task<void> transmit(Node& a, Node& b, std::uint64_t bytes,
                           net::Resource* extra);

  /// Lazily-created shared backbone resource for a distinct site pair;
  /// nullptr when the topology leaves WAN bandwidth uncapped or a == b.
  net::Resource* wan_link(net::SiteId a, net::SiteId b);

  sim::Simulation& sim_;
  net::Topology topology_;
  net::FlowScheduler flows_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::uint64_t, net::Resource*> wan_links_;  ///< by site pair key
  LinkFaultFn link_fault_;
  RetryPolicy default_retry_{};
  Rng retry_rng_;
  std::uint64_t calls_started_{0};
  std::uint64_t timeouts_{0};
  std::uint64_t calls_retried_{0};
  std::uint64_t messages_dropped_{0};
};

}  // namespace bs::rpc
