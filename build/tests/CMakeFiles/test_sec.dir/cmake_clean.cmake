file(REMOVE_RECURSE
  "CMakeFiles/test_sec.dir/sec/test_default_policies.cpp.o"
  "CMakeFiles/test_sec.dir/sec/test_default_policies.cpp.o.d"
  "CMakeFiles/test_sec.dir/sec/test_policy_lang.cpp.o"
  "CMakeFiles/test_sec.dir/sec/test_policy_lang.cpp.o.d"
  "CMakeFiles/test_sec.dir/sec/test_security.cpp.o"
  "CMakeFiles/test_sec.dir/sec/test_security.cpp.o.d"
  "test_sec"
  "test_sec.pdb"
  "test_sec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
