file(REMOVE_RECURSE
  "CMakeFiles/test_mon.dir/intro/test_introspection.cpp.o"
  "CMakeFiles/test_mon.dir/intro/test_introspection.cpp.o.d"
  "CMakeFiles/test_mon.dir/mon/test_mon_extra.cpp.o"
  "CMakeFiles/test_mon.dir/mon/test_mon_extra.cpp.o.d"
  "CMakeFiles/test_mon.dir/mon/test_monitoring.cpp.o"
  "CMakeFiles/test_mon.dir/mon/test_monitoring.cpp.o.d"
  "test_mon"
  "test_mon.pdb"
  "test_mon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
