
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_flow.cpp" "tests/CMakeFiles/test_sim.dir/net/test_flow.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/net/test_flow.cpp.o.d"
  "/root/repo/tests/net/test_flow_property.cpp" "tests/CMakeFiles/test_sim.dir/net/test_flow_property.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/net/test_flow_property.cpp.o.d"
  "/root/repo/tests/rpc/test_rpc.cpp" "tests/CMakeFiles/test_sim.dir/rpc/test_rpc.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/rpc/test_rpc.cpp.o.d"
  "/root/repo/tests/sim/test_simulation.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/bs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
