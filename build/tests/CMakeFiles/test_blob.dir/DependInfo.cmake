
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blob/test_blob_e2e.cpp" "tests/CMakeFiles/test_blob.dir/blob/test_blob_e2e.cpp.o" "gcc" "tests/CMakeFiles/test_blob.dir/blob/test_blob_e2e.cpp.o.d"
  "/root/repo/tests/blob/test_failure_injection.cpp" "tests/CMakeFiles/test_blob.dir/blob/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/test_blob.dir/blob/test_failure_injection.cpp.o.d"
  "/root/repo/tests/blob/test_meta.cpp" "tests/CMakeFiles/test_blob.dir/blob/test_meta.cpp.o" "gcc" "tests/CMakeFiles/test_blob.dir/blob/test_meta.cpp.o.d"
  "/root/repo/tests/blob/test_provider_allocation.cpp" "tests/CMakeFiles/test_blob.dir/blob/test_provider_allocation.cpp.o" "gcc" "tests/CMakeFiles/test_blob.dir/blob/test_provider_allocation.cpp.o.d"
  "/root/repo/tests/blob/test_version_manager.cpp" "tests/CMakeFiles/test_blob.dir/blob/test_version_manager.cpp.o" "gcc" "tests/CMakeFiles/test_blob.dir/blob/test_version_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blob/CMakeFiles/bs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
