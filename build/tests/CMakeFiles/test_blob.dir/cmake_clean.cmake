file(REMOVE_RECURSE
  "CMakeFiles/test_blob.dir/blob/test_blob_e2e.cpp.o"
  "CMakeFiles/test_blob.dir/blob/test_blob_e2e.cpp.o.d"
  "CMakeFiles/test_blob.dir/blob/test_failure_injection.cpp.o"
  "CMakeFiles/test_blob.dir/blob/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_blob.dir/blob/test_meta.cpp.o"
  "CMakeFiles/test_blob.dir/blob/test_meta.cpp.o.d"
  "CMakeFiles/test_blob.dir/blob/test_provider_allocation.cpp.o"
  "CMakeFiles/test_blob.dir/blob/test_provider_allocation.cpp.o.d"
  "CMakeFiles/test_blob.dir/blob/test_version_manager.cpp.o"
  "CMakeFiles/test_blob.dir/blob/test_version_manager.cpp.o.d"
  "test_blob"
  "test_blob.pdb"
  "test_blob[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
