# Empty dependencies file for autonomic_cloud.
# This may be replaced when dependencies are built.
