file(REMOVE_RECURSE
  "CMakeFiles/autonomic_cloud.dir/autonomic_cloud.cpp.o"
  "CMakeFiles/autonomic_cloud.dir/autonomic_cloud.cpp.o.d"
  "autonomic_cloud"
  "autonomic_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomic_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
