# Empty compiler generated dependencies file for elastic_storage.
# This may be replaced when dependencies are built.
