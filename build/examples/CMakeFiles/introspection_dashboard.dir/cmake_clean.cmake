file(REMOVE_RECURSE
  "CMakeFiles/introspection_dashboard.dir/introspection_dashboard.cpp.o"
  "CMakeFiles/introspection_dashboard.dir/introspection_dashboard.cpp.o.d"
  "introspection_dashboard"
  "introspection_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/introspection_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
