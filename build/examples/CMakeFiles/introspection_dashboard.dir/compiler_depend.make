# Empty compiler generated dependencies file for introspection_dashboard.
# This may be replaced when dependencies are built.
