file(REMOVE_RECURSE
  "CMakeFiles/secure_cloud_storage.dir/secure_cloud_storage.cpp.o"
  "CMakeFiles/secure_cloud_storage.dir/secure_cloud_storage.cpp.o.d"
  "secure_cloud_storage"
  "secure_cloud_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_cloud_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
