# Empty dependencies file for secure_cloud_storage.
# This may be replaced when dependencies are built.
