# Empty dependencies file for bs_net.
# This may be replaced when dependencies are built.
