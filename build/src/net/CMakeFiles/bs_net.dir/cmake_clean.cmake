file(REMOVE_RECURSE
  "CMakeFiles/bs_net.dir/flow.cpp.o"
  "CMakeFiles/bs_net.dir/flow.cpp.o.d"
  "CMakeFiles/bs_net.dir/topology.cpp.o"
  "CMakeFiles/bs_net.dir/topology.cpp.o.d"
  "libbs_net.a"
  "libbs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
