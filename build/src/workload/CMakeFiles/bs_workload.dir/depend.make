# Empty dependencies file for bs_workload.
# This may be replaced when dependencies are built.
