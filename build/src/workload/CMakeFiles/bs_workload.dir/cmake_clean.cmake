file(REMOVE_RECURSE
  "CMakeFiles/bs_workload.dir/clients.cpp.o"
  "CMakeFiles/bs_workload.dir/clients.cpp.o.d"
  "CMakeFiles/bs_workload.dir/stats.cpp.o"
  "CMakeFiles/bs_workload.dir/stats.cpp.o.d"
  "libbs_workload.a"
  "libbs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
