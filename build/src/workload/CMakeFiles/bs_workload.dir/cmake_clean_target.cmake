file(REMOVE_RECURSE
  "libbs_workload.a"
)
