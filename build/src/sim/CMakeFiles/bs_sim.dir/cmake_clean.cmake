file(REMOVE_RECURSE
  "CMakeFiles/bs_sim.dir/simulation.cpp.o"
  "CMakeFiles/bs_sim.dir/simulation.cpp.o.d"
  "libbs_sim.a"
  "libbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
