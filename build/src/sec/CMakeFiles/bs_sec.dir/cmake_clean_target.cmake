file(REMOVE_RECURSE
  "libbs_sec.a"
)
