file(REMOVE_RECURSE
  "CMakeFiles/bs_sec.dir/enforcement.cpp.o"
  "CMakeFiles/bs_sec.dir/enforcement.cpp.o.d"
  "CMakeFiles/bs_sec.dir/engine.cpp.o"
  "CMakeFiles/bs_sec.dir/engine.cpp.o.d"
  "CMakeFiles/bs_sec.dir/framework.cpp.o"
  "CMakeFiles/bs_sec.dir/framework.cpp.o.d"
  "CMakeFiles/bs_sec.dir/policy.cpp.o"
  "CMakeFiles/bs_sec.dir/policy.cpp.o.d"
  "CMakeFiles/bs_sec.dir/trust.cpp.o"
  "CMakeFiles/bs_sec.dir/trust.cpp.o.d"
  "libbs_sec.a"
  "libbs_sec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
