# Empty dependencies file for bs_sec.
# This may be replaced when dependencies are built.
