file(REMOVE_RECURSE
  "CMakeFiles/bs_mon.dir/filters.cpp.o"
  "CMakeFiles/bs_mon.dir/filters.cpp.o.d"
  "CMakeFiles/bs_mon.dir/instrument.cpp.o"
  "CMakeFiles/bs_mon.dir/instrument.cpp.o.d"
  "CMakeFiles/bs_mon.dir/layer.cpp.o"
  "CMakeFiles/bs_mon.dir/layer.cpp.o.d"
  "CMakeFiles/bs_mon.dir/record.cpp.o"
  "CMakeFiles/bs_mon.dir/record.cpp.o.d"
  "CMakeFiles/bs_mon.dir/service.cpp.o"
  "CMakeFiles/bs_mon.dir/service.cpp.o.d"
  "CMakeFiles/bs_mon.dir/storage.cpp.o"
  "CMakeFiles/bs_mon.dir/storage.cpp.o.d"
  "libbs_mon.a"
  "libbs_mon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
