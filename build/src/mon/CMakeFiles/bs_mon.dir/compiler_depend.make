# Empty compiler generated dependencies file for bs_mon.
# This may be replaced when dependencies are built.
