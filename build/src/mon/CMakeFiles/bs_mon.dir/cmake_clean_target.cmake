file(REMOVE_RECURSE
  "libbs_mon.a"
)
