
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mon/filters.cpp" "src/mon/CMakeFiles/bs_mon.dir/filters.cpp.o" "gcc" "src/mon/CMakeFiles/bs_mon.dir/filters.cpp.o.d"
  "/root/repo/src/mon/instrument.cpp" "src/mon/CMakeFiles/bs_mon.dir/instrument.cpp.o" "gcc" "src/mon/CMakeFiles/bs_mon.dir/instrument.cpp.o.d"
  "/root/repo/src/mon/layer.cpp" "src/mon/CMakeFiles/bs_mon.dir/layer.cpp.o" "gcc" "src/mon/CMakeFiles/bs_mon.dir/layer.cpp.o.d"
  "/root/repo/src/mon/record.cpp" "src/mon/CMakeFiles/bs_mon.dir/record.cpp.o" "gcc" "src/mon/CMakeFiles/bs_mon.dir/record.cpp.o.d"
  "/root/repo/src/mon/service.cpp" "src/mon/CMakeFiles/bs_mon.dir/service.cpp.o" "gcc" "src/mon/CMakeFiles/bs_mon.dir/service.cpp.o.d"
  "/root/repo/src/mon/storage.cpp" "src/mon/CMakeFiles/bs_mon.dir/storage.cpp.o" "gcc" "src/mon/CMakeFiles/bs_mon.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blob/CMakeFiles/bs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
