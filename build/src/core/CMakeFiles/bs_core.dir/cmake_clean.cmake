file(REMOVE_RECURSE
  "CMakeFiles/bs_core.dir/controller.cpp.o"
  "CMakeFiles/bs_core.dir/controller.cpp.o.d"
  "CMakeFiles/bs_core.dir/elasticity.cpp.o"
  "CMakeFiles/bs_core.dir/elasticity.cpp.o.d"
  "CMakeFiles/bs_core.dir/protection.cpp.o"
  "CMakeFiles/bs_core.dir/protection.cpp.o.d"
  "CMakeFiles/bs_core.dir/removal.cpp.o"
  "CMakeFiles/bs_core.dir/removal.cpp.o.d"
  "CMakeFiles/bs_core.dir/replication.cpp.o"
  "CMakeFiles/bs_core.dir/replication.cpp.o.d"
  "libbs_core.a"
  "libbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
