file(REMOVE_RECURSE
  "CMakeFiles/bs_intro.dir/activity.cpp.o"
  "CMakeFiles/bs_intro.dir/activity.cpp.o.d"
  "CMakeFiles/bs_intro.dir/introspection.cpp.o"
  "CMakeFiles/bs_intro.dir/introspection.cpp.o.d"
  "libbs_intro.a"
  "libbs_intro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_intro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
