# Empty dependencies file for bs_intro.
# This may be replaced when dependencies are built.
