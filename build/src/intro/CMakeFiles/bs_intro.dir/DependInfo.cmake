
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/intro/activity.cpp" "src/intro/CMakeFiles/bs_intro.dir/activity.cpp.o" "gcc" "src/intro/CMakeFiles/bs_intro.dir/activity.cpp.o.d"
  "/root/repo/src/intro/introspection.cpp" "src/intro/CMakeFiles/bs_intro.dir/introspection.cpp.o" "gcc" "src/intro/CMakeFiles/bs_intro.dir/introspection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mon/CMakeFiles/bs_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/bs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
