file(REMOVE_RECURSE
  "libbs_intro.a"
)
