file(REMOVE_RECURSE
  "CMakeFiles/bs_blob.dir/allocation.cpp.o"
  "CMakeFiles/bs_blob.dir/allocation.cpp.o.d"
  "CMakeFiles/bs_blob.dir/client.cpp.o"
  "CMakeFiles/bs_blob.dir/client.cpp.o.d"
  "CMakeFiles/bs_blob.dir/data_provider.cpp.o"
  "CMakeFiles/bs_blob.dir/data_provider.cpp.o.d"
  "CMakeFiles/bs_blob.dir/deployment.cpp.o"
  "CMakeFiles/bs_blob.dir/deployment.cpp.o.d"
  "CMakeFiles/bs_blob.dir/meta_ops.cpp.o"
  "CMakeFiles/bs_blob.dir/meta_ops.cpp.o.d"
  "CMakeFiles/bs_blob.dir/meta_tree.cpp.o"
  "CMakeFiles/bs_blob.dir/meta_tree.cpp.o.d"
  "CMakeFiles/bs_blob.dir/metadata_provider.cpp.o"
  "CMakeFiles/bs_blob.dir/metadata_provider.cpp.o.d"
  "CMakeFiles/bs_blob.dir/provider_manager.cpp.o"
  "CMakeFiles/bs_blob.dir/provider_manager.cpp.o.d"
  "CMakeFiles/bs_blob.dir/version_manager.cpp.o"
  "CMakeFiles/bs_blob.dir/version_manager.cpp.o.d"
  "libbs_blob.a"
  "libbs_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
