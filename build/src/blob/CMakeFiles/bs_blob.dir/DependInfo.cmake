
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blob/allocation.cpp" "src/blob/CMakeFiles/bs_blob.dir/allocation.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/allocation.cpp.o.d"
  "/root/repo/src/blob/client.cpp" "src/blob/CMakeFiles/bs_blob.dir/client.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/client.cpp.o.d"
  "/root/repo/src/blob/data_provider.cpp" "src/blob/CMakeFiles/bs_blob.dir/data_provider.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/data_provider.cpp.o.d"
  "/root/repo/src/blob/deployment.cpp" "src/blob/CMakeFiles/bs_blob.dir/deployment.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/deployment.cpp.o.d"
  "/root/repo/src/blob/meta_ops.cpp" "src/blob/CMakeFiles/bs_blob.dir/meta_ops.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/meta_ops.cpp.o.d"
  "/root/repo/src/blob/meta_tree.cpp" "src/blob/CMakeFiles/bs_blob.dir/meta_tree.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/meta_tree.cpp.o.d"
  "/root/repo/src/blob/metadata_provider.cpp" "src/blob/CMakeFiles/bs_blob.dir/metadata_provider.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/metadata_provider.cpp.o.d"
  "/root/repo/src/blob/provider_manager.cpp" "src/blob/CMakeFiles/bs_blob.dir/provider_manager.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/provider_manager.cpp.o.d"
  "/root/repo/src/blob/version_manager.cpp" "src/blob/CMakeFiles/bs_blob.dir/version_manager.cpp.o" "gcc" "src/blob/CMakeFiles/bs_blob.dir/version_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rpc/CMakeFiles/bs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
