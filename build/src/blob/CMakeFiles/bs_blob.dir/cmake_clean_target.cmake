file(REMOVE_RECURSE
  "libbs_blob.a"
)
