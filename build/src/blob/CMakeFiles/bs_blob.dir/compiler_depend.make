# Empty compiler generated dependencies file for bs_blob.
# This may be replaced when dependencies are built.
