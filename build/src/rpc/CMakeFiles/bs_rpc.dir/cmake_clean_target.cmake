file(REMOVE_RECURSE
  "libbs_rpc.a"
)
