# Empty dependencies file for bs_rpc.
# This may be replaced when dependencies are built.
