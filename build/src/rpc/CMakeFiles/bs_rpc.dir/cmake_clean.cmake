file(REMOVE_RECURSE
  "CMakeFiles/bs_rpc.dir/rpc.cpp.o"
  "CMakeFiles/bs_rpc.dir/rpc.cpp.o.d"
  "libbs_rpc.a"
  "libbs_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
