file(REMOVE_RECURSE
  "CMakeFiles/bs_cloud.dir/gateway.cpp.o"
  "CMakeFiles/bs_cloud.dir/gateway.cpp.o.d"
  "libbs_cloud.a"
  "libbs_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
