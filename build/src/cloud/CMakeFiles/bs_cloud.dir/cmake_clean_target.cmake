file(REMOVE_RECURSE
  "libbs_cloud.a"
)
