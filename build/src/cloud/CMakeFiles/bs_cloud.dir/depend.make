# Empty dependencies file for bs_cloud.
# This may be replaced when dependencies are built.
