file(REMOVE_RECURSE
  "CMakeFiles/bs_viz.dir/chart.cpp.o"
  "CMakeFiles/bs_viz.dir/chart.cpp.o.d"
  "CMakeFiles/bs_viz.dir/dashboard.cpp.o"
  "CMakeFiles/bs_viz.dir/dashboard.cpp.o.d"
  "libbs_viz.a"
  "libbs_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
