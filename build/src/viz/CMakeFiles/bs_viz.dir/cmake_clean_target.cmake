file(REMOVE_RECURSE
  "libbs_viz.a"
)
