# Empty dependencies file for bs_viz.
# This may be replaced when dependencies are built.
