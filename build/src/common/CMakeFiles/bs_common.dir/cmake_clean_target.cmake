file(REMOVE_RECURSE
  "libbs_common.a"
)
