file(REMOVE_RECURSE
  "CMakeFiles/bs_common.dir/config.cpp.o"
  "CMakeFiles/bs_common.dir/config.cpp.o.d"
  "CMakeFiles/bs_common.dir/log.cpp.o"
  "CMakeFiles/bs_common.dir/log.cpp.o.d"
  "CMakeFiles/bs_common.dir/result.cpp.o"
  "CMakeFiles/bs_common.dir/result.cpp.o.d"
  "CMakeFiles/bs_common.dir/rng.cpp.o"
  "CMakeFiles/bs_common.dir/rng.cpp.o.d"
  "CMakeFiles/bs_common.dir/stats.cpp.o"
  "CMakeFiles/bs_common.dir/stats.cpp.o.d"
  "CMakeFiles/bs_common.dir/strings.cpp.o"
  "CMakeFiles/bs_common.dir/strings.cpp.o.d"
  "CMakeFiles/bs_common.dir/thread_pool.cpp.o"
  "CMakeFiles/bs_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/bs_common.dir/timeseries.cpp.o"
  "CMakeFiles/bs_common.dir/timeseries.cpp.o.d"
  "CMakeFiles/bs_common.dir/token_bucket.cpp.o"
  "CMakeFiles/bs_common.dir/token_bucket.cpp.o.d"
  "CMakeFiles/bs_common.dir/types.cpp.o"
  "CMakeFiles/bs_common.dir/types.cpp.o.d"
  "libbs_common.a"
  "libbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
