# Empty compiler generated dependencies file for bs_common.
# This may be replaced when dependencies are built.
