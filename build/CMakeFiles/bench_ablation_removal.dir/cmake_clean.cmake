file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_removal.dir/bench/bench_ablation_removal.cpp.o"
  "CMakeFiles/bench_ablation_removal.dir/bench/bench_ablation_removal.cpp.o.d"
  "bench/bench_ablation_removal"
  "bench/bench_ablation_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
