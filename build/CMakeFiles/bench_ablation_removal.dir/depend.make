# Empty dependencies file for bench_ablation_removal.
# This may be replaced when dependencies are built.
