file(REMOVE_RECURSE
  "CMakeFiles/bench_dos_timeline.dir/bench/bench_dos_timeline.cpp.o"
  "CMakeFiles/bench_dos_timeline.dir/bench/bench_dos_timeline.cpp.o.d"
  "bench/bench_dos_timeline"
  "bench/bench_dos_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dos_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
