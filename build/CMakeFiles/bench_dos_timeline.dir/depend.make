# Empty dependencies file for bench_dos_timeline.
# This may be replaced when dependencies are built.
