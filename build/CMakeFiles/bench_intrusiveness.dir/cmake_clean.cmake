file(REMOVE_RECURSE
  "CMakeFiles/bench_intrusiveness.dir/bench/bench_intrusiveness.cpp.o"
  "CMakeFiles/bench_intrusiveness.dir/bench/bench_intrusiveness.cpp.o.d"
  "bench/bench_intrusiveness"
  "bench/bench_intrusiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intrusiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
