# Empty dependencies file for bench_intrusiveness.
# This may be replaced when dependencies are built.
