# Empty dependencies file for bench_micro_segment_tree.
# This may be replaced when dependencies are built.
