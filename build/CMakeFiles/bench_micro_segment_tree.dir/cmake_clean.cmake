file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_segment_tree.dir/bench/bench_micro_segment_tree.cpp.o"
  "CMakeFiles/bench_micro_segment_tree.dir/bench/bench_micro_segment_tree.cpp.o.d"
  "bench/bench_micro_segment_tree"
  "bench/bench_micro_segment_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_segment_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
