# Empty dependencies file for bench_micro_monitoring.
# This may be replaced when dependencies are built.
