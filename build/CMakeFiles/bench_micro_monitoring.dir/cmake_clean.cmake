file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_monitoring.dir/bench/bench_micro_monitoring.cpp.o"
  "CMakeFiles/bench_micro_monitoring.dir/bench/bench_micro_monitoring.cpp.o.d"
  "bench/bench_micro_monitoring"
  "bench/bench_micro_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
