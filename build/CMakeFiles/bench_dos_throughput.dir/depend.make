# Empty dependencies file for bench_dos_throughput.
# This may be replaced when dependencies are built.
