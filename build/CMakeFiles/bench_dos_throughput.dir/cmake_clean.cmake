file(REMOVE_RECURSE
  "CMakeFiles/bench_dos_throughput.dir/bench/bench_dos_throughput.cpp.o"
  "CMakeFiles/bench_dos_throughput.dir/bench/bench_dos_throughput.cpp.o.d"
  "bench/bench_dos_throughput"
  "bench/bench_dos_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dos_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
