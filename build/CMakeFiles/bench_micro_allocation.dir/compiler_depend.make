# Empty compiler generated dependencies file for bench_micro_allocation.
# This may be replaced when dependencies are built.
