file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_allocation.dir/bench/bench_micro_allocation.cpp.o"
  "CMakeFiles/bench_micro_allocation.dir/bench/bench_micro_allocation.cpp.o.d"
  "bench/bench_micro_allocation"
  "bench/bench_micro_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
