file(REMOVE_RECURSE
  "CMakeFiles/bench_viz_tool.dir/bench/bench_viz_tool.cpp.o"
  "CMakeFiles/bench_viz_tool.dir/bench/bench_viz_tool.cpp.o.d"
  "bench/bench_viz_tool"
  "bench/bench_viz_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_viz_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
