# Empty compiler generated dependencies file for bench_viz_tool.
# This may be replaced when dependencies are built.
