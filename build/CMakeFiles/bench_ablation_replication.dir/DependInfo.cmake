
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_replication.cpp" "CMakeFiles/bench_ablation_replication.dir/bench/bench_ablation_replication.cpp.o" "gcc" "CMakeFiles/bench_ablation_replication.dir/bench/bench_ablation_replication.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mon/CMakeFiles/bs_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/bs_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/sec/CMakeFiles/bs_sec.dir/DependInfo.cmake"
  "/root/repo/build/src/intro/CMakeFiles/bs_intro.dir/DependInfo.cmake"
  "/root/repo/build/src/blob/CMakeFiles/bs_blob.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/bs_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
