file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_replication.dir/bench/bench_ablation_replication.cpp.o"
  "CMakeFiles/bench_ablation_replication.dir/bench/bench_ablation_replication.cpp.o.d"
  "bench/bench_ablation_replication"
  "bench/bench_ablation_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
