// Trust manager, enforcement, and detection-engine behaviour over synthetic
// activity histories.
#include <gtest/gtest.h>

#include "sec/engine.hpp"
#include "sec/framework.hpp"
#include "test_util.hpp"

namespace bs::sec {
namespace {

void feed(intro::UserActivityHistory& uah, std::uint64_t client,
          mon::Metric metric, SimTime from, SimTime to, double per_sec) {
  for (SimTime t = from; t < to; t += simtime::seconds(1)) {
    mon::Record r;
    r.key = {mon::Domain::client, client, metric};
    r.time = t;
    r.value = per_sec;
    uah.ingest(r);
  }
}

TEST(TrustManager, ViolationsCutRecoveryHeals) {
  TrustManager tm;
  const ClientId c{1};
  EXPECT_DOUBLE_EQ(tm.trust(c), 0.8);
  tm.record_violation(c, Severity::high);
  EXPECT_NEAR(tm.trust(c), 0.32, 1e-9);
  tm.record_violation(c, Severity::low);
  EXPECT_NEAR(tm.trust(c), 0.288, 1e-9);
  for (int i = 0; i < 10; ++i) tm.record_clean(c);
  EXPECT_NEAR(tm.trust(c), 0.388, 1e-9);
}

TEST(TrustManager, TrustIsBounded) {
  TrustManager tm;
  const ClientId c{2};
  for (int i = 0; i < 50; ++i) tm.record_violation(c, Severity::high);
  EXPECT_GE(tm.trust(c), 0.05);
  for (int i = 0; i < 1000; ++i) tm.record_clean(c);
  EXPECT_LE(tm.trust(c), 1.0);
}

TEST(TrustManager, ThresholdScaleTracksTrust) {
  TrustManager tm;
  const ClientId good{1}, bad{2};
  tm.record_violation(bad, Severity::high);
  tm.record_violation(bad, Severity::high);
  EXPECT_GT(tm.threshold_scale(good), tm.threshold_scale(bad));
  EXPECT_LE(tm.threshold_scale(bad), 1.0);
  EXPECT_GE(tm.threshold_scale(bad), 0.4);
}

TEST(Enforcement, BlockExpiresAndScalesWithTrust) {
  sim::Simulation sim;
  TrustManager tm;
  PolicyEnforcement enf(sim, tm);

  auto policies = parse_policies(
      "policy p { severity high; when trust() < 2; then block(10s); }");
  ASSERT_TRUE(policies.ok());
  Violation v;
  v.client = ClientId{1};
  v.policy = &policies.value()[0];
  enf.handle(v);

  // handle() first records the violation (trust 0.8 -> 0.32), then blocks
  // for 10 s * (2 - 0.32) = 16.8 s.
  EXPECT_TRUE(enf.is_blocked(ClientId{1}, simtime::seconds(16)));
  EXPECT_FALSE(enf.is_blocked(ClientId{1}, simtime::seconds(17)));
  EXPECT_EQ(enf.blocked_count(0), 1u);
}

TEST(Enforcement, AdmissionRejectsBlockedAndThrottled) {
  sim::Simulation sim;
  TrustManager tm;
  PolicyEnforcement enf(sim, tm);

  auto policies = parse_policies(R"(
    policy b { when trust() < 2; then block(60s); }
    policy t { when trust() < 2; then throttle(2); }
  )");
  ASSERT_TRUE(policies.ok());

  Violation blocked;
  blocked.client = ClientId{1};
  blocked.policy = &policies.value()[0];
  enf.handle(blocked);

  rpc::Envelope env;
  env.client = ClientId{1};
  EXPECT_EQ(enf.admission_check(env, "x").code(), Errc::blocked);

  // Internal traffic (no client identity) always passes.
  rpc::Envelope anon;
  EXPECT_TRUE(enf.admission_check(anon, "x").ok());

  Violation throttled;
  throttled.client = ClientId{2};
  throttled.policy = &policies.value()[1];
  enf.handle(throttled);
  env.client = ClientId{2};
  // Burst of 2 allowed, third rejected.
  EXPECT_TRUE(enf.admission_check(env, "x").ok());
  EXPECT_TRUE(enf.admission_check(env, "x").ok());
  EXPECT_EQ(enf.admission_check(env, "x").code(), Errc::throttled);
  EXPECT_GE(enf.rejections(), 2u);
}

TEST(Enforcement, ThrottleWithDurationExpires) {
  sim::Simulation sim;
  TrustManager tm;
  PolicyEnforcement enf(sim, tm);
  auto policies = parse_policies(
      "policy t { when trust() < 2; then throttle(1, 10s); }");
  ASSERT_TRUE(policies.ok());
  Violation v;
  v.client = ClientId{3};
  v.policy = &policies.value()[0];
  enf.handle(v);
  ASSERT_TRUE(enf.is_throttled(ClientId{3}, sim.now()));

  rpc::Envelope env;
  env.client = ClientId{3};
  // Burst of 1 allowed, then throttled.
  EXPECT_TRUE(enf.admission_check(env, "x").ok());
  EXPECT_EQ(enf.admission_check(env, "x").code(), Errc::throttled);
  // After the sanction expires the client is clean again.
  sim.run_until(simtime::seconds(11));
  EXPECT_FALSE(enf.is_throttled(ClientId{3}, sim.now()));
  EXPECT_TRUE(enf.admission_check(env, "x").ok());
  EXPECT_TRUE(enf.admission_check(env, "x").ok());  // no bucket anymore
}

TEST(Enforcement, PardonClearsSanctions) {
  sim::Simulation sim;
  TrustManager tm;
  PolicyEnforcement enf(sim, tm);
  auto policies = parse_policies(
      "policy p { when trust() < 2; then block(60s); }");
  ASSERT_TRUE(policies.ok());
  Violation v;
  v.client = ClientId{1};
  v.policy = &policies.value()[0];
  enf.handle(v);
  ASSERT_TRUE(enf.is_blocked(ClientId{1}, 0));
  enf.pardon(ClientId{1});
  EXPECT_FALSE(enf.is_blocked(ClientId{1}, 0));
}

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : activity_(simtime::minutes(5)),
        enforcement_(sim_, trust_),
        engine_(sim_, activity_, trust_, enforcement_) {}

  sim::Simulation sim_;
  intro::UserActivityHistory activity_;
  TrustManager trust_;
  PolicyEnforcement enforcement_;
  DetectionEngine engine_;
};

TEST_F(EngineTest, DetectsFloodAndBlocks) {
  ASSERT_TRUE(engine_
                  .load_source("policy dos { severity high; when "
                               "rate(write_ops, 10s) > 50; then block(60s); }")
                  .ok());
  feed(activity_, 1, mon::Metric::write_ops, 0, simtime::seconds(10), 100);
  feed(activity_, 2, mon::Metric::write_ops, 0, simtime::seconds(10), 5);

  sim_.run_until(simtime::seconds(10));
  auto violations = engine_.scan();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].client, ClientId{1});
  engine_.start();  // periodic loop would now enforce; do it directly:
  enforcement_.handle(violations[0]);
  EXPECT_TRUE(enforcement_.is_blocked(ClientId{1}, sim_.now()));
}

TEST_F(EngineTest, RefractoryPreventsDoubleFiring) {
  ASSERT_TRUE(engine_
                  .load_source("policy dos { when rate(write_ops, 10s) > 50; "
                               "then log; }")
                  .ok());
  feed(activity_, 1, mon::Metric::write_ops, 0, simtime::seconds(10), 100);
  sim_.run_until(simtime::seconds(10));
  EXPECT_EQ(engine_.scan().size(), 1u);
  EXPECT_EQ(engine_.scan().size(), 0u);  // refractory window
}

TEST_F(EngineTest, BlockedClientsAreSkipped) {
  ASSERT_TRUE(engine_
                  .load_source("policy dos { severity high; when "
                               "rate(write_ops, 10s) > 50; then block(60s); }")
                  .ok());
  feed(activity_, 1, mon::Metric::write_ops, 0, simtime::seconds(10), 100);
  sim_.run_until(simtime::seconds(10));
  for (const auto& v : engine_.scan()) enforcement_.handle(v);
  ASSERT_TRUE(enforcement_.is_blocked(ClientId{1}, sim_.now()));
  // Even with fresh flood data, a blocked client is not re-scanned.
  feed(activity_, 1, mon::Metric::write_ops, simtime::seconds(10),
       simtime::seconds(20), 100);
  sim_.run_until(simtime::seconds(20));
  EXPECT_TRUE(engine_.scan().empty());
}

TEST_F(EngineTest, CleanScansRebuildTrust) {
  ASSERT_TRUE(engine_
                  .load_source("policy dos { when rate(write_ops, 10s) > "
                               "1000; then log; }")
                  .ok());
  trust_.adjust(ClientId{1}, -0.5);  // 0.3
  const double before = trust_.trust(ClientId{1});
  feed(activity_, 1, mon::Metric::write_ops, 0, simtime::seconds(10), 5);
  sim_.run_until(simtime::seconds(10));
  (void)engine_.scan();
  EXPECT_GT(trust_.trust(ClientId{1}), before);
}

TEST_F(EngineTest, PeriodicLoopEnforces) {
  ASSERT_TRUE(engine_
                  .load_source("policy dos { severity high; when "
                               "rate(write_ops, 10s) > 50; then block(60s); }")
                  .ok());
  engine_.start();
  feed(activity_, 7, mon::Metric::write_ops, 0, simtime::seconds(20), 100);
  sim_.run_until(simtime::seconds(20));
  EXPECT_GT(engine_.scans(), 0u);
  EXPECT_GE(engine_.violations(), 1u);
  EXPECT_TRUE(enforcement_.is_blocked(ClientId{7}, sim_.now()));
}

}  // namespace
}  // namespace bs::sec
