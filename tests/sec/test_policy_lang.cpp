// Policy description language: lexing, parsing, error reporting, and
// condition evaluation against a synthetic User Activity History.
#include <gtest/gtest.h>

#include "sec/policy.hpp"

namespace bs::sec {
namespace {

mon::Record activity_record(std::uint64_t client, mon::Metric metric,
                            SimTime t, double value) {
  mon::Record r;
  r.key = {mon::Domain::client, client, metric};
  r.time = t;
  r.value = value;
  return r;
}

TEST(PolicyParser, ParsesMinimalPolicy) {
  auto r = parse_policies(
      "policy p1 { when rate(write_ops, 10s) > 5; then log; }");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  ASSERT_EQ(r.value().size(), 1u);
  const Policy& p = r.value()[0];
  EXPECT_EQ(p.name, "p1");
  EXPECT_EQ(p.severity, Severity::medium);  // default
  ASSERT_EQ(p.actions.size(), 1u);
  EXPECT_EQ(p.actions[0].type, Action::Type::log);
}

TEST(PolicyParser, ParsesAllClausesAndActions) {
  auto r = parse_policies(R"(
    policy full {
      severity high;
      description "a full policy";
      when rate(write_ops, 10s) > 100 and total(write_bytes, 30s) > 500MB
           or not (trust() >= 0.5);
      then block(60s), throttle(25), trust(-0.25), alert, log;
    }
  )");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const Policy& p = r.value()[0];
  EXPECT_EQ(p.severity, Severity::high);
  EXPECT_EQ(p.description, "a full policy");
  ASSERT_EQ(p.actions.size(), 5u);
  EXPECT_EQ(p.actions[0].type, Action::Type::block);
  EXPECT_EQ(p.actions[0].duration, simtime::seconds(60));
  EXPECT_EQ(p.actions[1].type, Action::Type::throttle);
  EXPECT_DOUBLE_EQ(p.actions[1].value, 25);
  EXPECT_EQ(p.actions[2].type, Action::Type::trust_delta);
  EXPECT_DOUBLE_EQ(p.actions[2].value, -0.25);
}

TEST(PolicyParser, ParsesMultiplePoliciesAndComments) {
  auto r = parse_policies(R"(
    # first
    policy a { when rate(read_ops, 5s) > 1; then log; }
    # second
    policy b { severity low; when total(meta_ops, 1min) >= 10; then alert; }
  )");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[1].severity, Severity::low);
}

TEST(PolicyParser, ByteAndDurationUnits) {
  auto r = parse_policies(
      "policy u { when total(write_bytes, 500ms) > 2GB; then log; }");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
}

TEST(PolicyParser, ErrorsCarryLineNumbers) {
  auto cases = std::vector<std::string>{
      "policy { when rate(write_ops, 1s) > 1; then log; }",  // missing name
      "policy p { when rate(bogus_metric, 1s) > 1; then log; }",
      "policy p { when rate(write_ops, 1s) >> 1; then log; }",
      "policy p { when rate(write_ops, 1s) > 1; }",  // no then
      "policy p { then log; }",                      // no when
      "policy p { severity extreme; when trust() < 1; then log; }",
      "policy p { when trust() < 1; then explode(); }",
      "policy p { when rate(write_ops, 1s) > 1; then block(10s) ",  // eof
      "policy p { when rate(write_ops, 1 parsecs) > 1; then log; }",
  };
  for (const auto& src : cases) {
    auto r = parse_policies(src);
    EXPECT_FALSE(r.ok()) << "should fail: " << src;
    if (!r.ok()) {
      EXPECT_EQ(r.error().code, Errc::parse_error);
      EXPECT_NE(r.error().message.find("line"), std::string::npos);
    }
  }
}

TEST(PolicyParser, DefaultPolicySourceParses) {
  auto r = parse_policies(default_policy_source());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_GE(r.value().size(), 4u);
}

class PolicyEvalTest : public ::testing::Test {
 protected:
  PolicyEvalTest() : activity_(simtime::minutes(5)) {
    // Client 1: 20 write ops per second for 10 seconds.
    for (int t = 1; t <= 10; ++t) {
      activity_.ingest(activity_record(1, mon::Metric::write_ops,
                                       simtime::seconds(t), 20));
      activity_.ingest(activity_record(1, mon::Metric::write_bytes,
                                       simtime::seconds(t), 100e6));
    }
    // Client 2: quiet.
    activity_.ingest(activity_record(2, mon::Metric::write_ops,
                                     simtime::seconds(5), 1));
  }

  EvalContext ctx(std::uint64_t client, double trust = 1.0,
                  double scale = 1.0) {
    EvalContext c;
    c.activity = &activity_;
    c.client = ClientId{client};
    c.now = simtime::seconds(10);
    c.trust = trust;
    c.threshold_scale = scale;
    return c;
  }

  intro::UserActivityHistory activity_;
};

TEST_F(PolicyEvalTest, RateComparison) {
  auto p = parse_policies(
      "policy p { when rate(write_ops, 10s) > 15; then log; }");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value()[0].matches(ctx(1)));
  EXPECT_FALSE(p.value()[0].matches(ctx(2)));
}

TEST_F(PolicyEvalTest, TotalComparison) {
  auto p = parse_policies(
      "policy p { when total(write_bytes, 10s) >= 1GB; then log; }");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value()[0].matches(ctx(1)));  // 10 x 100 MB
  EXPECT_FALSE(p.value()[0].matches(ctx(2)));
}

TEST_F(PolicyEvalTest, LogicalOperatorsAndNot) {
  auto p = parse_policies(R"(
    policy p {
      when rate(write_ops, 10s) > 15 and not (trust() > 0.9);
      then log;
    })");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p.value()[0].matches(ctx(1, /*trust=*/1.0)));
  EXPECT_TRUE(p.value()[0].matches(ctx(1, /*trust=*/0.5)));
}

TEST_F(PolicyEvalTest, OrShortCircuitSemantics) {
  auto p = parse_policies(R"(
    policy p {
      when rate(read_ops, 10s) > 100 or rate(write_ops, 10s) > 15;
      then log;
    })");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value()[0].matches(ctx(1)));
}

TEST_F(PolicyEvalTest, TrustScaledThresholds) {
  // Threshold 30 ops/s; client 1 runs at 20 ops/s. At full trust the
  // policy does not fire; at threshold_scale 0.5 (low trust) the bound
  // becomes 15 and it does.
  auto p = parse_policies(
      "policy p { when rate(write_ops, 10s) > 30; then log; }");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p.value()[0].matches(ctx(1, 1.0, 1.0)));
  EXPECT_TRUE(p.value()[0].matches(ctx(1, 0.1, 0.5)));
}

TEST_F(PolicyEvalTest, ScalingOnlyAppliesToUpperBounds) {
  // A `<` comparison against a constant must NOT shrink with trust.
  auto p = parse_policies(
      "policy p { when rate(write_ops, 10s) < 100; then log; }");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value()[0].matches(ctx(1, 0.1, 0.5)));
}

TEST(PolicyParser, ThrottleWithOptionalDuration) {
  auto r = parse_policies(
      "policy t { when trust() < 2; then throttle(25, 90s); }");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const Action& a = r.value()[0].actions[0];
  EXPECT_EQ(a.type, Action::Type::throttle);
  EXPECT_DOUBLE_EQ(a.value, 25);
  EXPECT_EQ(a.duration, simtime::seconds(90));
  EXPECT_EQ(a.to_string(), "throttle(25.0, 90.000s)");
}

TEST(PolicyParser, ScientificNotationLiterals) {
  auto r = parse_policies(
      "policy s { when rate(read_ops, 10s) > 1e9 and "
      "total(write_bytes, 10s) < 2.5E-1; then log; }");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
}

TEST(ActionToString, Readable) {
  Action a;
  a.type = Action::Type::block;
  a.duration = simtime::seconds(60);
  EXPECT_EQ(a.to_string(), "block(60.000s)");
  a.type = Action::Type::throttle;
  a.value = 12.5;
  a.duration = 0;
  EXPECT_EQ(a.to_string(), "throttle(12.5)");
}

}  // namespace
}  // namespace bs::sec
