// The stock policy set: each default policy fires on the behaviour it
// describes and stays quiet on honest traffic; trust-adaptive thresholds
// treat repeat offenders more strictly than first-timers.
#include <gtest/gtest.h>

#include "sec/engine.hpp"

namespace bs::sec {
namespace {

class DefaultPoliciesTest : public ::testing::Test {
 protected:
  DefaultPoliciesTest()
      : activity_(simtime::minutes(10)),
        enforcement_(sim_, trust_),
        engine_(sim_, activity_, trust_, enforcement_) {
    EXPECT_TRUE(engine_.load_source(default_policy_source()).ok());
    sim_.run_until(simtime::seconds(60));
  }

  void feed(std::uint64_t client, mon::Metric metric, double per_sec,
            SimTime from = 0, SimTime to = simtime::seconds(60)) {
    for (SimTime t = from; t < to; t += simtime::seconds(1)) {
      mon::Record r;
      r.key = {mon::Domain::client, client, metric};
      r.time = t;
      r.value = per_sec;
      activity_.ingest(r);
    }
  }

  std::vector<std::string> fired_policies() {
    std::vector<std::string> names;
    for (const auto& v : engine_.scan()) names.push_back(v.policy->name);
    return names;
  }

  sim::Simulation sim_;
  intro::UserActivityHistory activity_;
  TrustManager trust_;
  PolicyEnforcement enforcement_;
  DetectionEngine engine_;
};

TEST_F(DefaultPoliciesTest, HonestClientTriggersNothing) {
  feed(1, mon::Metric::write_ops, 3);           // ~2 chunks/s is honest
  feed(1, mon::Metric::write_bytes, 120e6);
  feed(1, mon::Metric::meta_ops, 10);
  EXPECT_TRUE(fired_policies().empty());
}

TEST_F(DefaultPoliciesTest, WriteFloodFires) {
  feed(2, mon::Metric::write_ops, 200);
  auto fired = fired_policies();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "dos_write_flood");
}

TEST_F(DefaultPoliciesTest, ReadFloodFires) {
  feed(3, mon::Metric::read_ops, 300);
  auto fired = fired_policies();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "dos_read_flood");
}

TEST_F(DefaultPoliciesTest, MetaScrapeRequiresNoDataTraffic) {
  // Metadata hammering WITH real data traffic is a legitimate big job.
  feed(4, mon::Metric::meta_ops, 300);
  feed(4, mon::Metric::write_bytes, 50e6);
  EXPECT_TRUE(fired_policies().empty());
  // The same metadata rate with no data movement is scraping.
  feed(5, mon::Metric::meta_ops, 300);
  auto fired = fired_policies();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "meta_scrape");
}

TEST_F(DefaultPoliciesTest, RepeatOffenderNeedsLowTrustAndRejections) {
  // Lots of rejections but a clean history (trust 0.8): not a repeat
  // offender yet.
  feed(6, mon::Metric::rejected_ops, 20);
  EXPECT_TRUE(fired_policies().empty());
  // Same behaviour with ruined trust: fires.
  trust_.adjust(ClientId{7}, -0.5);
  feed(7, mon::Metric::rejected_ops, 20);
  auto fired = fired_policies();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "repeat_offender");
}

TEST_F(DefaultPoliciesTest, TrustScalingMakesRepeatOffendersEasierToFlag) {
  // Two clients at the same borderline write rate: just under the
  // threshold for a trusted client, over it once trust scaling shrinks
  // the bound.
  const double borderline = 50;  // threshold is 60
  feed(10, mon::Metric::write_ops, borderline);
  feed(11, mon::Metric::write_ops, borderline);
  trust_.record_violation(ClientId{11}, Severity::high);  // trust -> 0.32
  auto fired = fired_policies();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "dos_write_flood");
  // And it was the low-trust client.
  EXPECT_LT(trust_.trust(ClientId{11}), trust_.trust(ClientId{10}));
}

TEST_F(DefaultPoliciesTest, HotReloadReplacesPolicySet) {
  feed(2, mon::Metric::write_ops, 200);
  ASSERT_EQ(fired_policies().size(), 1u);
  // Administrators can replace the policy set at runtime.
  ASSERT_TRUE(engine_
                  .load_source("policy only_reads { when rate(read_ops, "
                               "10s) > 1e9; then log; }")
                  .ok());
  EXPECT_EQ(engine_.policies().size(), 1u);
  EXPECT_TRUE(fired_policies().empty());  // old flood no longer matches
  // A broken reload leaves the previous set untouched.
  EXPECT_FALSE(engine_.load_source("policy broken {").ok());
  EXPECT_EQ(engine_.policies().size(), 1u);
}

}  // namespace
}  // namespace bs::sec
