#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "test_util.hpp"

namespace bs::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(simtime::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(simtime::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(simtime::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), simtime::seconds(3));
}

TEST(Simulation, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(simtime::seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, RunUntilAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(simtime::seconds(5), [&] { ++fired; });
  sim.schedule_at(simtime::seconds(15), [&] { ++fired; });
  sim.run_until(simtime::seconds(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), simtime::seconds(10));
  sim.run_until(simtime::seconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) sim.schedule_in(simtime::seconds(1), recur);
  };
  sim.schedule_in(0, recur);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), simtime::seconds(4));
}

TEST(Simulation, StopHaltsRun) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(simtime::seconds(i), [&] {
      if (++count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending(), 7u);
}

TEST(Simulation, EventsProcessedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(InlineCallback, SmallCallableStaysInlineAndRuns) {
  int hits = 0;
  sim::InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  int hits = 0;
  sim::InlineCallback a([&hits] { ++hits; });
  sim::InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  sim::InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, LargeCallableFallsBackToHeap) {
  std::array<std::uint64_t, 16> payload{};  // 128 bytes > inline storage
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i;
  std::uint64_t sum = 0;
  sim::InlineCallback cb([payload, &sum] {
    for (auto v : payload) sum += v;
  });
  sim::InlineCallback moved(std::move(cb));
  moved();
  EXPECT_EQ(sum, 120u);
}

TEST(InlineCallback, MoveOnlyCaptureIsSupported) {
  // std::function required copyable callables; the event queue must not.
  auto p = std::make_unique<int>(42);
  int seen = 0;
  sim::Simulation sim;
  sim.schedule_at(0, [p = std::move(p), &seen] { seen = *p; });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulation, ScheduleAtNowFromCallbackPreservesFifo) {
  // From inside an event callback, wakeups scheduled at the current time —
  // whether raw callbacks or coroutine resumes — run in insertion order.
  sim::Simulation sim;
  std::vector<std::string> order;
  sim::Event ev(sim);
  sim.spawn([](sim::Event& e, std::vector<std::string>& out) -> sim::Task<void> {
    co_await e.wait();
    out.push_back("waiter");
  }(ev, order));
  sim.schedule_at(simtime::seconds(1), [&] {
    ev.set();  // enqueues the waiter's resume at now
    sim.schedule_at(sim.now(), [&] { order.push_back("cb1"); });
    sim.schedule_in(0, [&] { order.push_back("cb2"); });
  });
  sim.run();
  EXPECT_EQ(order,
            (std::vector<std::string>{"waiter", "cb1", "cb2"}));
  EXPECT_EQ(sim.now(), simtime::seconds(1));
}

TEST(Simulation, ZeroDelayResumesInterleaveDeterministically) {
  // delay(0) re-enqueues at the current time; repeated rounds of coroutine
  // resumes and schedule_at(now) callbacks must keep global FIFO order.
  sim::Simulation sim;
  std::vector<std::string> order;
  sim.spawn([](sim::Simulation& s,
               std::vector<std::string>& out) -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await s.delay(0);
      out.push_back("coro" + std::to_string(i));
      s.schedule_at(s.now(), [&out, i] {
        out.push_back("cb" + std::to_string(i));
      });
    }
  }(sim, order));
  sim.run();
  EXPECT_EQ(order, (std::vector<std::string>{"coro0", "cb0", "coro1", "cb1",
                                             "coro2", "cb2"}));
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulation, RunUntilWithZeroDelayChainsStopsAtTarget) {
  // A callback that keeps rescheduling at now must not stall run_until past
  // its target, and seq ordering keeps the chain deterministic.
  sim::Simulation sim;
  int fired = 0;
  sim.schedule_at(simtime::seconds(2), [&] { ++fired; });
  sim.run_until(simtime::seconds(1));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), simtime::seconds(1));
  sim.schedule_at(sim.now(), [&] {
    sim.schedule_in(0, [&] { ++fired; });
  });
  sim.run_until(simtime::seconds(1));
  EXPECT_EQ(fired, 1);  // both the chain head and tail ran at t=1
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Task, DelayAdvancesSimTime) {
  Simulation sim;
  SimTime seen = -1;
  sim.spawn([](Simulation& s, SimTime& out) -> Task<void> {
    co_await s.delay(simtime::seconds(2));
    co_await s.delay(simtime::millis(500));
    out = s.now();
  }(sim, seen));
  sim.run();
  EXPECT_EQ(seen, simtime::seconds(2.5));
}

TEST(Task, ValueReturnAndChaining) {
  Simulation sim;
  auto inner = [](Simulation& s) -> Task<int> {
    co_await s.delay(simtime::seconds(1));
    co_return 21;
  };
  auto result = test::run_task(
      sim, [](Simulation& s, auto mk) -> Task<int> {
        const int a = co_await mk(s);
        const int b = co_await mk(s);
        co_return a + b;
      }(sim, inner));
  EXPECT_EQ(result, 42);
  EXPECT_EQ(sim.now(), simtime::seconds(2));
}

TEST(Task, SpawnRunsEagerlyUntilFirstSuspend) {
  Simulation sim;
  int stage = 0;
  sim.spawn([](Simulation& s, int& st) -> Task<void> {
    st = 1;
    co_await s.delay(simtime::seconds(1));
    st = 2;
  }(sim, stage));
  EXPECT_EQ(stage, 1);  // ran inline until the delay
  sim.run();
  EXPECT_EQ(stage, 2);
}

TEST(Task, DelayUntilPastResumesImmediately) {
  Simulation sim;
  sim.run_until(simtime::seconds(5));
  bool done = false;
  sim.spawn([](Simulation& s, bool& d) -> Task<void> {
    co_await s.delay_until(simtime::seconds(1));  // already past
    d = true;
  }(sim, done));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), simtime::seconds(5));
}

TEST(Event, BroadcastWakesAllWaiters) {
  Simulation sim;
  Event ev(sim);
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    sim.spawn([](Event& e, int& w) -> Task<void> {
      co_await e.wait();
      ++w;
    }(ev, woke));
  }
  sim.schedule_at(simtime::seconds(1), [&] { ev.set(); });
  sim.run();
  EXPECT_EQ(woke, 5);
}

TEST(Event, WaitAfterSetIsImmediate) {
  Simulation sim;
  Event ev(sim);
  ev.set();
  bool done = false;
  sim.spawn([](Event& e, bool& d) -> Task<void> {
    co_await e.wait();
    d = true;
  }(ev, done));
  EXPECT_TRUE(done);  // no suspension needed
}

TEST(Semaphore, LimitsConcurrency) {
  Simulation sim;
  Semaphore sem(sim, 2);
  int active = 0, max_active = 0, completed = 0;
  for (int i = 0; i < 6; ++i) {
    sim.spawn([](Simulation& s, Semaphore& sm, int& act, int& mx,
                 int& done) -> Task<void> {
      co_await sm.acquire();
      ++act;
      mx = std::max(mx, act);
      co_await s.delay(simtime::seconds(1));
      --act;
      ++done;
      sm.release();
    }(sim, sem, active, max_active, completed));
  }
  sim.run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(max_active, 2);
  // 6 jobs, 2 at a time, 1 s each -> 3 s.
  EXPECT_EQ(sim.now(), simtime::seconds(3));
}

TEST(Mailbox, FifoDelivery) {
  Simulation sim;
  Mailbox<int> mb(sim);
  std::vector<int> got;
  sim.spawn([](Mailbox<int>& m, std::vector<int>& out) -> Task<void> {
    for (int i = 0; i < 3; ++i) out.push_back(co_await m.recv());
  }(mb, got));
  sim.schedule_at(simtime::seconds(1), [&] {
    mb.push(10);
    mb.push(20);
    mb.push(30);
  });
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20, 30}));
}

TEST(Mailbox, MultipleWaitersServedInOrder) {
  Simulation sim;
  Mailbox<int> mb(sim);
  std::vector<std::pair<int, int>> got;  // (waiter, value)
  for (int w = 0; w < 3; ++w) {
    sim.spawn([](Mailbox<int>& m, std::vector<std::pair<int, int>>& out,
                 int waiter) -> Task<void> {
      const int v = co_await m.recv();
      out.emplace_back(waiter, v);
    }(mb, got, w));
  }
  sim.schedule_at(simtime::seconds(1), [&] {
    mb.push(100);
    mb.push(200);
    mb.push(300);
  });
  sim.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(WaitGroup, JoinsAllTasks) {
  Simulation sim;
  WaitGroup wg(sim);
  int done = 0;
  for (int i = 1; i <= 4; ++i) {
    wg.launch([](Simulation& s, int secs, int& d) -> Task<void> {
      co_await s.delay(simtime::seconds(secs));
      ++d;
    }(sim, i, done));
  }
  bool joined = false;
  sim.spawn([](WaitGroup& w, bool& j) -> Task<void> {
    co_await w.wait();
    j = true;
  }(wg, joined));
  sim.run();
  EXPECT_TRUE(joined);
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.now(), simtime::seconds(4));
}

TEST(WaitGroup, WaitOnEmptyGroupReturnsImmediately) {
  Simulation sim;
  WaitGroup wg(sim);
  bool joined = false;
  sim.spawn([](WaitGroup& w, bool& j) -> Task<void> {
    co_await w.wait();
    j = true;
  }(wg, joined));
  sim.run();
  EXPECT_TRUE(joined);
}

}  // namespace
}  // namespace bs::sim
