// Sharded-lane determinism properties: the per-site event lanes (stage rung
// + late-insertion heap + far pool, see DESIGN.md "Sharded lanes &
// conservative lookahead") must reproduce the single-heap oracle's pop
// order *exactly* — same events, same interleave, same clock — and the
// pooled lite-client workload must digest identically across the single
// heap, the serial sharded stepper, and every worker-thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "workload/lite_clients.hpp"

namespace bs::sim {
namespace {

constexpr std::size_t kSites = 4;

// Self-similar random scenario: every executed event records its id and
// schedules rng-driven follow-ups across sites and time scales. Delays mix
// zero (same-time ring), sub-rung (late heap insertions behind far_bar),
// in-rung, and beyond-rung (far pool) so all four tiers participate. The
// rng is consumed in execution order, so any ordering divergence between
// two runs cascades — making the order vector a very sensitive probe.
struct Scenario {
  Simulation* sim{nullptr};
  Rng rng{0};
  std::vector<std::uint32_t> order;
  std::uint32_t next_id{0};
  std::uint32_t budget{0};

  struct Ev {
    Scenario* sc;
    std::uint32_t id;
    void operator()() const { sc->fire(id); }
  };
  static_assert(InlineCallback::fits_inline<Ev>());

  void fire(std::uint32_t id) {
    order.push_back(id);
    const std::size_t fanout = rng.next_below(3);  // 0..2 follow-ups
    for (std::size_t i = 0; i < fanout && budget != 0; ++i, --budget) {
      const std::size_t site = rng.next_below(kSites);
      SimDuration dt = 0;
      switch (rng.next_below(4)) {
        case 0: dt = 0; break;                                   // ring
        case 1: dt = 1 + rng.next_below(2'000'000); break;       // < 2 ms
        case 2: dt = simtime::millis(rng.uniform(2, 80)); break; // in-rung
        default: dt = simtime::millis(rng.uniform(80, 400)); break;  // far
      }
      sim->schedule_on_site(site, sim->now() + dt, Ev{this, next_id++});
    }
  }

  void seed_initial(std::size_t n) {
    for (std::size_t i = 0; i < n && budget != 0; ++i, --budget) {
      const std::size_t site = rng.next_below(kSites);
      const SimTime t = simtime::millis(rng.uniform(0, 250));
      sim->schedule_on_site(site, t, Ev{this, next_id++});
    }
  }
};

std::vector<std::uint32_t> run_scenario(bool sharded, std::uint64_t seed,
                                        SimTime* end_clock = nullptr,
                                        SimTime run_until_step = 0,
                                        bool engage_ladder = true) {
  Simulation sim;
  if (sharded) {
    sim.configure_sites(kSites, simtime::millis(4));
    // Declare a population-scale load so the far ladders engage; without
    // the hint sharded lanes run on their pure heaps and the far tier
    // would lose coverage.
    if (engage_ladder) sim.hint_lane_load(std::size_t{1} << 20);
  }
  Scenario sc;
  sc.sim = &sim;
  sc.rng = Rng(seed);
  sc.budget = 4000;
  sc.seed_initial(64);
  if (run_until_step > 0) {
    // Exercise the run_until() boundary logic mid-rung.
    while (sim.pending() != 0) sim.run_until(sim.now() + run_until_step);
  } else {
    sim.run();
  }
  EXPECT_EQ(sim.pending(), 0u);
  if (end_clock != nullptr) *end_clock = sim.now();
  return sc.order;
}

TEST(SimLanes, ShardedOrderMatchesSingleHeapOracle) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xbadc0deull}) {
    SimTime oracle_end = 0;
    SimTime sharded_end = 0;
    SimTime parked_end = 0;
    const auto oracle = run_scenario(false, seed, &oracle_end);
    const auto sharded = run_scenario(true, seed, &sharded_end);
    // Tier placement must never affect execution order: a parked ladder
    // (no capacity hint, everything on the per-lane heaps) replays the
    // same total order as the engaged one.
    const auto parked = run_scenario(true, seed, &parked_end, 0, false);
    ASSERT_EQ(oracle.size(), sharded.size()) << "seed " << seed;
    EXPECT_EQ(oracle, sharded) << "seed " << seed;
    EXPECT_EQ(oracle, parked) << "seed " << seed;
    EXPECT_EQ(oracle_end, sharded_end) << "seed " << seed;
    EXPECT_EQ(oracle_end, parked_end) << "seed " << seed;
  }
}

TEST(SimLanes, RunUntilAgreesWithOracleMidRung) {
  // Stepping the clock in 7 ms slices cuts through stage rungs and forces
  // refills at arbitrary boundaries; the order must not change.
  const auto whole = run_scenario(true, 7);
  const auto sliced = run_scenario(true, 7, nullptr, simtime::millis(7));
  EXPECT_EQ(whole, sliced);
  const auto oracle = run_scenario(false, 7, nullptr, simtime::millis(7));
  EXPECT_EQ(oracle, sliced);
}

TEST(SimLanes, SameTimeEventsKeepScheduleOrderAcrossLanes) {
  // Events at one instant execute in schedule (sequence) order even when
  // they alternate between lanes — the cached-head tie-break is the masked
  // sequence number, exactly like the single heap.
  for (const bool sharded : {false, true}) {
    Simulation sim;
    if (sharded) sim.configure_sites(kSites, simtime::millis(4));
    std::vector<int> order;
    struct Rec {
      std::vector<int>* order;
      int id;
      void operator()() const { order->push_back(id); }
    };
    const SimTime t = simtime::seconds(1);
    for (int i = 0; i < 12; ++i) {
      sim.schedule_on_site(static_cast<std::size_t>(i) % kSites, t,
                           Rec{&order, i});
    }
    sim.run();
    ASSERT_EQ(order.size(), 12u);
    for (int i = 0; i < 12; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimLanes, HintLaneLoadOrderIndependentOfConfigure) {
  // The capacity hint may arrive before sharding is configured (a workload
  // pool built before the cluster): configure_sites() applies the stored
  // hint, and the execution order matches hint-after-configure exactly.
  auto run = [](bool hint_first) {
    Simulation sim;
    if (hint_first) sim.hint_lane_load(std::size_t{1} << 20);
    sim.configure_sites(kSites, simtime::millis(4));
    if (!hint_first) sim.hint_lane_load(std::size_t{1} << 20);
    Scenario sc;
    sc.sim = &sim;
    sc.rng = Rng(7);
    sc.budget = 4000;
    sc.seed_initial(64);
    sim.run();
    return sc.order;
  };
  EXPECT_EQ(run(true), run(false));
  EXPECT_EQ(run(true), run_scenario(false, 7));
}

TEST(SimLanes, ConfigureSitesTightensLookahead) {
  Simulation sim;
  sim.configure_sites(kSites, simtime::millis(10));
  EXPECT_EQ(sim.site_lane_count(), kSites);
  EXPECT_EQ(sim.lookahead(), simtime::millis(10));
  // A second cluster on the same simulation keeps the shard count and the
  // most conservative horizon.
  sim.configure_sites(kSites, simtime::millis(4));
  EXPECT_EQ(sim.site_lane_count(), kSites);
  EXPECT_EQ(sim.lookahead(), simtime::millis(4));
}

TEST(SimLanes, CrossSiteHandoffsCounted) {
  Simulation sim;
  sim.configure_sites(kSites, simtime::millis(4));
  struct Ctx {
    Simulation* sim;
    int same_site_fired{0};
  } ctx{&sim, 0};
  struct SameSite {
    Ctx* ctx;
    void operator()() const { ++ctx->same_site_fired; }
  };
  struct Hop {
    Ctx* ctx;
    void operator()() const {
      // Executing in site 1's lane: a same-site follow-up is not a handoff,
      // a site-2 follow-up is.
      ctx->sim->schedule_on_site(1, ctx->sim->now() + 10, SameSite{ctx});
      ctx->sim->schedule_on_site(2, ctx->sim->now() + simtime::millis(5),
                                 SameSite{ctx});
    }
  };
  // Scheduling from outside any event executes in lane 0 context: both
  // site-bound schedules below are handoffs.
  sim.schedule_on_site(1, simtime::millis(1), Hop{&ctx});
  const std::uint64_t after_seed = sim.cross_site_handoffs();
  EXPECT_EQ(after_seed, 1u);
  sim.run();
  EXPECT_EQ(ctx.same_site_fired, 2);
  EXPECT_EQ(sim.cross_site_handoffs(), after_seed + 1);
}

TEST(SimLanes, PendingCountsAllTiers) {
  Simulation sim;
  sim.configure_sites(kSites, simtime::millis(4));
  sim.hint_lane_load(std::size_t{1} << 20);  // engage so far tier is occupied
  struct Nop {
    void operator()() const {}
  };
  // Spread schedules across sites and time scales; pending() must count
  // ring, stage, heap and far occupants alike.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_on_site(static_cast<std::size_t>(i) % kSites,
                         simtime::millis(i * 3), Nop{});
  }
  EXPECT_EQ(sim.pending(), 100u);
  sim.run_until(simtime::millis(150));
  EXPECT_EQ(sim.pending(), 49u);  // events at > 150 ms remain
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimLanes, UntaggedTrafficKeepsWindowsShut) {
  // schedule_on_site (no par tag) traffic through run() with workers armed:
  // the eligibility rules must serialize every step, and the order must
  // still match the oracle exactly.
  Simulation sim;
  sim.configure_sites(kSites, simtime::millis(4));
  sim.set_worker_threads(2);
  sim.hint_lane_load(std::size_t{1} << 20);
  Scenario sc;
  sc.sim = &sim;
  sc.rng = Rng(21);
  sc.budget = 4000;
  sc.seed_initial(64);
  sim.run();
  EXPECT_EQ(sim.windows_run(), 0u);
  EXPECT_EQ(sc.order, run_scenario(false, 21));
}

// ---------------------------------------------------------------- lite pool

std::uint64_t lite_digest(unsigned threads, bool lanes, std::uint64_t seed,
                          std::uint64_t* events = nullptr,
                          std::uint64_t* windows = nullptr,
                          bool engage_ladder = true) {
  Simulation sim;
  const net::Topology topo = net::Topology::grid5000(9);
  if (lanes) {
    sim.configure_sites(topo.site_count(), topo.min_cross_site_latency());
    if (threads > 0) sim.set_worker_threads(threads);
    // 5000 clients over 9 sites is below the pool's own hint threshold;
    // force-engage so the far tier stays covered at test scale (the
    // engage_ladder=false runs cover the parked configuration).
    if (engage_ladder) sim.hint_lane_load(std::size_t{1} << 20);
  }
  workload::LiteParams params;
  params.clients = 5000;
  params.end = simtime::minutes(3);
  params.mean_period = simtime::seconds(5);
  params.seed = seed;
  workload::LiteClientPool pool(sim, topo, params);
  pool.start();
  sim.run();
  if (events != nullptr) *events = sim.events_processed();
  if (windows != nullptr) *windows = sim.windows_run();
  return pool.digest();
}

TEST(SimLanes, LitePoolDigestStableAcrossSteppers) {
  std::uint64_t ev_single = 0;
  std::uint64_t ev_lanes = 0;
  std::uint64_t ev_t1 = 0;
  std::uint64_t ev_t4 = 0;
  std::uint64_t win_t4 = 0;
  const std::uint64_t single = lite_digest(0, false, 99, &ev_single);
  const std::uint64_t lanes = lite_digest(0, true, 99, &ev_lanes);
  const std::uint64_t t1 = lite_digest(1, true, 99, &ev_t1);
  const std::uint64_t t4 = lite_digest(4, true, 99, &ev_t4, &win_t4);
  const std::uint64_t parked = lite_digest(0, true, 99, nullptr, nullptr,
                                           /*engage_ladder=*/false);
  EXPECT_EQ(single, lanes);
  EXPECT_EQ(single, t1);
  EXPECT_EQ(single, t4);
  EXPECT_EQ(single, parked);
  EXPECT_EQ(ev_single, ev_lanes);
  EXPECT_EQ(ev_single, ev_t1);
  EXPECT_EQ(ev_single, ev_t4);
  // The windowed stepper must actually engage at this event density —
  // otherwise this test silently stops covering the parallel path.
  EXPECT_GT(win_t4, 0u);
}

class LaneReplaySeeds : public ::testing::TestWithParam<int> {};

TEST_P(LaneReplaySeeds, FiftySeedReplayDigestsMatch) {
  // 10 seeds per shard x 5 shards = the 50-seed replay matrix. Every seed
  // must digest identically between the single-heap oracle and the sharded
  // stepper; every 5th seed also runs under 2 worker threads.
  const int shard = GetParam();
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t seed =
        0x5eedull + static_cast<std::uint64_t>(shard * 10 + i);
    const std::uint64_t oracle = lite_digest(0, false, seed);
    EXPECT_EQ(oracle, lite_digest(0, true, seed)) << "seed " << seed;
    if (i % 5 == 0) {
      EXPECT_EQ(oracle, lite_digest(2, true, seed)) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ReplayMatrix, LaneReplaySeeds,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace bs::sim
