// Frame-pool and teardown coverage: size-class recycling, exhaustion
// fallback to the heap, steady-state zero-allocation spawning, leak-free
// destruction of suspended actors, and FIFO pinning for the same-time
// scheduling fast lane (delay_until-in-the-past included).
#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/frame_pool.hpp"
#include "sim/simulation.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace bs::sim {
namespace {

/// Restores the thread's pool to its default configuration on scope exit.
class PoolGuard {
 public:
  PoolGuard()
      : enabled_(FramePool::instance().enabled()),
        cap_(FramePool::instance().bucket_cap()) {}
  ~PoolGuard() {
    FramePool::instance().set_enabled(enabled_);
    FramePool::instance().set_bucket_cap(cap_);
    FramePool::instance().trim();
  }

 private:
  bool enabled_;
  std::size_t cap_;
};

TEST(FramePool, RecyclesChunksWithinSizeClass) {
  PoolGuard guard;
  auto& pool = FramePool::instance();
  pool.set_enabled(true);
  pool.trim();

  void* a = pool.allocate(100);  // 128-byte class
  pool.deallocate(a, 100);
  EXPECT_EQ(pool.cached_chunks(), 1u);
  // Any size landing in the same class gets the cached chunk back.
  void* b = pool.allocate(128);
  EXPECT_EQ(b, a);
  pool.deallocate(b, 128);
}

TEST(FramePool, OversizeFramesBypassThePool) {
  PoolGuard guard;
  auto& pool = FramePool::instance();
  pool.trim();
  pool.reset_stats();

  void* p = pool.allocate(FramePool::kMaxChunk + 1);
  ASSERT_NE(p, nullptr);
  pool.deallocate(p, FramePool::kMaxChunk + 1);
  EXPECT_EQ(pool.stats().oversize, 1u);
  EXPECT_EQ(pool.cached_chunks(), 0u);  // never cached
}

TEST(FramePool, BucketCapBoundsTheCacheAndFallsBackToHeap) {
  PoolGuard guard;
  auto& pool = FramePool::instance();
  pool.set_enabled(true);
  pool.trim();
  pool.set_bucket_cap(2);

  void* p[4];
  for (auto& q : p) q = pool.allocate(64);
  for (auto* q : p) pool.deallocate(q, 64);
  // Only bucket_cap chunks stay cached; the rest went back to the heap.
  EXPECT_EQ(pool.cached_chunks(), 2u);

  pool.reset_stats();
  void* a = pool.allocate(64);
  void* b = pool.allocate(64);
  void* c = pool.allocate(64);  // cache exhausted -> heap
  EXPECT_EQ(pool.stats().pool_hits, 2u);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  pool.deallocate(a, 64);
  pool.deallocate(b, 64);
  pool.deallocate(c, 64);
}

TEST(FramePool, DisabledPoolStillBalancesAllocations) {
  PoolGuard guard;
  auto& pool = FramePool::instance();
  pool.trim();
  pool.set_enabled(false);
  pool.reset_stats();

  void* p = pool.allocate(200);
  pool.deallocate(p, 200);
  EXPECT_EQ(pool.stats().pool_hits, 0u);
  EXPECT_EQ(pool.stats().live(), 0u);
  EXPECT_EQ(pool.cached_chunks(), 0u);
}

TEST(FramePool, MidLifeModeFlipIsSafe) {
  PoolGuard guard;
  auto& pool = FramePool::instance();
  pool.set_enabled(true);
  pool.trim();

  // Allocated pooled, freed with the pool disabled (chunk sizes are always
  // the full size class, so the sized delete matches)...
  void* a = pool.allocate(100);
  pool.set_enabled(false);
  pool.deallocate(a, 100);
  // ...and allocated unpooled, freed with the pool enabled (cached).
  void* b = pool.allocate(100);
  pool.set_enabled(true);
  pool.deallocate(b, 100);
  EXPECT_EQ(pool.cached_chunks(), 1u);
}

TEST(InlineCallbackHeadroom, HotPathCallbackShapesFitInline) {
  // The shapes the hot paths schedule: a bare resume handle, [this, ptr],
  // [this, u64] guards, and [this, shared_ptr] (the rpc timeout watcher).
  struct Thunk {
    std::coroutine_handle<> h;
    void operator()() const {}
  };
  static_assert(InlineCallback::fits_inline<Thunk>());
  void* self = nullptr;
  std::uint64_t gen = 0;
  auto guard_cb = [self, gen] { (void)self, (void)gen; };
  static_assert(InlineCallback::fits_inline<decltype(guard_cb)>());
  auto shared = std::make_shared<int>(1);
  auto watcher_cb = [self, shared] { (void)self, (void)shared; };
  static_assert(InlineCallback::fits_inline<decltype(watcher_cb)>());

  // Oversized captures degrade to the heap fallback — detectably.
  struct Big {
    unsigned char pad[InlineCallback::kInlineSize + 1];
  };
  Big big{};
  auto big_cb = [big] { (void)big; };
  static_assert(!InlineCallback::fits_inline<decltype(big_cb)>());
  // Both storage modes still invoke correctly.
  int runs = 0;
  InlineCallback small([&runs] { ++runs; });
  InlineCallback large([&runs, big] {
    (void)big;
    ++runs;
  });
  small();
  large();
  EXPECT_EQ(runs, 2);
}

Task<void> nap(Simulation& sim, SimDuration dt) { co_await sim.delay(dt); }

TEST(FramePool, SteadyStateActorSpawningIsAllocationFree) {
  PoolGuard guard;
  auto& pool = FramePool::instance();
  pool.set_enabled(true);

  Simulation sim;
  // Warm-up: populate the free lists for every frame size this workload
  // touches (task frame + tracked-root frame), at the same concurrency the
  // steady state will run — the pool caches frames, so the high-water mark
  // of simultaneously live actors bounds what warm-up must provision.
  constexpr int kConcurrent = 32;
  for (int i = 0; i < kConcurrent; ++i) sim.spawn(nap(sim, simtime::millis(i)));
  sim.run();

  pool.reset_stats();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < kConcurrent; ++i) {
      sim.spawn(nap(sim, simtime::millis(i % 7)));
    }
    sim.run();
  }
  EXPECT_GT(pool.stats().pool_hits, 0u);
  EXPECT_EQ(pool.stats().heap_allocs, 0u)
      << "steady-state spawn reached operator new";
  EXPECT_EQ(pool.stats().live(), 0u);
}

Task<void> wait_forever(Event& ev) { co_await ev.wait(); }

TEST(SimulationTeardown, DestroysSuspendedActorsWithoutLeaking) {
  PoolGuard guard;
  auto& pool = FramePool::instance();
  pool.reset_stats();
  {
    Simulation sim;
    Event never(sim);
    for (int i = 0; i < 8; ++i) sim.spawn(wait_forever(never));
    sim.run();
    EXPECT_EQ(sim.live_actors(), 8u);
  }  // ~Simulation destroys the suspended frames (LSan-clean in asan)
  EXPECT_EQ(pool.stats().live(), 0u);
}

Task<void> hold_sem(Simulation& sim, Semaphore& sem) {
  co_await sem.acquire();
  SemGuard g(sem);
  co_await sim.delay(simtime::minutes(60));
}

TEST(SimulationTeardown, SemGuardHeldAcrossTeardownDoesNotTouchSemaphore) {
  // The guard's release() is a no-op during the teardown cascade — in real
  // deployments the semaphore is owned by a service destroyed before the
  // Simulation, so touching it would be a use-after-free (caught by asan).
  Simulation sim;
  auto sem = std::make_unique<Semaphore>(sim, 1);
  sim.spawn(hold_sem(sim, *sem));
  sim.run_until(simtime::seconds(1));
  EXPECT_EQ(sem->available(), 0u);
  EXPECT_EQ(sim.live_actors(), 1u);
  sem.reset();  // service dies before the simulation, as in deployments
}

TEST(SimulationTeardown, PendingEventsAreDroppedNotRun) {
  int runs = 0;
  {
    Simulation sim;
    sim.schedule_in(simtime::seconds(1), [&runs] { ++runs; });
    sim.schedule_resume_at(simtime::seconds(2),
                           std::noop_coroutine());
  }
  EXPECT_EQ(runs, 0);
}

TEST(SimulationFifo, DelayUntilPastJoinsTheSameTimeFifoLane) {
  Simulation sim;
  std::vector<int> order;

  auto actor = [](Simulation& s, std::vector<int>& ord, SimTime target,
                  int tag) -> Task<void> {
    co_await s.delay(simtime::seconds(2));  // now == 2s; target is past
    co_await s.delay_until(target);
    ord.push_back(tag);
  };
  // Both actors resume from their 2s delay in spawn order, then re-enter
  // the queue via delay_until(past): the clamp must preserve FIFO order and
  // interleave with schedule_resume(now) wakeups scheduled between them.
  sim.spawn(actor(sim, order, simtime::seconds(1), 1));
  sim.spawn(actor(sim, order, 0, 2));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), simtime::seconds(2));
}

TEST(SimulationFifo, PastDelayUntilInterleavesWithZeroDelaysDeterministically) {
  Simulation sim;
  std::string trace;

  sim.schedule_in(simtime::seconds(1), [&] {
    // At t=1s, from inside a callback: mix the same-time ring (zero
    // delays, delay_until(past)) with future events; everything at t=1s
    // must run in scheduling order before time advances.
    sim.spawn([](Simulation& s, std::string& tr) -> Task<void> {
      tr += 'a';
      co_await s.delay_until(0);  // past -> same-time lane
      tr += 'c';
      co_await s.delay(0);
      tr += 'f';
    }(sim, trace));
    sim.schedule_at(sim.now(), [&trace] { trace += 'd'; });
    sim.spawn([](Simulation& s, std::string& tr) -> Task<void> {
      tr += 'b';
      co_await s.delay_until(s.now());  // boundary: not in the past
      tr += 'e';
    }(sim, trace));
    sim.schedule_in(simtime::seconds(1), [&trace] { trace += 'g'; });
  });
  sim.run();
  EXPECT_EQ(trace, "abcdefg");
}

TEST(SimulationFifo, RunUntilDrainsSameTimeLaneAtTheBoundary) {
  Simulation sim;
  int runs = 0;
  sim.schedule_at(simtime::seconds(5), [&] {
    sim.schedule_at(sim.now(), [&runs] { ++runs; });
    sim.schedule_resume(std::noop_coroutine());
    sim.schedule_in(simtime::millis(1), [&runs] { runs += 100; });
  });
  sim.run_until(simtime::seconds(5));
  EXPECT_EQ(runs, 1);  // same-time work ran, later event did not
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.now(), simtime::seconds(5));
}

}  // namespace
}  // namespace bs::sim
