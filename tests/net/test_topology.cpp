// Topology latency-matrix properties: the symmetric/positive invariants the
// sharded simulation leans on, and a pinned grid5000 lookahead value so an
// accidental change to the WAN matrix (which silently widens or shrinks the
// conservative lookahead horizon) fails loudly instead of perturbing every
// windowed run.
#include <gtest/gtest.h>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace bs::net {
namespace {

TEST(Topology, Grid5000MinCrossSiteLatencyPinned) {
  // The grid5000 WAN matrix is 4-12 ms; the minimum one-way edge — the
  // conservative lookahead horizon — is exactly 4 ms. Pinned: changing the
  // matrix changes every windowed schedule's eligibility.
  const Topology topo = Topology::grid5000();
  EXPECT_EQ(topo.min_cross_site_latency(), simtime::millis(4.0));
}

TEST(Topology, Grid5000MinIsTheMatrixMinimum) {
  const Topology topo = Topology::grid5000(9);
  SimDuration min_edge = simtime::kInfinite;
  for (SiteId a = 0; a < topo.site_count(); ++a) {
    for (SiteId b = 0; b < topo.site_count(); ++b) {
      if (a == b) continue;
      min_edge = std::min(min_edge, topo.latency(a, b));
    }
  }
  EXPECT_EQ(topo.min_cross_site_latency(), min_edge);
}

TEST(Topology, SingleSiteHasInfiniteLookahead) {
  // No cross-site edge bounds the horizon: the sharded stepper must treat a
  // single-site topology as "never window".
  const Topology topo = Topology::single_site();
  EXPECT_EQ(topo.min_cross_site_latency(), simtime::kInfinite);
}

TEST(Topology, LatencyMatrixIsSymmetricAndPositive) {
  const Topology topo = Topology::grid5000(9);
  for (SiteId a = 0; a < topo.site_count(); ++a) {
    EXPECT_GT(topo.latency(a, a), 0) << "LAN latency must be positive";
    for (SiteId b = 0; b < topo.site_count(); ++b) {
      EXPECT_EQ(topo.latency(a, b), topo.latency(b, a))
          << "one-way latency must be symmetric for sites " << a << "," << b;
      EXPECT_GT(topo.latency(a, b), 0);
    }
  }
}

TEST(Topology, WanEdgesDominateLanLatency) {
  // Cross-site latency must exceed intra-site latency, otherwise the
  // lookahead horizon would not bound same-site causality.
  const Topology topo = Topology::grid5000(9);
  for (SiteId a = 0; a < topo.site_count(); ++a) {
    for (SiteId b = 0; b < topo.site_count(); ++b) {
      if (a == b) continue;
      EXPECT_GT(topo.latency(a, b), topo.latency(a, a));
    }
  }
}

TEST(Topology, MinCrossSiteLatencyTracksEdits) {
  Topology topo;
  const SiteId a = topo.add_site("a", simtime::micros(100));
  const SiteId b = topo.add_site("b", simtime::micros(100));
  const SiteId c = topo.add_site("c", simtime::micros(100));
  topo.set_inter_site_latency(a, b, simtime::millis(8));
  topo.set_inter_site_latency(a, c, simtime::millis(6));
  topo.set_inter_site_latency(b, c, simtime::millis(10));
  EXPECT_EQ(topo.min_cross_site_latency(), simtime::millis(6));
}

}  // namespace
}  // namespace bs::net
