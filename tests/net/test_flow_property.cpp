// Property tests for the flow-level bandwidth model: conservation (bytes
// delivered = bytes requested), capacity (no resource serves more than
// capacity x time), and work conservation on a shared bottleneck.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/flow.hpp"
#include "sim/sync.hpp"

namespace bs::net {
namespace {

class FlowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowPropertyTest, RandomFlowsConserveBytesAndRespectCapacity) {
  Rng rng(GetParam());
  sim::Simulation sim;
  FlowScheduler flows(sim);

  const std::size_t n_resources = 2 + rng.next_below(6);
  std::vector<Resource*> resources;
  std::vector<double> caps;
  for (std::size_t i = 0; i < n_resources; ++i) {
    const double cap = rng.uniform(1e6, 2e8);
    caps.push_back(cap);
    resources.push_back(
        flows.create_resource("r" + std::to_string(i), cap));
  }

  const int n_flows = 3 + static_cast<int>(rng.next_below(40));
  double total_requested = 0;
  sim::WaitGroup wg(sim);
  for (int f = 0; f < n_flows; ++f) {
    const double bytes = rng.uniform(1e4, 5e7);
    total_requested += bytes;
    // Each flow crosses a random non-empty subset of resources.
    std::vector<Resource*> path;
    for (std::size_t i = 0; i < n_resources; ++i) {
      if (rng.chance(0.4)) path.push_back(resources[i]);
    }
    if (path.empty()) {
      path.push_back(
          resources[rng.next_below(n_resources)]);
    }
    const SimDuration start = simtime::millis(rng.uniform(0, 2000));
    wg.launch([](sim::Simulation& s, FlowScheduler& fl, double b,
                 std::vector<Resource*> p,
                 SimDuration at) -> sim::Task<void> {
      co_await s.delay(at);
      co_await fl.transfer(b, std::move(p));
    }(sim, flows, bytes, path, start));
  }
  sim.run();

  // All flows completed.
  EXPECT_EQ(flows.completed_flows(), static_cast<std::uint64_t>(n_flows));
  EXPECT_EQ(flows.active_flow_count(), 0u);

  // Capacity: no resource moved more than cap * elapsed (with rounding
  // slack); conservation: the sum over flows of bytes matches what the
  // resources saw (each flow counts once per crossed resource, so compare
  // against per-resource accounting bounds rather than equality).
  const double elapsed = simtime::to_seconds(sim.now());
  double total_served_max = 0;
  for (std::size_t i = 0; i < n_resources; ++i) {
    EXPECT_LE(resources[i]->bytes_served(),
              caps[i] * elapsed * 1.001 + 1024)
        << "resource " << i;
    total_served_max = std::max(total_served_max,
                                resources[i]->bytes_served());
    EXPECT_EQ(resources[i]->active_flows(), 0u);
  }
  EXPECT_LE(total_served_max, total_requested * 1.001 + 1024);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowPropertyTest,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 47, 59));

TEST(FlowWorkConservation, SharedBottleneckFinishesAtAnalyticTime) {
  // K flows of equal size all crossing one bottleneck: total time must be
  // (sum of bytes) / capacity regardless of arrival micro-ordering.
  for (int k : {2, 5, 17}) {
    sim::Simulation sim;
    FlowScheduler flows(sim);
    auto* r = flows.create_resource("link", 1e8);
    sim::WaitGroup wg(sim);
    const double each = 3e7;
    for (int i = 0; i < k; ++i) {
      wg.launch([](FlowScheduler& f, Resource* res,
                   double b) -> sim::Task<void> {
        std::vector<Resource*> p{res};
        co_await f.transfer(b, std::move(p));
      }(flows, r, each));
    }
    sim.run();
    EXPECT_NEAR(simtime::to_seconds(sim.now()), each * k / 1e8,
                0.01 * k)
        << "k=" << k;
  }
}

TEST(FlowFairness, UnequalPathsGetMaxMinShares) {
  // Three flows: A crosses r1 only; B crosses r1+r2; C crosses r2 only.
  // r1 = 100, r2 = 40 MB/s. Max-min: B gets 20, C gets 20, A gets 80.
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r1 = flows.create_resource("r1", 100e6);
  auto* r2 = flows.create_resource("r2", 40e6);

  // Sizes proportional to the max-min shares: all three flows should then
  // complete at ~1 s simultaneously.
  SimTime ta = 0, tb = 0, tc = 0;
  auto one = [](sim::Simulation& s, FlowScheduler& f,
                std::vector<Resource*> p, double bytes,
                SimTime& out) -> sim::Task<void> {
    co_await f.transfer(bytes, std::move(p));
    out = s.now();
  };
  sim::WaitGroup wg(sim);
  wg.launch(one(sim, flows, {r1}, 80e6, ta));
  wg.launch(one(sim, flows, {r1, r2}, 20e6, tb));
  wg.launch(one(sim, flows, {r2}, 20e6, tc));
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(ta), 1.0, 0.02);
  EXPECT_NEAR(simtime::to_seconds(tb), 1.0, 0.02);
  EXPECT_NEAR(simtime::to_seconds(tc), 1.0, 0.02);
  // Resource accounting matches the shares integrated over the run.
  EXPECT_NEAR(r1->bytes_served(), 100e6, 2e6);
  EXPECT_NEAR(r2->bytes_served(), 40e6, 2e6);
}

}  // namespace
}  // namespace bs::net
