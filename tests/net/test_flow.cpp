#include "net/flow.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/sync.hpp"
#include "test_util.hpp"

namespace bs::net {
namespace {

TEST(Topology, Grid5000Shape) {
  auto t = Topology::grid5000();
  EXPECT_EQ(t.site_count(), 9u);
  EXPECT_EQ(t.site_name(0), "rennes");
  // LAN latency is sub-millisecond; WAN in the 4-12 ms band.
  EXPECT_EQ(t.latency(0, 0), simtime::micros(100));
  for (std::size_t a = 0; a < 9; ++a) {
    for (std::size_t b = 0; b < 9; ++b) {
      if (a == b) continue;
      EXPECT_GE(t.latency(a, b), simtime::millis(4));
      EXPECT_LE(t.latency(a, b), simtime::millis(12));
      EXPECT_EQ(t.latency(a, b), t.latency(b, a));
    }
  }
}

TEST(Flow, SingleFlowTakesBytesOverCapacity) {
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  test::run_task_void(sim, flows.transfer(200e6, {r}));
  EXPECT_NEAR(simtime::to_seconds(sim.now()), 2.0, 1e-3);
  EXPECT_EQ(flows.completed_flows(), 1u);
}

TEST(Flow, TwoFlowsShareFairly) {
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  SimTime t1 = 0, t2 = 0;
  sim::WaitGroup wg(sim);
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{res};
    co_await f.transfer(100e6, std::move(rs));
    out = s.now();
  }(sim, flows, r, t1));
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{res};
    co_await f.transfer(100e6, std::move(rs));
    out = s.now();
  }(sim, flows, r, t2));
  sim.run();
  // Both share 100 MB/s -> each gets 50 MB/s -> both finish at ~2 s.
  EXPECT_NEAR(simtime::to_seconds(t1), 2.0, 1e-3);
  EXPECT_NEAR(simtime::to_seconds(t2), 2.0, 1e-3);
}

TEST(Flow, ShortFlowFinishesAndLongSpeedsUp) {
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  SimTime t_short = 0, t_long = 0;
  sim::WaitGroup wg(sim);
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{res};
    co_await f.transfer(50e6, std::move(rs));
    out = s.now();
  }(sim, flows, r, t_short));
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{res};
    co_await f.transfer(150e6, std::move(rs));
    out = s.now();
  }(sim, flows, r, t_long));
  sim.run();
  // Shared until 50 MB each has moved (t=1 s); short flow done, long flow
  // then runs at full rate for its remaining 100 MB (1 more second).
  EXPECT_NEAR(simtime::to_seconds(t_short), 1.0, 1e-3);
  EXPECT_NEAR(simtime::to_seconds(t_long), 2.0, 1e-3);
}

TEST(Flow, BottleneckIsMinimumAcrossResources) {
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* fast = flows.create_resource("fast", mb_per_sec(1000));
  auto* slow = flows.create_resource("slow", mb_per_sec(10));
  test::run_task_void(sim, flows.transfer(20e6, {fast, slow}));
  EXPECT_NEAR(simtime::to_seconds(sim.now()), 2.0, 1e-3);
}

TEST(Flow, MaxMinFairnessWithAsymmetricDemand) {
  // Two flows on link A (cap 100); one of them also crosses link B
  // (cap 30). Max-min: constrained flow gets 30, the other gets 70.
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* a = flows.create_resource("A", mb_per_sec(100));
  auto* b = flows.create_resource("B", mb_per_sec(30));
  SimTime t_constrained = 0, t_free = 0;
  sim::WaitGroup wg(sim);
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* ra,
               Resource* rb, SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{ra, rb};
    co_await f.transfer(30e6, std::move(rs));
    out = s.now();
  }(sim, flows, a, b, t_constrained));
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* ra,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{ra};
    co_await f.transfer(70e6, std::move(rs));
    out = s.now();
  }(sim, flows, a, t_free));
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(t_constrained), 1.0, 1e-2);
  EXPECT_NEAR(simtime::to_seconds(t_free), 1.0, 1e-2);
}

TEST(Flow, ManyFlowsAggregateThroughputEqualsCapacity) {
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  sim::WaitGroup wg(sim);
  for (int i = 0; i < 20; ++i) {
    wg.launch(flows.transfer(10e6, {r}));
  }
  sim.run();
  // 200 MB total over a 100 MB/s link -> 2 s.
  EXPECT_NEAR(simtime::to_seconds(sim.now()), 2.0, 1e-2);
  EXPECT_NEAR(r->bytes_served(), 200e6, 1e6);
}

TEST(Flow, ZeroByteTransferCompletesInstantly) {
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  test::run_task_void(sim, flows.transfer(0, {r}));
  EXPECT_EQ(sim.now(), 0);
}

TEST(Flow, DuplicateResourceEntriesCountOnce) {
  // A repeated Resource* in the transfer path must not inflate the per-flow
  // share accounting: {r, r, r} behaves exactly like {r}.
  for (const bool incremental : {true, false}) {
    sim::Simulation sim;
    FlowScheduler flows(sim, {.incremental = incremental});
    auto* r = flows.create_resource("link", mb_per_sec(100));
    test::run_task_void(sim, flows.transfer(200e6, {r, r, r}));
    EXPECT_NEAR(simtime::to_seconds(sim.now()), 2.0, 1e-3)
        << "incremental=" << incremental;
    EXPECT_EQ(r->active_flows(), 0u);
    EXPECT_NEAR(r->bytes_served(), 200e6, 1.0);
  }
}

TEST(Flow, DuplicateResourceCompetesFairlyWithPlainFlow) {
  // Before dedup, a duplicated entry double-counted the flow in unfrozen_,
  // halving its share. Both flows must finish together at 2 s.
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  SimTime t_dup = 0, t_plain = 0;
  sim::WaitGroup wg(sim);
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{res, res};
    co_await f.transfer(100e6, std::move(rs));
    out = s.now();
  }(sim, flows, r, t_dup));
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{res};
    co_await f.transfer(100e6, std::move(rs));
    out = s.now();
  }(sim, flows, r, t_plain));
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(t_dup), 2.0, 1e-3);
  EXPECT_NEAR(simtime::to_seconds(t_plain), 2.0, 1e-3);
}

TEST(Flow, BytesServedPinnedToAnalyticTotals) {
  // Max-min shares: A={r1} gets 80, B={r1,r2} gets 20, C={r2} gets 20 MB/s.
  // After completion each resource has served exactly the bytes of the
  // flows crossing it (residue crediting makes the totals exact).
  for (const bool incremental : {true, false}) {
    sim::Simulation sim;
    FlowScheduler flows(sim, {.incremental = incremental});
    auto* r1 = flows.create_resource("r1", 100e6);
    auto* r2 = flows.create_resource("r2", 40e6);
    sim::WaitGroup wg(sim);
    wg.launch(flows.transfer(80e6, {r1}));
    wg.launch(flows.transfer(20e6, {r1, r2}));
    wg.launch(flows.transfer(20e6, {r2}));
    sim.run();
    EXPECT_NEAR(r1->bytes_served(), 100e6, 1.0)
        << "incremental=" << incremental;
    EXPECT_NEAR(r2->bytes_served(), 40e6, 1.0)
        << "incremental=" << incremental;
  }
}

TEST(Flow, BytesServedSettlesOnDemandMidTransfer) {
  // bytes_served() must reflect progress up to now even between flow
  // events (the lazy path settles the resource's flows on read).
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  sim::WaitGroup wg(sim);
  wg.launch(flows.transfer(200e6, {r}));
  sim.run_until(simtime::seconds(0.5));
  EXPECT_NEAR(r->bytes_served(), 50e6, 1e3);
  EXPECT_EQ(r->active_flows(), 1u);
  sim.run();
  EXPECT_NEAR(r->bytes_served(), 200e6, 1.0);
}

TEST(Flow, StaggeredArrivalSlowsExistingFlow) {
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r = flows.create_resource("link", mb_per_sec(100));
  SimTime t_first = 0;
  sim::WaitGroup wg(sim);
  wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
               SimTime& out) -> sim::Task<void> {
    std::vector<Resource*> rs{res};
    co_await f.transfer(100e6, std::move(rs));
    out = s.now();
  }(sim, flows, r, t_first));
  wg.launch([](sim::Simulation& s, FlowScheduler& f,
               Resource* res) -> sim::Task<void> {
    co_await s.delay(simtime::seconds(0.5));
    std::vector<Resource*> rs{res};
    co_await f.transfer(100e6, std::move(rs));
  }(sim, flows, r));
  sim.run();
  // First flow: 50 MB alone (0.5 s), then 50 MB at half rate (1 s) -> 1.5 s.
  EXPECT_NEAR(simtime::to_seconds(t_first), 1.5, 1e-2);
}

}  // namespace
}  // namespace bs::net
