// Property suite for the flow-level bandwidth model. Seeded
// arrival/departure traces are replayed through the incremental
// (component-scoped) scheduler and the reference (global-recompute) oracle,
// asserting:
//  (a) completion times agree to 1 ns,
//  (b) no resource's allocated rate ever exceeds its capacity,
//  (c) every flow crosses at least one saturated resource (max-min:
//      every unfrozen bottleneck is filled),
// plus analytic work-conservation / fairness pins and mid-flight capacity
// changes (the fault plane's disk-slowdown actuator).
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/flow.hpp"
#include "sim/sync.hpp"

namespace bs::net {
namespace {

struct Trace {
  std::vector<double> caps;
  struct Op {
    double bytes;
    std::vector<std::size_t> path;  // resource indices
    SimDuration at;
  };
  std::vector<Op> ops;
};

Trace make_trace(std::uint64_t seed) {
  Rng rng(seed);
  Trace t;
  const std::size_t n_resources = 2 + rng.next_below(8);
  for (std::size_t i = 0; i < n_resources; ++i) {
    t.caps.push_back(rng.uniform(1e6, 2e8));
  }
  const std::size_t n_flows = 10 + rng.next_below(60);
  for (std::size_t f = 0; f < n_flows; ++f) {
    Trace::Op op;
    op.bytes = rng.uniform(1e4, 8e7);
    for (std::size_t i = 0; i < n_resources; ++i) {
      if (rng.chance(0.35)) op.path.push_back(i);
    }
    if (op.path.empty()) op.path.push_back(rng.next_below(n_resources));
    op.at = simtime::millis(rng.uniform(0, 3000));
    t.ops.push_back(std::move(op));
  }
  return t;
}

struct RunResult {
  std::vector<SimTime> completion;  // indexed by trace op
  std::vector<double> served;       // per resource
  SimTime end{0};
  std::uint64_t completed{0};
};

void check_maxmin_invariants(const FlowScheduler& flows) {
  const auto snap = flows.active_flows_snapshot();
  if (snap.empty()) return;
  std::unordered_map<const Resource*, double> load;
  for (const auto& f : snap) {
    for (const auto* r : f.resources) load[r] += f.rate;
  }
  // (b) capacity is never exceeded.
  for (const auto& [r, sum] : load) {
    EXPECT_LE(sum, r->capacity() * (1.0 + 1e-9))
        << "over-allocated resource " << r->name();
  }
  // (c) max-min: every flow is held back by some saturated resource.
  for (const auto& f : snap) {
    EXPECT_GT(f.rate, 0.0) << "starved flow " << f.id;
    bool has_bottleneck = false;
    for (const auto* r : f.resources) {
      if (load[r] >= r->capacity() * (1.0 - 1e-9)) {
        has_bottleneck = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck)
        << "flow " << f.id << " bottleneck not saturated";
  }
}

RunResult run_trace(const Trace& t, bool incremental, bool check_invariants) {
  sim::Simulation sim;
  FlowScheduler flows(sim, {.incremental = incremental});
  std::vector<Resource*> resources;
  for (std::size_t i = 0; i < t.caps.size(); ++i) {
    resources.push_back(
        flows.create_resource("r" + std::to_string(i), t.caps[i]));
  }
  RunResult rr;
  rr.completion.assign(t.ops.size(), -1);
  sim::WaitGroup wg(sim);
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    const auto& op = t.ops[i];
    std::vector<Resource*> path;
    for (auto idx : op.path) path.push_back(resources[idx]);
    wg.launch([](sim::Simulation& s, FlowScheduler& fl, double bytes,
                 std::vector<Resource*> p, SimDuration at,
                 SimTime& out) -> sim::Task<void> {
      co_await s.delay(at);
      co_await fl.transfer(bytes, std::move(p));
      out = s.now();
    }(sim, flows, op.bytes, std::move(path), op.at, rr.completion[i]));
  }
  if (check_invariants) {
    for (SimTime probe = simtime::millis(100); probe <= simtime::seconds(8);
         probe += simtime::millis(250)) {
      sim.schedule_at(probe, [&flows] { check_maxmin_invariants(flows); });
    }
  }
  sim.run();
  rr.end = sim.now();
  rr.completed = flows.completed_flows();
  for (auto* r : resources) rr.served.push_back(r->bytes_served());
  EXPECT_EQ(flows.active_flow_count(), 0u);
  return rr;
}

class FlowEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowEquivalenceTest, IncrementalMatchesReferenceOracle) {
  const Trace t = make_trace(GetParam());
  const RunResult inc = run_trace(t, /*incremental=*/true,
                                  /*check_invariants=*/true);
  const RunResult ref = run_trace(t, /*incremental=*/false,
                                  /*check_invariants=*/true);
  ASSERT_EQ(inc.completed, ref.completed);
  ASSERT_EQ(inc.completion.size(), ref.completion.size());
  // Both modes share the settle discipline, completion grouping and stored
  // per-flow ETAs, so completion times are bit-identical, not just close.
  for (std::size_t i = 0; i < inc.completion.size(); ++i) {
    EXPECT_EQ(inc.completion[i], ref.completion[i])
        << "flow " << i << " completed at " << inc.completion[i]
        << " (incremental) vs " << ref.completion[i] << " (reference)";
  }
  // Identical settle chains make per-resource byte totals bit-identical.
  for (std::size_t i = 0; i < inc.served.size(); ++i) {
    EXPECT_EQ(inc.served[i], ref.served[i]) << "resource " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowEquivalenceTest,
                         ::testing::Values(1, 5, 9, 13, 21, 33, 47, 101, 257,
                                           1031));

TEST(FlowWorkConservation, SharedBottleneckFinishesAtAnalyticTime) {
  // K flows of equal size all crossing one bottleneck: total time must be
  // (sum of bytes) / capacity regardless of arrival micro-ordering.
  for (int k : {2, 5, 17}) {
    sim::Simulation sim;
    FlowScheduler flows(sim);
    auto* r = flows.create_resource("link", 1e8);
    sim::WaitGroup wg(sim);
    const double each = 3e7;
    for (int i = 0; i < k; ++i) {
      wg.launch([](FlowScheduler& f, Resource* res,
                   double b) -> sim::Task<void> {
        std::vector<Resource*> p{res};
        co_await f.transfer(b, std::move(p));
      }(flows, r, each));
    }
    sim.run();
    EXPECT_NEAR(simtime::to_seconds(sim.now()), each * k / 1e8,
                0.01 * k)
        << "k=" << k;
  }
}

TEST(FlowFairness, UnequalPathsGetMaxMinShares) {
  // Three flows: A crosses r1 only; B crosses r1+r2; C crosses r2 only.
  // r1 = 100, r2 = 40 MB/s. Max-min: B gets 20, C gets 20, A gets 80.
  sim::Simulation sim;
  FlowScheduler flows(sim);
  auto* r1 = flows.create_resource("r1", 100e6);
  auto* r2 = flows.create_resource("r2", 40e6);

  // Sizes proportional to the max-min shares: all three flows should then
  // complete at ~1 s simultaneously.
  SimTime ta = 0, tb = 0, tc = 0;
  auto one = [](sim::Simulation& s, FlowScheduler& f,
                std::vector<Resource*> p, double bytes,
                SimTime& out) -> sim::Task<void> {
    co_await f.transfer(bytes, std::move(p));
    out = s.now();
  };
  sim::WaitGroup wg(sim);
  wg.launch(one(sim, flows, {r1}, 80e6, ta));
  wg.launch(one(sim, flows, {r1, r2}, 20e6, tb));
  wg.launch(one(sim, flows, {r2}, 20e6, tc));
  sim.run();
  EXPECT_NEAR(simtime::to_seconds(ta), 1.0, 0.02);
  EXPECT_NEAR(simtime::to_seconds(tb), 1.0, 0.02);
  EXPECT_NEAR(simtime::to_seconds(tc), 1.0, 0.02);
  // Resource accounting matches the shares integrated over the run.
  EXPECT_NEAR(r1->bytes_served(), 100e6, 2e6);
  EXPECT_NEAR(r2->bytes_served(), 40e6, 2e6);
}

TEST(FlowCapacityChange, MidFlightSlowdownShiftsCompletionAnalytically) {
  // One 100 MB flow on a 100 MB/s link, halved to 50 MB/s at t=0.5 s:
  // 50 MB done by the change, the remaining 50 MB takes 1 s -> 1.5 s total.
  for (const bool incremental : {true, false}) {
    sim::Simulation sim;
    FlowScheduler flows(sim, {.incremental = incremental});
    auto* r = flows.create_resource("disk", 100e6);
    SimTime done = 0;
    sim::WaitGroup wg(sim);
    wg.launch([](sim::Simulation& s, FlowScheduler& f, Resource* res,
                 SimTime& out) -> sim::Task<void> {
      std::vector<Resource*> p{res};
      co_await f.transfer(100e6, std::move(p));
      out = s.now();
    }(sim, flows, r, done));
    sim.schedule_at(simtime::millis(500),
                    [&] { flows.set_capacity(r, 50e6); });
    sim.run();
    EXPECT_NEAR(simtime::to_seconds(done), 1.5, 0.01)
        << "incremental=" << incremental;
    // Restoring with no active flows is a plain bookkeeping update.
    flows.set_capacity(r, 100e6);
    EXPECT_NEAR(r->bytes_served(), 100e6, 1e3);
  }
}

TEST(FlowCapacityChange, IncrementalMatchesReferenceUnderCapacityFlaps) {
  // A random trace plus periodic capacity halving/restoring on one
  // resource: both scheduler modes must still agree bit-for-bit.
  const Trace t = make_trace(41);
  std::vector<RunResult> results;
  for (const bool incremental : {true, false}) {
    sim::Simulation sim;
    FlowScheduler flows(sim, {.incremental = incremental});
    std::vector<Resource*> resources;
    for (std::size_t i = 0; i < t.caps.size(); ++i) {
      resources.push_back(
          flows.create_resource("r" + std::to_string(i), t.caps[i]));
    }
    RunResult rr;
    rr.completion.assign(t.ops.size(), -1);
    sim::WaitGroup wg(sim);
    for (std::size_t i = 0; i < t.ops.size(); ++i) {
      const auto& op = t.ops[i];
      std::vector<Resource*> path;
      for (auto idx : op.path) path.push_back(resources[idx]);
      wg.launch([](sim::Simulation& s, FlowScheduler& fl, double bytes,
                   std::vector<Resource*> p, SimDuration at,
                   SimTime& out) -> sim::Task<void> {
        co_await s.delay(at);
        co_await fl.transfer(bytes, std::move(p));
        out = s.now();
      }(sim, flows, op.bytes, std::move(path), op.at, rr.completion[i]));
    }
    for (SimTime probe = simtime::millis(300); probe <= simtime::seconds(4);
         probe += simtime::millis(600)) {
      const bool slow = (probe / simtime::millis(600)) % 2 == 0;
      sim.schedule_at(probe, [&flows, &resources, &t, slow] {
        flows.set_capacity(resources[0], slow ? t.caps[0] / 2 : t.caps[0]);
      });
    }
    sim.run();
    rr.end = sim.now();
    rr.completed = flows.completed_flows();
    for (auto* r : resources) rr.served.push_back(r->bytes_served());
    EXPECT_EQ(flows.active_flow_count(), 0u);
    results.push_back(std::move(rr));
  }
  ASSERT_EQ(results[0].completed, results[1].completed);
  EXPECT_EQ(results[0].end, results[1].end);
  for (std::size_t i = 0; i < results[0].completion.size(); ++i) {
    EXPECT_EQ(results[0].completion[i], results[1].completion[i])
        << "flow " << i;
  }
  for (std::size_t i = 0; i < results[0].served.size(); ++i) {
    EXPECT_EQ(results[0].served[i], results[1].served[i]) << "resource " << i;
  }
}

TEST(FlowEquivalence, ServedBytesMatchRequestedTotals) {
  // Conservation, pinned analytically: each resource serves exactly the sum
  // of the bytes of the flows that cross it (residue crediting included).
  const Trace t = make_trace(77);
  for (const bool incremental : {true, false}) {
    const RunResult rr = run_trace(t, incremental, false);
    std::vector<double> expected(t.caps.size(), 0.0);
    for (const auto& op : t.ops) {
      for (auto idx : op.path) expected[idx] += op.bytes;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(rr.served[i], expected[i],
                  1e-6 * std::max(1.0, expected[i]))
          << "resource " << i << " incremental=" << incremental;
    }
  }
}

}  // namespace
}  // namespace bs::net
