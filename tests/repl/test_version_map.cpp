// Unit coverage of the divergence-tracking primitives the geo-replication
// plane is built from: VersionMap / VersionRange (RethinkDB-shaped
// version_map_t) and the bounded CustodyQueue with its three overflow
// policies. Pure logic — no simulation.
#include <gtest/gtest.h>

#include "repl/custody.hpp"
#include "repl/version_map.hpp"

namespace bs::repl {
namespace {

constexpr BlobId kBlob{7};

TEST(VersionRange, CoherenceIsEarliestEqualsLatest) {
  EXPECT_TRUE((VersionRange{0, 0}).is_coherent());
  EXPECT_TRUE((VersionRange{5, 5}).is_coherent());
  EXPECT_FALSE((VersionRange{3, 5}).is_coherent());
}

TEST(VersionMap, NoteAppliedDedupsByVersion) {
  VersionMap m;
  EXPECT_TRUE(m.note_applied(kBlob, 1));
  EXPECT_TRUE(m.note_applied(kBlob, 2));
  // The exactly-once primitive: a re-forwarded custody bundle lands here
  // a second time and must be recognised.
  EXPECT_FALSE(m.note_applied(kBlob, 1));
  EXPECT_FALSE(m.note_applied(kBlob, 2));
  EXPECT_EQ(m.applied_count(), 2u);
  EXPECT_TRUE(m.has_applied(kBlob, 1));
  EXPECT_FALSE(m.has_applied(kBlob, 3));
}

TEST(VersionMap, NoteAppliedAdvancesLatestKnown) {
  VersionMap m;
  m.note_applied(kBlob, 4);
  EXPECT_EQ(m.latest_known(kBlob), 4u);
  m.note_published(kBlob, 9);
  EXPECT_EQ(m.latest_known(kBlob), 9u);
  // Monotonic: stale publication notices never move the frontier back.
  m.note_published(kBlob, 2);
  EXPECT_EQ(m.latest_known(kBlob), 9u);
}

TEST(VersionMap, RangeAgainstTracksCoherentFrontier) {
  // Origin published 1, 2, 3, 5 (4 aborted — gaps are normal).
  VersionMap origin;
  for (blob::Version v : {1, 2, 3, 5}) origin.note_applied(kBlob, v);

  VersionMap remote;
  remote.note_applied(kBlob, 1);
  remote.note_applied(kBlob, 2);
  remote.note_published(kBlob, 5);  // heard of it, not applied

  VersionRange r = remote.range_against(origin, kBlob);
  EXPECT_EQ(r.earliest, 2u);  // caught up through 2; 3 is the first hole
  EXPECT_EQ(r.latest, 5u);
  EXPECT_FALSE(r.is_coherent());

  remote.note_applied(kBlob, 3);
  remote.note_applied(kBlob, 5);
  r = remote.range_against(origin, kBlob);
  EXPECT_EQ(r.earliest, r.latest);
  EXPECT_TRUE(r.is_coherent());
  EXPECT_TRUE(remote.is_coherent_against(origin));
}

TEST(VersionMap, RetiredVersionsExcuseBothSides) {
  // Origin trims v2 away before the remote catches up: the remote is no
  // longer owed it, from either side's bookkeeping.
  VersionMap origin;
  for (blob::Version v : {1, 2, 3}) origin.note_applied(kBlob, v);
  origin.retire(kBlob, 2);

  VersionMap remote;
  remote.note_applied(kBlob, 1);
  remote.note_applied(kBlob, 3);
  EXPECT_TRUE(remote.is_coherent_against(origin));

  // Mirror case: the origin still lists v2 applied, but the remote has
  // already retired it locally (heard the trim before the data).
  VersionMap origin2;
  for (blob::Version v : {1, 2, 3}) origin2.note_applied(kBlob, v);
  VersionMap remote2;
  remote2.note_applied(kBlob, 1);
  remote2.note_applied(kBlob, 3);
  EXPECT_FALSE(remote2.is_coherent_against(origin2));
  remote2.retire(kBlob, 2);
  EXPECT_TRUE(remote2.is_coherent_against(origin2));
}

TEST(VersionMap, MissingFromCoalescesRuns) {
  VersionMap origin;
  for (blob::Version v : {1, 2, 3, 5, 6, 9}) origin.note_applied(kBlob, v);
  VersionMap remote;
  remote.note_applied(kBlob, 2);
  remote.note_applied(kBlob, 5);

  const auto missing = remote.missing_from(origin);
  ASSERT_EQ(missing.size(), 3u);
  EXPECT_EQ(missing[0], (MissingRange{kBlob.value, 1, 1, 1}));
  EXPECT_EQ(missing[1], (MissingRange{kBlob.value, 3, 3, 1}));
  // 6 and 9 are consecutive *published* versions: one range, count 2.
  EXPECT_EQ(missing[2], (MissingRange{kBlob.value, 6, 9, 2}));

  // A coherent map owes nothing.
  remote.note_applied(kBlob, 1);
  remote.note_applied(kBlob, 3);
  remote.note_applied(kBlob, 6);
  remote.note_applied(kBlob, 9);
  EXPECT_TRUE(remote.missing_from(origin).empty());
}

TEST(VersionMap, EmptyRemoteOwesEverything) {
  VersionMap origin;
  for (blob::Version v = 1; v <= 4; ++v) origin.note_applied(kBlob, v);
  VersionMap remote;
  const auto missing = remote.missing_from(origin);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], (MissingRange{kBlob.value, 1, 4, 4}));
  // ... but a region the origin never published into is vacuously coherent
  // (is_coherent_against skips empty origin regions).
  VersionMap empty_origin;
  empty_origin.note_published(kBlob, 3);  // latest known, nothing applied
  EXPECT_TRUE(remote.is_coherent_against(empty_origin));
}

TEST(VersionMap, DropRegionForgetsTheBlob) {
  VersionMap origin;
  origin.note_applied(kBlob, 1);
  origin.note_applied(BlobId{8}, 1);
  VersionMap remote;
  remote.note_applied(BlobId{8}, 1);
  EXPECT_FALSE(remote.is_coherent_against(origin));
  origin.drop_region(kBlob);
  EXPECT_TRUE(remote.is_coherent_against(origin));
  EXPECT_EQ(origin.region_count(), 1u);
}

TEST(VersionMap, MergeLatestFoldsFrontierOnly) {
  VersionMap origin;
  origin.note_applied(kBlob, 6);
  VersionMap remote;
  remote.note_applied(kBlob, 2);
  remote.merge_latest(origin);
  EXPECT_EQ(remote.latest_known(kBlob), 6u);
  // Merging teaches the frontier, never fabricates applies.
  EXPECT_FALSE(remote.has_applied(kBlob, 6));
  EXPECT_EQ(remote.applied_count(), 1u);
}

TEST(VersionMap, WireRoundTripPreservesEverything) {
  VersionMap m;
  for (blob::Version v : {1, 2, 5}) m.note_applied(kBlob, v);
  m.retire(kBlob, 2);
  m.note_published(kBlob, 9);
  m.note_applied(BlobId{11}, 3);

  const auto wire = m.encode_wire();
  ASSERT_EQ(wire.size(), 2u);
  // Regions come out in blob order, versions ascending — the wire form is
  // part of the deterministic replay contract.
  EXPECT_EQ(wire[0].blob, kBlob.value);
  EXPECT_EQ(wire[0].latest_known, 9u);
  EXPECT_EQ(wire[0].applied, (std::vector<blob::Version>{1, 5}));
  EXPECT_EQ(wire[0].retired, (std::vector<blob::Version>{2}));

  const VersionMap back = VersionMap::decode_wire(wire);
  EXPECT_EQ(back.digest(), m.digest());
  EXPECT_TRUE(back.has_applied(kBlob, 5));
  EXPECT_FALSE(back.has_applied(kBlob, 2));
  EXPECT_EQ(back.latest_known(kBlob), 9u);
}

TEST(VersionMap, DigestIsContentSensitive) {
  VersionMap a;
  VersionMap b;
  a.note_applied(kBlob, 1);
  b.note_applied(kBlob, 1);
  EXPECT_EQ(a.digest(), b.digest());
  b.note_published(kBlob, 2);
  EXPECT_NE(a.digest(), b.digest());
}

// ---------------------------------------------------------------- custody

CustodyBundle publish_bundle(std::uint64_t id, blob::Version v,
                             std::uint64_t bytes = 100) {
  CustodyBundle b;
  b.id = id;
  b.kind = BundleKind::publish;
  b.blob = kBlob;
  b.version = v;
  b.bytes = bytes;
  return b;
}

TEST(CustodyQueue, DropNewestRefusesAtTheBound) {
  CustodyQueue q(2, OverflowPolicy::drop_newest);
  EXPECT_EQ(q.push(publish_bundle(1, 1)), EnqueueOutcome::ok);
  EXPECT_EQ(q.push(publish_bundle(2, 2)), EnqueueOutcome::ok);
  EXPECT_EQ(q.push(publish_bundle(3, 3)), EnqueueOutcome::dropped_new);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().version, 1u);  // FIFO head untouched
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
  // The refused publish is NOT under custody — reconciliation must see it.
  EXPECT_TRUE(q.holds_publish(kBlob, 1));
  EXPECT_FALSE(q.holds_publish(kBlob, 3));
}

TEST(CustodyQueue, DropOldestEvictsTheHead) {
  CustodyQueue q(2, OverflowPolicy::drop_oldest);
  q.push(publish_bundle(1, 1));
  q.push(publish_bundle(2, 2));
  EXPECT_EQ(q.push(publish_bundle(3, 3)), EnqueueOutcome::dropped_old);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().version, 2u);  // v1 evicted
  EXPECT_FALSE(q.holds_publish(kBlob, 1));
  EXPECT_TRUE(q.holds_publish(kBlob, 3));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 3u);
}

TEST(CustodyQueue, SpillKeepsEverythingBeyondTheBound) {
  CustodyQueue q(2, OverflowPolicy::spill);
  q.push(publish_bundle(1, 1));
  q.push(publish_bundle(2, 2));
  EXPECT_EQ(q.push(publish_bundle(3, 3)), EnqueueOutcome::spilled);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_FALSE(q.bundles()[1].spilled);
  EXPECT_TRUE(q.bundles()[2].spilled);
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_EQ(q.stats().spilled, 1u);
  EXPECT_EQ(q.stats().peak_depth, 3u);
  EXPECT_TRUE(q.holds_publish(kBlob, 3));
}

TEST(CustodyQueue, ReleaseFrontIsFifoAndForgets) {
  CustodyQueue q(8, OverflowPolicy::spill);
  for (std::uint64_t i = 1; i <= 3; ++i) q.push(publish_bundle(i, i));
  const CustodyBundle b = q.release_front();
  EXPECT_EQ(b.version, 1u);
  EXPECT_FALSE(q.holds_publish(kBlob, 1));
  EXPECT_TRUE(q.holds_publish(kBlob, 2));
  EXPECT_EQ(q.stats().released, 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.queued_bytes(), 200u);
}

}  // namespace
}  // namespace bs::repl
