// Property suite for the custody-transfer replication plane, on a hermetic
// three-site rig (bare cluster + egresses, no blob deployment): publishes
// are driven straight into the origin egress the way the version manager's
// geo hook would. The properties locked down here:
//   * custody is never lost below the queue bound — a partition parks the
//     drain without burning delivery attempts, and every parked bundle is
//     handed off exactly once after the heal;
//   * re-forwarded bundles (timeout without a known partition) apply
//     exactly once at the receiver — dedup by version id;
//   * `is_coherent()` holds at every post-reconciliation quiescent point,
//     across repeated partition/heal cycles;
//   * custody acked into the journal survives a crash+restart of the
//     egress node, and a wiped remote is rebuilt by reconciliation;
//   * bundles lost to drop policies are re-scheduled by the version-map
//     reconciler after the heal.
#include <gtest/gtest.h>

#include <memory>

#include "blob/messages.hpp"
#include "fault/fault_plane.hpp"
#include "repl/plane.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

constexpr BlobId kBlob{1};
constexpr std::uint64_t kBytes = 32 * units::KB;

struct Rig {
  sim::Simulation sim;
  rpc::Cluster cluster;
  fault::FaultPlane fp;
  std::unique_ptr<repl::ReplicationPlane> plane;

  explicit Rig(repl::ReplOptions ro = {}, bool attach_fault = true)
      : cluster(sim, net::Topology::grid5000(3)), fp(cluster, 0xFA17ull) {
    plane = std::make_unique<repl::ReplicationPlane>(cluster, 0, ro);
    if (attach_fault) plane->attach_fault_plane(fp);
    plane->start();
  }

  /// What the version manager's geo hook does: origin bookkeeping plus a
  /// publish custody bundle towards every remote site.
  void publish(blob::Version v, std::uint64_t bytes = kBytes) {
    repl::SiteEgress& o = plane->egress(0);
    o.note_published(kBlob, v, bytes);
    for (net::SiteId s : plane->remote_sites()) {
      o.enqueue_publish(s, kBlob, v, bytes);
    }
  }

  void settle(SimDuration d) { sim.run_until(sim.now() + d); }
};

TEST(CustodyProperties, HealthyLinksDeliverEverythingExactlyOnce) {
  Rig rig;
  for (blob::Version v = 1; v <= 10; ++v) rig.publish(v);
  rig.settle(simtime::seconds(30));

  EXPECT_TRUE(rig.plane->coherent());
  for (net::SiteId s : {1, 2}) {
    EXPECT_EQ(rig.plane->egress(s).applies(), 10u) << "site " << s;
    EXPECT_EQ(rig.plane->egress(s).duplicates_dropped(), 0u);
  }
  const repl::CustodyQueueStats st = rig.plane->total_custody_stats();
  EXPECT_EQ(st.enqueued, 20u);  // 10 versions x 2 remote sites
  EXPECT_EQ(st.released, 20u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.reforwards, 0u);
  EXPECT_EQ(rig.plane->egress(0).queue_depth(), 0u);
}

TEST(CustodyProperties, PartitionParksCustodyWithoutLossOrAttempts) {
  Rig rig;
  rig.fp.partition(0, 1);
  rig.settle(simtime::seconds(1));
  for (blob::Version v = 1; v <= 20; ++v) rig.publish(v);
  rig.settle(simtime::seconds(30));

  // Custody parked for the cut site, delivered to the healthy one. The
  // drain parked on notification: not a single timeout was burned.
  EXPECT_EQ(rig.plane->egress(0).queue_depth(1), 20u);
  EXPECT_EQ(rig.plane->egress(2).applies(), 20u);
  EXPECT_EQ(rig.plane->total_custody_stats().reforwards, 0u);
  EXPECT_EQ(rig.plane->total_custody_stats().dropped, 0u);
  EXPECT_FALSE(rig.plane->site_coherent(1));
  EXPECT_TRUE(rig.plane->site_coherent(2));

  rig.fp.heal(0, 1);
  rig.settle(simtime::seconds(60));

  EXPECT_TRUE(rig.plane->coherent());
  EXPECT_EQ(rig.plane->egress(0).queue_depth(), 0u);
  EXPECT_EQ(rig.plane->egress(1).applies(), 20u);  // exactly once
  EXPECT_EQ(rig.plane->egress(1).duplicates_dropped(), 0u);
  EXPECT_EQ(rig.plane->heals_observed(), 1u);
  // A heal involving the origin arms the reconciliation-lag clock; the
  // catch-up above is that lag.
  EXPECT_GT(rig.plane->last_reconcile_lag(), SimDuration{0});
}

TEST(CustodyProperties, UndeclaredOutageReforwardsAndDedups) {
  // The fault plane drops the messages but is NOT attached to the
  // replication plane: no partition notification ever arrives, so the
  // drain keeps attempting, times out, and re-forwards. The receiver must
  // end up with each version applied exactly once regardless.
  repl::ReplOptions ro;
  ro.egress.custody_timeout = simtime::millis(500);
  ro.egress.retry_backoff = simtime::millis(500);
  Rig rig(ro, /*attach_fault=*/false);

  rig.fp.partition(0, 1);
  for (blob::Version v = 1; v <= 5; ++v) rig.publish(v);
  rig.settle(simtime::seconds(15));

  const repl::CustodyQueueStats mid = rig.plane->total_custody_stats();
  EXPECT_GT(mid.reforwards, 0u);          // attempts burned into the outage
  EXPECT_EQ(rig.plane->egress(1).applies(), 0u);
  EXPECT_EQ(rig.plane->egress(0).queue_depth(1), 5u);  // custody held

  rig.fp.heal(0, 1);
  rig.settle(simtime::seconds(30));

  EXPECT_EQ(rig.plane->egress(1).applies(), 5u);
  EXPECT_TRUE(rig.plane->coherent());
  EXPECT_EQ(rig.plane->egress(0).queue_depth(), 0u);
  EXPECT_EQ(rig.plane->total_custody_stats().dropped, 0u);
}

TEST(CustodyProperties, CraftedDuplicateDeliverIsRecognised) {
  Rig rig;
  repl::ReplDeliverReq req;
  req.src_site = 0;
  req.bundle_id = 999;
  req.kind = static_cast<std::uint8_t>(repl::BundleKind::publish);
  req.blob = kBlob;
  req.version = 1;
  req.bytes = kBytes;

  rpc::Node& src = rig.plane->egress(0).node();
  const NodeId dst = rig.plane->egress(1).node().id();
  auto first = test::run_task(
      rig.sim,
      rig.cluster.call<repl::ReplDeliverReq, repl::ReplDeliverResp>(src, dst,
                                                                    req));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().duplicate);
  auto second = test::run_task(
      rig.sim,
      rig.cluster.call<repl::ReplDeliverReq, repl::ReplDeliverResp>(src, dst,
                                                                    req));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().duplicate);
  EXPECT_EQ(rig.plane->egress(1).applies(), 1u);
  EXPECT_EQ(rig.plane->egress(1).duplicates_dropped(), 1u);
}

TEST(CustodyProperties, ChunkDedupIsByReplicaIdentityNotBundleId) {
  // The receiver must dedup chunk bundles by what they carry, not by the
  // sender's bundle id: a sender that crashes and restarts its id sequence
  // may legitimately reuse an id for brand-new data, and a re-forward may
  // arrive under a fresh id after a custody timeout.
  Rig rig;
  int stores = 0;
  rpc::Node& target = rig.plane->egress(2).node();
  target.serve<blob::PutChunkReq, blob::PutChunkResp>(
      [&stores](const blob::PutChunkReq&,
                const rpc::Envelope&) -> sim::Task<Result<blob::PutChunkResp>> {
        ++stores;
        co_return blob::PutChunkResp{};
      });

  auto deliver = [&](std::uint64_t bundle_id, std::uint64_t chunk_index) {
    repl::ReplDeliverReq req;
    req.src_site = 0;
    req.bundle_id = bundle_id;
    req.kind = static_cast<std::uint8_t>(repl::BundleKind::chunk);
    req.blob = kBlob;
    req.version = 1;
    req.chunk = blob::ChunkKey{kBlob, 1, chunk_index};
    req.target = target.id();
    req.payload.size = kBytes;
    req.bytes = kBytes;
    rpc::Node& src = rig.plane->egress(0).node();
    const NodeId dst = rig.plane->egress(1).node().id();
    return test::run_task(
        rig.sim, rig.cluster.call<repl::ReplDeliverReq, repl::ReplDeliverResp>(
                     src, dst, std::move(req)));
  };

  // First delivery stores the replica and takes custody.
  auto first = deliver(/*bundle_id=*/1, /*chunk_index=*/0);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().duplicate);
  EXPECT_EQ(stores, 1);

  // Re-forward of the same replica under a fresh id: duplicate, not stored.
  auto retry = deliver(/*bundle_id=*/999, /*chunk_index=*/0);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry.value().duplicate);
  EXPECT_EQ(stores, 1);

  // New data under a reused id: must be stored, never silently absorbed.
  auto fresh = deliver(/*bundle_id=*/1, /*chunk_index=*/1);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().duplicate);
  EXPECT_EQ(stores, 2);
}

TEST(CustodyProperties, BundleIdsNeverRegressAcrossCheckpointedRecovery) {
  // Released bundles are compacted out of the checkpoint; the image's
  // id high-water-mark record must keep recovery from re-issuing their
  // ids onto the wire.
  repl::ReplOptions ro;
  ro.egress.journal.enabled = true;
  ro.egress.journal.checkpoint_records = 8;  // force frequent checkpoints
  Rig rig(ro);

  for (blob::Version v = 1; v <= 10; ++v) rig.publish(v);
  rig.settle(simtime::seconds(30));
  ASSERT_TRUE(rig.plane->coherent());
  ASSERT_EQ(rig.plane->egress(0).queue_depth(), 0u);
  const std::uint64_t hwm = rig.plane->egress(0).bundle_id_hwm();
  ASSERT_EQ(hwm, 20u);  // 10 versions x 2 remote sites

  const NodeId origin_node = rig.plane->egress(0).node().id();
  rig.fp.crash(origin_node);
  rig.settle(simtime::seconds(2));
  rig.fp.restart(origin_node);
  rig.settle(simtime::seconds(10));
  EXPECT_EQ(rig.plane->egress(0).recovery_stats().recoveries, 1u);
  EXPECT_GE(rig.plane->egress(0).bundle_id_hwm(), hwm);

  // Post-recovery publishes get fresh ids and still apply exactly once.
  for (blob::Version v = 11; v <= 12; ++v) rig.publish(v);
  rig.settle(simtime::seconds(30));
  EXPECT_TRUE(rig.plane->coherent());
  EXPECT_EQ(rig.plane->egress(0).bundle_id_hwm(), hwm + 4);
  EXPECT_EQ(rig.plane->egress(1).applies(), 12u);
  EXPECT_EQ(rig.plane->egress(1).duplicates_dropped(), 0u);
}

TEST(CustodyProperties, AckedCustodySurvivesCrashAndRestart) {
  repl::ReplOptions ro;
  ro.egress.journal.enabled = true;
  Rig rig(ro);

  rig.fp.partition(0, 1);
  rig.settle(simtime::seconds(1));
  for (blob::Version v = 1; v <= 10; ++v) rig.publish(v);
  rig.settle(simtime::seconds(10));
  ASSERT_EQ(rig.plane->egress(0).queue_depth(1), 10u);

  // Fail-stop of the origin egress node: parked custody must come back
  // from the WAL.
  const NodeId origin_node = rig.plane->egress(0).node().id();
  rig.fp.crash(origin_node);
  rig.settle(simtime::seconds(2));
  rig.fp.restart(origin_node);
  rig.settle(simtime::seconds(10));

  EXPECT_EQ(rig.plane->egress(0).recovery_stats().recoveries, 1u);
  EXPECT_EQ(rig.plane->egress(0).queue_depth(1), 10u);
  EXPECT_EQ(rig.plane->egress(1).applies(), 0u);  // still partitioned

  rig.fp.heal(0, 1);
  rig.settle(simtime::seconds(60));
  EXPECT_TRUE(rig.plane->coherent());
  EXPECT_EQ(rig.plane->egress(1).applies(), 10u);  // exactly once, post-replay
  EXPECT_EQ(rig.plane->egress(0).queue_depth(), 0u);
}

TEST(CustodyProperties, WipedRemoteIsRebuiltByReconciliation) {
  repl::ReplOptions ro;
  ro.egress.journal.enabled = true;
  ro.reconcile.interval = simtime::seconds(10);
  Rig rig(ro);

  for (blob::Version v = 1; v <= 6; ++v) rig.publish(v);
  rig.settle(simtime::seconds(20));
  ASSERT_TRUE(rig.plane->coherent());
  ASSERT_EQ(rig.plane->egress(1).map().applied_count(), 6u);

  // Storage loss at the remote: its map (and dedup state) are gone. The
  // next anti-entropy round sees the empty map and re-schedules everything.
  const NodeId remote_node = rig.plane->egress(1).node().id();
  rig.fp.crash(remote_node, /*lose_storage=*/true);
  rig.settle(simtime::seconds(2));
  rig.fp.restart(remote_node);
  rig.settle(simtime::seconds(1));
  EXPECT_EQ(rig.plane->egress(1).map().applied_count(), 0u);
  EXPECT_FALSE(rig.plane->site_coherent(1));

  rig.settle(simtime::seconds(40));
  EXPECT_TRUE(rig.plane->coherent());
  EXPECT_EQ(rig.plane->egress(1).map().applied_count(), 6u);
  EXPECT_GE(rig.plane->reconciler().catch_up_scheduled(), 6u);
}

TEST(CustodyProperties, DroppedBundlesAreRecoveredByTheReconciler) {
  repl::ReplOptions ro;
  ro.egress.queue_bound = 4;
  ro.egress.overflow = repl::OverflowPolicy::drop_newest;
  ro.reconcile.interval = simtime::seconds(10);
  Rig rig(ro);

  rig.fp.partition(0, 1);
  rig.fp.partition(0, 2);
  rig.settle(simtime::seconds(1));
  for (blob::Version v = 1; v <= 12; ++v) rig.publish(v);
  rig.settle(simtime::seconds(5));

  // 4 under custody per destination, 8 dropped per destination.
  const repl::CustodyQueueStats mid = rig.plane->total_custody_stats();
  EXPECT_EQ(rig.plane->egress(0).queue_depth(1), 4u);
  EXPECT_EQ(rig.plane->egress(0).queue_depth(2), 4u);
  EXPECT_EQ(mid.dropped, 16u);

  rig.fp.heal(0, 1);
  rig.fp.heal(0, 2);
  rig.settle(simtime::seconds(60));

  // Custody delivered what it held; the reconciler found the rest.
  EXPECT_TRUE(rig.plane->coherent());
  EXPECT_EQ(rig.plane->egress(1).map().applied_count(), 12u);
  EXPECT_EQ(rig.plane->egress(2).map().applied_count(), 12u);
  EXPECT_GE(rig.plane->reconciler().catch_up_scheduled(), 16u);
}

TEST(CustodyProperties, SpillPolicyHoldsEverythingAboveTheBound) {
  repl::ReplOptions ro;
  ro.egress.queue_bound = 4;
  ro.egress.overflow = repl::OverflowPolicy::spill;
  Rig rig(ro);

  rig.fp.partition(0, 1);
  rig.settle(simtime::seconds(1));
  for (blob::Version v = 1; v <= 12; ++v) rig.publish(v);
  rig.settle(simtime::seconds(5));

  EXPECT_EQ(rig.plane->egress(0).queue_depth(1), 12u);
  EXPECT_EQ(rig.plane->total_custody_stats().dropped, 0u);
  EXPECT_GE(rig.plane->total_custody_stats().spilled, 8u);

  rig.fp.heal(0, 1);
  rig.settle(simtime::seconds(60));
  EXPECT_TRUE(rig.plane->coherent());
  EXPECT_EQ(rig.plane->egress(1).applies(), 12u);
}

TEST(CustodyProperties, CoherentAtEveryPostHealQuiescentPoint) {
  repl::ReplOptions ro;
  ro.reconcile.interval = simtime::seconds(10);
  Rig rig(ro);
  blob::Version next = 1;

  for (int cycle = 0; cycle < 5; ++cycle) {
    rig.fp.partition(0, 1);
    if (cycle % 2 == 1) rig.fp.partition(0, 2);
    rig.settle(simtime::seconds(1));
    for (int i = 0; i < 4; ++i) rig.publish(next++);
    rig.settle(simtime::seconds(5));
    rig.fp.clear();
    rig.settle(simtime::seconds(40));
    EXPECT_TRUE(rig.plane->coherent()) << "cycle " << cycle;
    EXPECT_EQ(rig.plane->egress(0).queue_depth(), 0u) << "cycle " << cycle;
  }
  EXPECT_EQ(rig.plane->egress(1).applies(), 20u);
  EXPECT_EQ(rig.plane->egress(2).applies(), 20u);
  EXPECT_EQ(rig.plane->total_custody_stats().dropped, 0u);
}

TEST(CustodyProperties, TrimDuringPartitionRetiresCleanly) {
  Rig rig;
  for (blob::Version v = 1; v <= 5; ++v) rig.publish(v);
  rig.settle(simtime::seconds(10));
  ASSERT_TRUE(rig.plane->coherent());

  rig.fp.partition(0, 1);
  rig.settle(simtime::seconds(1));
  for (blob::Version v = 6; v <= 8; ++v) rig.publish(v);
  // v6 is trimmed away while its custody bundle is still parked: nobody
  // owes it any more, whether or not the bundle later lands.
  rig.plane->egress(0).retire_version(kBlob, 6);
  rig.settle(simtime::seconds(2));

  rig.fp.heal(0, 1);
  rig.settle(simtime::seconds(60));
  EXPECT_TRUE(rig.plane->coherent());
  const auto& regions = rig.plane->egress(0).map().regions();
  ASSERT_EQ(regions.count(kBlob.value), 1u);
  EXPECT_EQ(regions.at(kBlob.value).retired.count(6), 1u);
}

TEST(CustodyProperties, ReplayIsBitIdentical) {
  auto run = [](bool crash) {
    repl::ReplOptions ro;
    ro.egress.journal.enabled = true;
    ro.reconcile.interval = simtime::seconds(10);
    Rig rig(ro);
    rig.fp.partition(0, 1);
    rig.settle(simtime::seconds(1));
    for (blob::Version v = 1; v <= 10; ++v) rig.publish(v);
    rig.settle(simtime::seconds(5));
    if (crash) {
      const NodeId n = rig.plane->egress(0).node().id();
      rig.fp.crash(n, false, /*torn_tail=*/true);
      rig.settle(simtime::seconds(2));
      rig.fp.restart(n);
    }
    rig.fp.heal(0, 1);
    rig.settle(simtime::seconds(60));
    test::Digest dg;
    dg.mix(rig.plane->digest());
    dg.mix(rig.plane->total_custody_stats().released);
    dg.mix(static_cast<std::uint64_t>(rig.sim.now()));
    return dg.value();
  };
  EXPECT_EQ(run(false), run(false));
  EXPECT_EQ(run(true), run(true));
  EXPECT_NE(run(false), run(true));  // the crash is visible in the digest
}

}  // namespace
}  // namespace bs
