// Regression lock on `fault::random_schedule`: the long-partition knobs
// added for the disruption-tolerance suites must not perturb the schedules
// legacy seeds produce when the knobs are off — seeded chaos suites
// elsewhere in the tree depend on those schedules bit-for-bit. The golden
// digest below was captured from the pre-knob generator.
#include <gtest/gtest.h>

#include <cstring>

#include "fault/fault_plane.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

fault::ScheduleOptions legacy_options() {
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(4);
  for (std::uint64_t n = 2; n < 10; ++n) so.crashable.push_back(NodeId{n});
  so.crashes = 3;
  so.max_wipe_crashes = 1;
  so.site_count = 3;
  so.partitions = 2;
  so.degrades = 2;
  so.disk_slowdowns = 1;
  return so;
}

std::uint64_t schedule_digest(const std::vector<fault::FaultEvent>& sched,
                              test::Digest& dg) {
  dg.mix(sched.size());
  for (const fault::FaultEvent& e : sched) {
    dg.mix(static_cast<std::uint64_t>(e.at));
    dg.mix(static_cast<std::uint64_t>(e.kind));
    dg.mix(e.node.value);
    dg.mix(e.lose_storage ? 1 : 0);
    dg.mix(e.torn_tail ? 1 : 0);
    dg.mix(e.a);
    dg.mix(e.b);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &e.drop_prob, sizeof bits);
    dg.mix(bits);
    dg.mix(static_cast<std::uint64_t>(e.extra_latency));
    std::memcpy(&bits, &e.disk_factor, sizeof bits);
    dg.mix(bits);
  }
  return dg.value();
}

TEST(ScheduleKnobs, LegacySeedsProduceUnchangedSchedules) {
  test::Digest dg;
  for (std::uint64_t seed : {7ull, 23ull, 104729ull}) {
    schedule_digest(fault::random_schedule(seed, legacy_options()), dg);
  }
  // Captured before the long-partition knobs landed. If this moves, every
  // seeded chaos suite in the tree silently runs a different scenario.
  EXPECT_EQ(dg.value(), 0x4e26296a156a7c6dull);
}

TEST(ScheduleKnobs, LongPartitionsAddHealedPairsInsideTheWindow) {
  fault::ScheduleOptions so = legacy_options();
  so.partitions = 0;
  so.degrades = 0;
  so.crashes = 0;
  so.disk_slowdowns = 0;
  so.long_partitions = 2;
  so.min_long_partition = simtime::seconds(45);
  so.max_long_partition = simtime::seconds(90);
  const auto sched = fault::random_schedule(42, so);

  std::size_t cuts = 0;
  for (std::size_t i = 0; i < sched.size(); ++i) {
    if (sched[i].kind != fault::FaultEvent::Kind::partition) continue;
    ++cuts;
    // Every long partition heals, and the outage lasts the configured
    // window — not the (much shorter) legacy partition duration.
    bool healed = false;
    for (std::size_t j = i + 1; j < sched.size(); ++j) {
      if (sched[j].kind == fault::FaultEvent::Kind::heal &&
          sched[j].a == sched[i].a && sched[j].b == sched[i].b) {
        const SimDuration held = sched[j].at - sched[i].at;
        EXPECT_GE(held, simtime::seconds(45));
        EXPECT_LE(held, simtime::seconds(90));
        healed = true;
        break;
      }
    }
    EXPECT_TRUE(healed);
  }
  EXPECT_EQ(cuts, 2u);
}

TEST(ScheduleKnobs, AnchoredLongPartitionsAlwaysCutTheAnchorSite) {
  fault::ScheduleOptions so = legacy_options();
  so.partitions = 0;
  so.degrades = 0;
  so.crashes = 0;
  so.disk_slowdowns = 0;
  so.long_partitions = 4;
  so.anchor_long_partitions = true;
  so.long_partition_anchor = 1;
  for (std::uint64_t seed : {3ull, 9ull, 27ull}) {
    for (const auto& e : fault::random_schedule(seed, so)) {
      if (e.kind != fault::FaultEvent::Kind::partition &&
          e.kind != fault::FaultEvent::Kind::heal) {
        continue;
      }
      EXPECT_TRUE(e.a == 1 || e.b == 1) << "seed " << seed;
      EXPECT_NE(e.a, e.b);
    }
  }
}

TEST(ScheduleKnobs, KnobbedSchedulesStayDeterministic) {
  fault::ScheduleOptions so = legacy_options();
  so.long_partitions = 1;
  test::Digest a;
  test::Digest b;
  schedule_digest(fault::random_schedule(11, so), a);
  schedule_digest(fault::random_schedule(11, so), b);
  EXPECT_EQ(a.value(), b.value());
  // ... and the knob actually changes the scenario.
  test::Digest legacy;
  schedule_digest(fault::random_schedule(11, legacy_options()), legacy);
  EXPECT_NE(a.value(), legacy.value());
}

}  // namespace
}  // namespace bs
