// User Activity History and IntrospectionService snapshot logic.
#include <gtest/gtest.h>

#include "intro/introspection.hpp"
#include "rpc/rpc.hpp"
#include "test_util.hpp"

namespace bs::intro {
namespace {

mon::Record rec(mon::Domain d, std::uint64_t id, mon::Metric m, SimTime t,
                double v) {
  mon::Record r;
  r.key = {d, id, m};
  r.time = t;
  r.value = v;
  return r;
}

TEST(UserActivityHistory, RateAndTotalQueries) {
  UserActivityHistory uah;
  for (int t = 1; t <= 10; ++t) {
    uah.ingest(rec(mon::Domain::client, 1, mon::Metric::write_ops,
                   simtime::seconds(t), 10));
  }
  const SimTime now = simtime::seconds(10);
  EXPECT_DOUBLE_EQ(
      uah.total(ClientId{1}, mon::Metric::write_ops, simtime::seconds(5),
                now),
      50);
  EXPECT_DOUBLE_EQ(
      uah.rate(ClientId{1}, mon::Metric::write_ops, simtime::seconds(5),
               now),
      10);
  // Unknown client/metric -> 0.
  EXPECT_DOUBLE_EQ(
      uah.rate(ClientId{9}, mon::Metric::write_ops, simtime::seconds(5),
               now),
      0);
  EXPECT_DOUBLE_EQ(
      uah.rate(ClientId{1}, mon::Metric::read_ops, simtime::seconds(5), now),
      0);
}

TEST(UserActivityHistory, NonClientRecordsIgnored) {
  UserActivityHistory uah;
  uah.ingest(rec(mon::Domain::provider, 1, mon::Metric::used_bytes, 0, 5));
  EXPECT_EQ(uah.client_count(), 0u);
  EXPECT_EQ(uah.records_ingested(), 0u);
}

TEST(UserActivityHistory, ActiveClientsWindow) {
  UserActivityHistory uah;
  uah.ingest(rec(mon::Domain::client, 1, mon::Metric::write_ops,
                 simtime::seconds(5), 3));
  uah.ingest(rec(mon::Domain::client, 2, mon::Metric::write_ops,
                 simtime::seconds(50), 3));
  // Zero-valued records do not make a client "active".
  uah.ingest(rec(mon::Domain::client, 3, mon::Metric::write_ops,
                 simtime::seconds(50), 0));
  auto active = uah.active_clients(simtime::seconds(10),
                                   simtime::seconds(55));
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], ClientId{2});
}

TEST(UserActivityHistory, PruneDropsOldSamples) {
  UserActivityHistory uah(simtime::seconds(30));
  for (int t = 0; t < 60; t += 5) {
    uah.ingest(rec(mon::Domain::client, 1, mon::Metric::write_ops,
                   simtime::seconds(t), 1));
  }
  uah.prune(simtime::seconds(60));
  const TimeSeries* ts = uah.series(ClientId{1}, mon::Metric::write_ops);
  ASSERT_NE(ts, nullptr);
  for (const auto& s : ts->samples()) {
    EXPECT_GE(s.time, simtime::seconds(30));
  }
}

class IntrospectionTest : public ::testing::Test {
 protected:
  IntrospectionTest() : cluster_(sim_, net::Topology::single_site()) {
    node_ = cluster_.add_node(0);
    src_ = cluster_.add_node(0);
    service_ = std::make_unique<IntrospectionService>(*node_);
  }

  void push(std::vector<mon::Record> records) {
    mon::MonStoreReq req;
    req.records = std::make_shared<const std::vector<mon::Record>>(
        std::move(records));
    auto r = test::run_task(
        sim_, cluster_.call<mon::MonStoreReq, mon::MonStoreResp>(
                  *src_, node_->id(), std::move(req)));
    ASSERT_TRUE(r.ok());
  }

  sim::Simulation sim_;
  rpc::Cluster cluster_;
  rpc::Node* node_;
  rpc::Node* src_;
  std::unique_ptr<IntrospectionService> service_;
};

TEST_F(IntrospectionTest, SnapshotAggregatesProviders) {
  sim_.run_until(simtime::seconds(9));
  std::vector<mon::Record> records;
  for (std::uint64_t p = 10; p < 13; ++p) {
    records.push_back(rec(mon::Domain::provider, p,
                          mon::Metric::used_bytes, simtime::seconds(9),
                          2e9));
    records.push_back(rec(mon::Domain::provider, p,
                          mon::Metric::capacity_bytes, simtime::seconds(9),
                          10e9));
    records.push_back(rec(mon::Domain::provider, p,
                          mon::Metric::store_rate, simtime::seconds(9),
                          50e6));
    records.push_back(rec(mon::Domain::node, p, mon::Metric::cpu_load,
                          simtime::seconds(9), 0.5));
  }
  push(std::move(records));
  sim_.run_until(simtime::seconds(10));

  auto snap = service_->snapshot();
  EXPECT_EQ(snap.providers.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.total_used, 6e9);
  EXPECT_DOUBLE_EQ(snap.total_capacity, 30e9);
  EXPECT_NEAR(snap.utilization(), 0.2, 1e-9);
  EXPECT_NEAR(snap.aggregate_write_rate, 150e6, 1e3);
  EXPECT_NEAR(snap.avg_cpu, 0.5, 1e-9);
  EXPECT_NEAR(snap.providers[0].cpu, 0.5, 1e-9);
}

TEST_F(IntrospectionTest, SnapshotSeesBlobRatesAndClients) {
  sim_.run_until(simtime::seconds(8));
  std::vector<mon::Record> records;
  // 3 seconds x 30 MB of reads on blob 4 inside the 10 s window.
  for (int t = 7; t <= 9; ++t) {
    records.push_back(rec(mon::Domain::blob, 4,
                          mon::Metric::blob_read_bytes,
                          simtime::seconds(t), 30e6));
  }
  records.push_back(rec(mon::Domain::client, 21, mon::Metric::write_ops,
                        simtime::seconds(9), 5));
  records.push_back(rec(mon::Domain::client, 21, mon::Metric::rejected_ops,
                        simtime::seconds(9), 20));
  push(std::move(records));
  sim_.run_until(simtime::seconds(10));

  auto snap = service_->snapshot();
  ASSERT_EQ(snap.blobs.size(), 1u);
  EXPECT_NEAR(snap.blobs[0].read_rate, 9e6, 1e3);  // 90 MB over 10 s
  EXPECT_EQ(snap.active_clients, 1u);
  EXPECT_NEAR(snap.rejected_rate, 2.0, 1e-9);  // 20 rejections / 10 s
}

TEST_F(IntrospectionTest, ClientRecordsRouteToActivity) {
  push({rec(mon::Domain::client, 3, mon::Metric::write_bytes,
            simtime::seconds(1), 1e6)});
  EXPECT_EQ(service_->activity().client_count(), 1u);
  EXPECT_DOUBLE_EQ(
      service_->activity().total(ClientId{3}, mon::Metric::write_bytes,
                                 simtime::seconds(10), simtime::seconds(2)),
      1e6);
}

}  // namespace
}  // namespace bs::intro
