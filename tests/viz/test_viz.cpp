// Chart primitive + metrics panel tests.
#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "viz/chart.hpp"
#include "viz/metrics_panel.hpp"

namespace bs::viz {
namespace {

TEST(Chart, LineChartContainsTitleAndLegend) {
  auto out = line_chart("throughput", {"a", "b"},
                        {{1, 2, 3, 4}, {4, 3, 2, 1}});
  EXPECT_NE(out.find("== throughput =="), std::string::npos);
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  // Plot glyphs present.
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(Chart, LineChartHandlesEmpty) {
  auto out = line_chart("empty", {}, {});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(Chart, SeriesChartResamples) {
  TimeSeries ts;
  for (int i = 0; i < 100; ++i) ts.append(simtime::seconds(i), i);
  auto out = series_chart("ts", ts, 0, simtime::seconds(100));
  EXPECT_NE(out.find("== ts =="), std::string::npos);
}

TEST(Chart, BarChartScalesToMax) {
  auto out = bar_chart("bars", {"x", "yy"}, {10, 20}, 20);
  EXPECT_NE(out.find("####################"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("20.00"), std::string::npos);
}

TEST(Chart, Sparkline) {
  EXPECT_EQ(sparkline({}), "");
  const auto s = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '#');
  // Flat series renders uniformly.
  const auto flat = sparkline({5, 5, 5});
  EXPECT_EQ(flat, "   ");
}

TEST(Chart, TableAligns) {
  auto out = table({"id", "name"}, {{"1", "alpha"}, {"22", "b"}});
  EXPECT_NE(out.find("| id | name  |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | b     |"), std::string::npos);
}

TEST(Chart, CsvRoundTrip) {
  auto out = to_csv({"a", "b"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_EQ(out, "a,b\n1,2\n3,4\n");
}

TEST(Chart, FormatSi) {
  EXPECT_EQ(format_si(1500), "1.50k");
  EXPECT_EQ(format_si(2.5e6), "2.50M");
  EXPECT_EQ(format_si(3.25e9), "3.25G");
  EXPECT_EQ(format_si(12.0), "12.00");
}

TEST(MetricsPanel, TableRendersAllMetricKinds) {
  obs::MetricsRegistry reg;
  reg.counter("rpc.calls").inc(12);
  reg.gauge("providers.alive").set(6.0, simtime::seconds(1));
  reg.histogram("latency_ms", 0.0, 100.0, 10).add(7.0);
  const auto out = metrics_table(reg, simtime::seconds(2));
  EXPECT_NE(out.find("| metric"), std::string::npos);
  EXPECT_NE(out.find("rpc.calls"), std::string::npos);
  EXPECT_NE(out.find("counter"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find("providers.alive"), std::string::npos);
  EXPECT_NE(out.find("gauge"), std::string::npos);
  EXPECT_NE(out.find("latency_ms"), std::string::npos);
  EXPECT_NE(out.find("histogram"), std::string::npos);
}

TEST(MetricsPanel, SampleChartPlotsLoggedSeries) {
  obs::MetricsRegistry reg;
  obs::SampleLog log;
  for (int i = 0; i < 20; ++i) {
    reg.counter("events").inc(3);
    log.sample(reg, simtime::seconds(i));
  }
  const auto out = sample_chart(log, "events", 0, simtime::seconds(20));
  EXPECT_NE(out.find("== events =="), std::string::npos);
  EXPECT_EQ(sample_chart(log, "missing", 0, simtime::seconds(20)), "");
}

}  // namespace
}  // namespace bs::viz
