// Workload generator behaviour: writers, readers, attackers, trackers.
#include <gtest/gtest.h>

#include "blob/deployment.hpp"
#include "test_util.hpp"
#include "workload/clients.hpp"

namespace bs::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);
  }

  BlobId make_blob(blob::BlobClient& c, std::uint64_t chunk = units::MB) {
    auto r = test::run_task(sim_, c.create(chunk));
    return r.value();
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
};

TEST_F(WorkloadTest, WriterWritesExactlyTotalBytes) {
  blob::BlobClient* c = dep_->add_client();
  BlobId blob = make_blob(*c);
  ClientRunStats stats;
  WriterOptions w;
  w.total_bytes = 10 * units::MB;
  w.op_bytes = 3 * units::MB;  // last op is the 1 MB remainder
  sim_.spawn(Writer::run(*c, blob, w, &stats));
  sim_.run_until(simtime::minutes(2));
  EXPECT_EQ(stats.bytes_done, 10 * units::MB);
  EXPECT_EQ(stats.ops_ok, 4u);
  EXPECT_EQ(stats.ops_failed, 0u);
  EXPECT_GT(stats.finished, stats.started);

  auto d = test::run_task(sim_, c->stat(blob));
  EXPECT_EQ(d.value().latest.size, 10 * units::MB);
}

TEST_F(WorkloadTest, WriterRespectsStartAndDeadline) {
  blob::BlobClient* c = dep_->add_client();
  BlobId blob = make_blob(*c);
  ClientRunStats stats;
  WriterOptions w;
  w.loop_forever = true;
  w.op_bytes = 8 * units::MB;
  w.start = simtime::seconds(10);
  w.deadline = simtime::seconds(20);
  sim_.spawn(Writer::run(*c, blob, w, &stats));
  sim_.run_until(simtime::minutes(1));
  EXPECT_GE(stats.started, simtime::seconds(10));
  EXPECT_GT(stats.ops_ok, 0u);
  // No op STARTED after the deadline (the last may finish slightly past).
  EXPECT_LT(stats.finished, simtime::seconds(22));
}

TEST_F(WorkloadTest, WriterRetriesAfterFailure) {
  blob::BlobClient* c = dep_->add_client();
  BlobId blob = make_blob(*c);
  // Take all providers down; writes fail; bring them back later.
  for (auto& p : dep_->providers()) p->node().set_up(false);
  ClientRunStats stats;
  WriterOptions w;
  w.total_bytes = 4 * units::MB;
  w.op_bytes = 4 * units::MB;
  w.retry_backoff = simtime::seconds(2);
  sim_.spawn(Writer::run(*c, blob, w, &stats));
  sim_.run_until(simtime::seconds(40));
  EXPECT_GT(stats.ops_failed, 0u);
  EXPECT_EQ(stats.bytes_done, 0u);
  for (auto& p : dep_->providers()) {
    p->node().set_up(true);
    // A restarted provider re-registers with the provider manager.
    p->start_heartbeats(dep_->provider_manager_node().id());
  }
  sim_.run_until(simtime::minutes(3));
  EXPECT_EQ(stats.bytes_done, 4 * units::MB);
}

TEST_F(WorkloadTest, ReaderReadsFromExistingBlob) {
  blob::BlobClient* wc = dep_->add_client();
  BlobId blob = make_blob(*wc);
  ASSERT_TRUE(test::run_task(
                  sim_, wc->write(blob, 0, blob::Payload::synthetic(
                                               16 * units::MB, 1)))
                  .ok());
  blob::BlobClient* rc = dep_->add_client();
  ClientRunStats stats;
  ReaderOptions r;
  r.total_bytes = 32 * units::MB;
  r.op_bytes = 4 * units::MB;
  sim_.spawn(Reader::run(*rc, blob, r, &stats));
  sim_.run_until(simtime::minutes(2));
  EXPECT_GE(stats.bytes_done, 32 * units::MB);
  EXPECT_EQ(stats.ops_failed, 0u);
}

TEST_F(WorkloadTest, ReaderOnEmptyBlobFailsGracefully) {
  blob::BlobClient* c = dep_->add_client();
  BlobId blob = make_blob(*c);
  ClientRunStats stats;
  ReaderOptions r;
  r.total_bytes = units::MB;
  sim_.spawn(Reader::run(*c, blob, r, &stats));
  sim_.run_until(simtime::seconds(10));
  EXPECT_EQ(stats.ops_ok, 0u);
  EXPECT_EQ(stats.ops_failed, 1u);
  EXPECT_GT(stats.finished, 0);  // returned instead of spinning
}

TEST_F(WorkloadTest, AttackerFloodsAtConfiguredRate) {
  std::vector<NodeId> targets;
  for (auto& p : dep_->providers()) targets.push_back(p->id());
  rpc::Node* node = dep_->cluster().add_node(0);
  AttackerOptions a;
  a.request_rate = 100;
  a.start = simtime::seconds(5);
  a.deadline = simtime::seconds(25);
  AttackerStats stats;
  sim_.spawn(DosAttacker::run(*node, ClientId{66}, targets, a, &stats));
  sim_.run_until(simtime::minutes(1));
  // ~100 req/s for 20 s.
  EXPECT_NEAR(static_cast<double>(stats.sent), 2000, 50);
  EXPECT_EQ(stats.rejected, 0u);  // nothing blocks it here
  EXPECT_GT(stats.served, 1900u);
  // Garbage chunks actually landed on providers.
  std::uint64_t garbage = 0;
  for (auto& p : dep_->providers()) garbage += p->chunk_count();
  EXPECT_EQ(garbage, stats.served);
}

TEST_F(WorkloadTest, AttackerCountsRejectionsWhenBlocked) {
  std::vector<NodeId> targets;
  for (auto& p : dep_->providers()) {
    targets.push_back(p->id());
    p->node().set_admission([](const rpc::Envelope& env, const char*) {
      return env.client == ClientId{66}
                 ? Result<void>{Error{Errc::blocked, "banned"}}
                 : ok_result();
    });
  }
  rpc::Node* node = dep_->cluster().add_node(0);
  AttackerOptions a;
  a.request_rate = 50;
  a.deadline = simtime::seconds(10);
  AttackerStats stats;
  sim_.spawn(DosAttacker::run(*node, ClientId{66}, targets, a, &stats));
  sim_.run_until(simtime::seconds(30));
  EXPECT_EQ(stats.served, 0u);
  EXPECT_GT(stats.rejected, 400u);
  EXPECT_LT(stats.first_rejected, simtime::seconds(1));
}

TEST(ClientRunStats, RunMbps) {
  ClientRunStats s;
  s.started = simtime::seconds(1);
  s.finished = simtime::seconds(3);
  s.bytes_done = 200 * units::MB;
  EXPECT_NEAR(s.run_mbps(), 100.0, 1e-9);
  ClientRunStats unfinished;
  unfinished.bytes_done = 100;
  EXPECT_DOUBLE_EQ(unfinished.run_mbps(), 0.0);
}

}  // namespace
}  // namespace bs::workload
