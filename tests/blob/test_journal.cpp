// Unit tests for the write-ahead journal model (blob/journal.hpp): durable
// prefix semantics (append/seal group commit), crash flavours (volatile tail
// drop, torn last record, store wipe), checkpoint policy and the
// checkpoint-then-tail replay order.
#include <gtest/gtest.h>

#include <vector>

#include "blob/journal.hpp"

namespace bs::blob {
namespace {

struct Rec {
  int v{0};
};

JournalOptions enabled_opts(std::uint64_t cp_bytes = 1ull << 40,
                            std::uint64_t cp_records = 1ull << 40) {
  JournalOptions o;
  o.enabled = true;
  o.checkpoint_bytes = cp_bytes;
  o.checkpoint_records = cp_records;
  return o;
}

std::vector<int> replayed(const Journal<Rec>& j) {
  std::vector<int> out;
  j.replay([&](const Rec& r) { out.push_back(r.v); });
  return out;
}

TEST(Journal, SealMakesPrefixDurableAndCrashDropsTheRest) {
  Journal<Rec> j(enabled_opts());
  const auto s1 = j.append({1}, 10);
  const auto s2 = j.append({2}, 10);
  j.append({3}, 10);  // never sealed
  EXPECT_LT(s1, s2);
  j.seal(s2);
  EXPECT_EQ(j.durable_records(), 2u);

  j.crash(/*lose_storage=*/false, /*torn_tail=*/false);
  EXPECT_EQ(j.tail_records(), 2u);
  EXPECT_EQ(replayed(j), (std::vector<int>{1, 2}));
  EXPECT_EQ(j.torn_bytes(), 0u);
  EXPECT_FALSE(j.wiped());
}

TEST(Journal, GroupCommitOneSealCoversEveryEarlierAppend) {
  Journal<Rec> j(enabled_opts());
  j.append({1}, 8);
  j.append({2}, 8);
  const auto s3 = j.append({3}, 8);
  j.seal(s3);  // one fsync barrier, three records durable
  EXPECT_EQ(j.durable_records(), 3u);
  j.crash(false, false);
  EXPECT_EQ(replayed(j), (std::vector<int>{1, 2, 3}));
}

TEST(Journal, TornTailHalfOfFirstVolatileRecordLingers) {
  Journal<Rec> j(enabled_opts());
  const auto s1 = j.append({1}, 100);
  j.seal(s1);
  j.append({2}, 101);  // volatile; will be the torn record

  j.crash(/*lose_storage=*/false, /*torn_tail=*/true);
  EXPECT_EQ(j.tail_records(), 1u);
  EXPECT_EQ(j.torn_bytes(), 51u);  // (101 + 1) / 2, scanned then truncated

  const ReplayPlan plan = j.replay_plan();
  EXPECT_EQ(plan.tail_bytes, 100u);
  EXPECT_EQ(plan.torn_bytes, 51u);
  EXPECT_EQ(plan.total_bytes(), 151u);
  EXPECT_EQ(plan.total_records(), 1u);  // the torn record is NOT applied

  const auto outcome = j.finish_recovery();
  EXPECT_EQ(outcome.torn_bytes, 51u);
  EXPECT_EQ(j.torn_bytes(), 0u);  // truncated
}

TEST(Journal, TornCrashWithFullyDurableTailTearsNothing) {
  Journal<Rec> j(enabled_opts());
  const auto s = j.append({1}, 64);
  j.seal(s);
  j.crash(false, /*torn_tail=*/true);
  EXPECT_EQ(j.torn_bytes(), 0u);
  EXPECT_EQ(j.tail_records(), 1u);
}

TEST(Journal, StoreLossWipesCheckpointAndJournal) {
  Journal<Rec> j(enabled_opts());
  const auto s = j.append({1}, 64);
  j.seal(s);
  ASSERT_TRUE(j.install_checkpoint({{Rec{1}, 16}}));
  const auto s2 = j.append({2}, 64);
  j.seal(s2);

  j.crash(/*lose_storage=*/true, /*torn_tail=*/false);
  EXPECT_TRUE(j.wiped());
  EXPECT_EQ(j.replay_plan().total_bytes(), 0u);
  EXPECT_EQ(j.replay_plan().total_records(), 0u);
  EXPECT_TRUE(replayed(j).empty());
  const auto outcome = j.finish_recovery();
  EXPECT_TRUE(outcome.wiped);
  EXPECT_FALSE(j.wiped());
}

TEST(Journal, CheckpointTruncatesJournalAndReplaysFirst) {
  Journal<Rec> j(enabled_opts());
  const auto s = j.append({1}, 32);
  j.seal(s);
  ASSERT_TRUE(j.install_checkpoint({{Rec{10}, 16}, {Rec{11}, 16}}));
  EXPECT_EQ(j.tail_records(), 0u);
  EXPECT_EQ(j.checkpoint_records(), 2u);
  EXPECT_EQ(j.checkpoint_bytes(), 32u);

  const auto s2 = j.append({2}, 32);
  j.seal(s2);
  // Checkpoint image first, then the surviving tail, in append order.
  EXPECT_EQ(replayed(j), (std::vector<int>{10, 11, 2}));

  const ReplayPlan plan = j.replay_plan();
  EXPECT_EQ(plan.checkpoint_bytes, 32u);
  EXPECT_EQ(plan.checkpoint_records, 2u);
  EXPECT_EQ(plan.tail_bytes, 32u);
  EXPECT_EQ(plan.tail_records, 1u);
}

TEST(Journal, CheckpointRefusedWhileTailIsVolatile) {
  Journal<Rec> j(enabled_opts());
  j.append({1}, 32);  // never sealed
  EXPECT_FALSE(j.install_checkpoint({}));
  EXPECT_EQ(j.tail_records(), 1u);
}

TEST(Journal, StaleSealAfterCheckpointIsANoOp) {
  Journal<Rec> j(enabled_opts());
  const auto s1 = j.append({1}, 32);
  j.seal(s1);
  ASSERT_TRUE(j.install_checkpoint({}));
  j.append({2}, 32);
  j.seal(s1);  // sequence predates the checkpoint truncation
  EXPECT_EQ(j.durable_records(), 0u);
}

TEST(Journal, CheckpointDueHonoursBothThresholds) {
  Journal<Rec> j(enabled_opts(/*cp_bytes=*/100, /*cp_records=*/3));
  EXPECT_FALSE(j.checkpoint_due());  // empty
  auto s = j.append({1}, 40);
  j.seal(s);
  EXPECT_FALSE(j.checkpoint_due());
  s = j.append({2}, 70);
  EXPECT_FALSE(j.checkpoint_due());  // volatile tail blocks checkpoints
  j.seal(s);
  EXPECT_TRUE(j.checkpoint_due());  // 110 bytes >= 100

  Journal<Rec> k(enabled_opts(/*cp_bytes=*/1ull << 40, /*cp_records=*/2));
  s = k.append({1}, 1);
  k.seal(s);
  EXPECT_FALSE(k.checkpoint_due());
  s = k.append({2}, 1);
  k.seal(s);
  EXPECT_TRUE(k.checkpoint_due());  // 2 records >= 2

  Journal<Rec> off{JournalOptions{}};
  s = off.append({1}, 1ull << 50);
  off.seal(s);
  EXPECT_FALSE(off.checkpoint_due());  // disabled journal never checkpoints
}

TEST(Journal, DisabledJournalStillTracksButReportsDisabled) {
  Journal<Rec> j{JournalOptions{}};
  EXPECT_FALSE(j.enabled());
  const auto s = j.append({1}, 8);
  j.seal(s);
  EXPECT_EQ(j.durable_records(), 1u);
}

}  // namespace
}  // namespace bs::blob
