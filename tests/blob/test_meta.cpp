// Unit + property tests of the versioned segment tree: build_nodes/collect
// against a brute-force reference model of BlobSeer's shadowing semantics.
#include <gtest/gtest.h>

#include <map>

#include "blob/meta_ops.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace bs::blob {
namespace {

using meta_ops::LeafRef;

ChunkDescriptor make_leaf(BlobId blob, Version v, std::uint64_t index,
                          std::uint64_t size) {
  ChunkDescriptor d;
  d.key = ChunkKey{blob, v, index};
  d.size = size;
  d.checksum = hash_combine(v, index);
  d.replicas = {NodeId{index % 4}};
  return d;
}

std::vector<ChunkDescriptor> make_leaves(BlobId blob, const WriteExtent& w,
                                         std::uint64_t chunk_size) {
  std::vector<ChunkDescriptor> out;
  for (std::uint64_t i = 0; i < w.chunk_count; ++i) {
    out.push_back(make_leaf(blob, w.version, w.first_chunk + i, chunk_size));
  }
  return out;
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1023), 1024u);
  EXPECT_EQ(next_pow2(1ull << 40), 1ull << 40);
}

TEST(SubtreeVersion, PicksLatestOverlapping) {
  std::vector<WriteExtent> history{
      {1, 0, 4, 4},   // v1 covers chunks [0,4)
      {2, 2, 2, 4},   // v2 covers [2,4)
      {3, 6, 2, 8},   // v3 covers [6,8)
  };
  EXPECT_EQ(meta_ops::subtree_version(history, 3, 0, 2), 1u);
  EXPECT_EQ(meta_ops::subtree_version(history, 3, 2, 2), 2u);
  EXPECT_EQ(meta_ops::subtree_version(history, 1, 2, 2), 1u);
  EXPECT_EQ(meta_ops::subtree_version(history, 3, 4, 2), kInvalidVersion);
  EXPECT_EQ(meta_ops::subtree_version(history, 3, 6, 2), 3u);
  EXPECT_EQ(meta_ops::subtree_version(history, 2, 6, 2), kInvalidVersion);
  EXPECT_EQ(meta_ops::subtree_version(history, 3, 0, 8), 3u);
}

TEST(BuildNodes, SingleChunkBlobProducesRootLeaf) {
  const BlobId blob{1};
  WriteExtent w{1, 0, 1, 1};
  auto leaves = make_leaves(blob, w, 100);
  auto nodes = meta_ops::build_nodes(blob, w, leaves, {}, 1);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].first, (NodeKey{blob, 1, 0, 1}));
  EXPECT_TRUE(nodes[0].second.leaf);
  EXPECT_EQ(nodes[0].second.chunk.key.index, 0u);
}

TEST(BuildNodes, FullTreeNodeCount) {
  // Writing all 8 chunks of an 8-chunk tree: 8 leaves + 7 inner = 15 nodes.
  const BlobId blob{1};
  WriteExtent w{1, 0, 8, 8};
  auto leaves = make_leaves(blob, w, 100);
  auto nodes = meta_ops::build_nodes(blob, w, leaves, {}, 8);
  EXPECT_EQ(nodes.size(), 15u);
}

TEST(BuildNodes, PartialWriteBorrowsSiblings) {
  const BlobId blob{1};
  // v1 wrote all 4 chunks; v2 rewrites chunk 1 only.
  std::vector<WriteExtent> history{{1, 0, 4, 4}};
  WriteExtent w{2, 1, 1, 4};
  auto leaves = make_leaves(blob, w, 100);
  auto nodes = meta_ops::build_nodes(blob, w, leaves, history, 4);
  // Path: leaf(1) + inner(0,2) + root(0,4) = 3 nodes.
  ASSERT_EQ(nodes.size(), 3u);
  std::map<NodeKey, TreeNode> by_key(nodes.begin(), nodes.end());
  const auto& root = by_key.at(NodeKey{blob, 2, 0, 4});
  EXPECT_EQ(root.left_version, 2u);
  EXPECT_EQ(root.right_version, 1u);  // borrowed
  const auto& inner = by_key.at(NodeKey{blob, 2, 0, 2});
  EXPECT_EQ(inner.left_version, 1u);  // borrowed leaf 0
  EXPECT_EQ(inner.right_version, 2u);
}

TEST(BuildNodes, AppendBeyondOldRootCreatesNewLevels) {
  const BlobId blob{1};
  std::vector<WriteExtent> history{{1, 0, 2, 2}};  // old root covered 2 chunks
  WriteExtent w{2, 2, 2, 4};                    // append chunks [2,4)
  auto leaves = make_leaves(blob, w, 100);
  auto nodes = meta_ops::build_nodes(blob, w, leaves, history, 4);
  std::map<NodeKey, TreeNode> by_key(nodes.begin(), nodes.end());
  const auto& root = by_key.at(NodeKey{blob, 2, 0, 4});
  EXPECT_EQ(root.left_version, 1u);   // old root subtree borrowed
  EXPECT_EQ(root.right_version, 2u);  // new half
}

TEST(BuildNodes, BridgesOverShorterBorrowedTrees) {
  // v1 wrote only chunk 0 (its whole tree is one leaf, root_chunks=1);
  // v2 writes chunks [2,4), so v2's root covers 4 chunks. The untouched
  // half [0,2) is taller than v1's entire tree: v2 must emit a bridge
  // node (0,2) pointing down at v1's root and a hole at chunk 1.
  const BlobId blob{1};
  std::vector<WriteExtent> history{{1, 0, 1, 1}};
  WriteExtent w{2, 2, 2, 4};
  auto leaves = make_leaves(blob, w, 100);
  auto nodes = meta_ops::build_nodes(blob, w, leaves, history, 4);
  std::map<NodeKey, TreeNode> by_key(nodes.begin(), nodes.end());
  const auto& root = by_key.at(NodeKey{blob, 2, 0, 4});
  EXPECT_EQ(root.left_version, 2u);  // the bridge, owned by v2
  EXPECT_EQ(root.right_version, 2u);
  const auto& bridge = by_key.at(NodeKey{blob, 2, 0, 2});
  EXPECT_FALSE(bridge.leaf);
  EXPECT_EQ(bridge.left_version, 1u);  // v1's root leaf
  EXPECT_EQ(bridge.right_version, kInvalidVersion);
}

TEST(BuildNodes, HoleChildrenAreInvalid) {
  const BlobId blob{1};
  WriteExtent w{1, 3, 1, 4};  // only chunk 3 of a 4-chunk tree
  auto leaves = make_leaves(blob, w, 100);
  auto nodes = meta_ops::build_nodes(blob, w, leaves, {}, 4);
  std::map<NodeKey, TreeNode> by_key(nodes.begin(), nodes.end());
  const auto& root = by_key.at(NodeKey{blob, 1, 0, 4});
  EXPECT_EQ(root.left_version, kInvalidVersion);
  const auto& right = by_key.at(NodeKey{blob, 1, 2, 2});
  EXPECT_EQ(right.left_version, kInvalidVersion);
  EXPECT_EQ(right.right_version, 1u);
}

// ---------------------------------------------------------------- property

struct Model {
  // All committed writes in version order.
  std::vector<WriteExtent> history;

  /// Expected owner version of chunk `idx` at snapshot `v`.
  Version owner(Version v, std::uint64_t idx) const {
    Version best = kInvalidVersion;
    for (const auto& w : history) {
      if (w.version <= v && w.overlaps(idx, 1)) {
        if (best == kInvalidVersion || w.version > best) best = w.version;
      }
    }
    return best;
  }
};

class MetaPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetaPropertyTest, RandomWriteSequencesMatchReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::Simulation sim;
  InMemoryMetadataStore store;
  const BlobId blob{7};
  const std::uint64_t chunk_size = 64;

  Model model;
  std::vector<std::uint64_t> root_chunks_at;  // per version (1-based)
  std::uint64_t reserved_chunks = 0;

  const int n_writes = 24;
  for (int i = 0; i < n_writes; ++i) {
    const Version v = static_cast<Version>(i + 1);
    const std::uint64_t first =
        static_cast<std::uint64_t>(rng.uniform_int(0, 60));
    const std::uint64_t count =
        static_cast<std::uint64_t>(rng.uniform_int(1, 12));
    WriteExtent w{v, first, count, 0};
    reserved_chunks = std::max(reserved_chunks, first + count);
    const std::uint64_t root = next_pow2(reserved_chunks);
    w.root_chunks = root;
    root_chunks_at.push_back(root);

    auto leaves = make_leaves(blob, w, chunk_size);
    auto nodes =
        meta_ops::build_nodes(blob, w, leaves, model.history, root);
    for (auto& [key, node] : nodes) {
      ASSERT_TRUE(test::run_task(sim, store.put(key, node)).ok());
    }
    model.history.push_back(w);
  }

  // Check random range reads at random versions against the model.
  for (int q = 0; q < 200; ++q) {
    const Version v =
        static_cast<Version>(rng.uniform_int(1, n_writes));
    const std::uint64_t root = root_chunks_at[v - 1];
    const std::uint64_t lo =
        static_cast<std::uint64_t>(rng.uniform_int(0, 70));
    const std::uint64_t count =
        static_cast<std::uint64_t>(rng.uniform_int(1, 16));
    const std::uint64_t clipped_lo = std::min(lo, root);
    const std::uint64_t clipped_count = std::min(count, root - clipped_lo);
    if (clipped_count == 0) continue;

    auto leaves = test::run_task(
        sim, meta_ops::collect(sim, store, blob, v, root, clipped_lo,
                               clipped_count));
    ASSERT_TRUE(leaves.ok()) << leaves.error().to_string();
    ASSERT_EQ(leaves.value().size(), clipped_count);
    for (std::uint64_t k = 0; k < clipped_count; ++k) {
      const LeafRef& leaf = leaves.value()[k];
      const std::uint64_t idx = clipped_lo + k;
      EXPECT_EQ(leaf.chunk_index, idx);
      const Version expect = model.owner(v, idx);
      if (expect == kInvalidVersion) {
        EXPECT_TRUE(leaf.hole) << "chunk " << idx << " @v" << v;
      } else {
        ASSERT_FALSE(leaf.hole) << "chunk " << idx << " @v" << v;
        EXPECT_EQ(leaf.chunk.key.version, expect);
        EXPECT_EQ(leaf.chunk.key.index, idx);
        EXPECT_EQ(leaf.chunk.checksum, hash_combine(expect, idx));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetaPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(InMemoryStore, GetMissingFails) {
  sim::Simulation sim;
  InMemoryMetadataStore store;
  auto r = test::run_task(sim, store.get(NodeKey{BlobId{1}, 1, 0, 1}));
  EXPECT_EQ(r.code(), Errc::not_found);
}

TEST(InMemoryStore, PutIsIdempotentOverwrite) {
  sim::Simulation sim;
  InMemoryMetadataStore store;
  NodeKey key{BlobId{1}, 1, 0, 2};
  TreeNode a;
  a.left_version = 1;
  TreeNode b;
  b.left_version = 2;
  (void)test::run_task(sim, store.put(key, a));
  (void)test::run_task(sim, store.put(key, b));
  auto r = test::run_task(sim, store.get(key));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().left_version, 2u);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace bs::blob
