// Version manager protocol tests at the RPC level: version assignment,
// ordered publication, abort-repair epochs, append frontier, trim and
// delete semantics.
#include <gtest/gtest.h>

#include "blob/messages.hpp"
#include "blob/version_manager.hpp"
#include "test_util.hpp"

namespace bs::blob {
namespace {

class VmTest : public ::testing::Test {
 protected:
  VmTest() : cluster_(sim_, net::Topology::single_site()) {
    rpc::NodeSpec spec;
    spec.service_concurrency = 1024;  // commits wait while holding a slot
    vm_node_ = cluster_.add_node(0, spec);
    vm_ = std::make_unique<VersionManager>(*vm_node_);
    client_ = cluster_.add_node(0);
  }

  template <class Req, class Resp>
  Result<Resp> call(Req req) {
    rpc::CallOptions opts;
    opts.timeout = simtime::minutes(5);
    opts.client = ClientId{1};
    return test::run_task(sim_, cluster_.call<Req, Resp>(
                                    *client_, vm_node_->id(),
                                    std::move(req), opts));
  }

  BlobId make_blob(std::uint64_t chunk_size = 100) {
    CreateBlobReq req;
    req.chunk_size = chunk_size;
    auto r = call<CreateBlobReq, CreateBlobResp>(req);
    return r.value().blob;
  }

  StartWriteResp start(BlobId blob, std::uint64_t offset,
                       std::uint64_t size) {
    StartWriteReq req;
    req.blob = blob;
    req.offset = offset;
    req.size = size;
    auto r = call<StartWriteReq, StartWriteResp>(req);
    EXPECT_TRUE(r.ok()) << r.error().to_string();
    return r.value();
  }

  sim::Simulation sim_;
  rpc::Cluster cluster_;
  rpc::Node* vm_node_;
  std::unique_ptr<VersionManager> vm_;
  rpc::Node* client_;
};

TEST_F(VmTest, CreateValidation) {
  CreateBlobReq bad;
  bad.chunk_size = 0;
  EXPECT_EQ((call<CreateBlobReq, CreateBlobResp>(bad)).code(),
            Errc::invalid_argument);
  bad.chunk_size = 10;
  bad.replication = 0;
  EXPECT_EQ((call<CreateBlobReq, CreateBlobResp>(bad)).code(),
            Errc::invalid_argument);
}

TEST_F(VmTest, StartWriteAssignsDenseVersionsAndHistory) {
  BlobId blob = make_blob();
  auto s1 = start(blob, 0, 250);
  EXPECT_EQ(s1.version, 1u);
  EXPECT_EQ(s1.first_chunk, 0u);
  EXPECT_EQ(s1.chunk_count, 3u);
  EXPECT_EQ(s1.root_chunks, 4u);
  EXPECT_TRUE(s1.history.empty());

  auto s2 = start(blob, kAppendOffset, 100);
  EXPECT_EQ(s2.version, 2u);
  EXPECT_EQ(s2.offset, 300u);  // append aligned up past 250
  ASSERT_EQ(s2.history.size(), 1u);
  EXPECT_EQ(s2.history[0].version, 1u);
  EXPECT_EQ(s2.root_chunks, 4u);
}

TEST_F(VmTest, UnalignedOffsetAndZeroSizeRejected) {
  BlobId blob = make_blob();
  StartWriteReq bad;
  bad.blob = blob;
  bad.offset = 55;
  bad.size = 10;
  EXPECT_EQ((call<StartWriteReq, StartWriteResp>(bad)).code(),
            Errc::invalid_argument);
  bad.offset = 0;
  bad.size = 0;
  EXPECT_EQ((call<StartWriteReq, StartWriteResp>(bad)).code(),
            Errc::invalid_argument);
}

TEST_F(VmTest, CommitPublishesInOrder) {
  BlobId blob = make_blob();
  auto s1 = start(blob, 0, 100);
  auto s2 = start(blob, kAppendOffset, 100);

  // Commit v2 first; it must wait for v1.
  bool v2_done = false;
  sim_.spawn([](rpc::Cluster& c, rpc::Node& n, NodeId vm, BlobId b,
                Version v, std::uint64_t epoch, bool& flag) -> sim::Task<void> {
    CommitWriteReq req;
    req.blob = b;
    req.version = v;
    req.abort_epoch = epoch;
    rpc::CallOptions opts;
    opts.timeout = simtime::minutes(5);
    auto r = co_await c.call<CommitWriteReq, CommitWriteResp>(n, vm, req,
                                                              opts);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.value().published);
    flag = true;
  }(cluster_, *client_, vm_node_->id(), blob, s2.version, s2.abort_epoch,
    v2_done));
  sim_.run_until(sim_.now() + simtime::seconds(2));
  EXPECT_FALSE(v2_done);  // stalled on ordered publication

  CommitWriteReq c1;
  c1.blob = blob;
  c1.version = s1.version;
  c1.abort_epoch = s1.abort_epoch;
  auto r1 = call<CommitWriteReq, CommitWriteResp>(c1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1.value().published);
  sim_.run_until(sim_.now() + simtime::seconds(1));
  EXPECT_TRUE(v2_done);

  BlobInfoReq info;
  info.blob = blob;
  auto i = call<BlobInfoReq, BlobInfoResp>(info);
  EXPECT_EQ(i.value().descriptor.latest.version, 2u);
  EXPECT_EQ(i.value().descriptor.latest.size, 200u);  // append landed at 100
}

TEST_F(VmTest, AbortUnblocksLaterWriters) {
  BlobId blob = make_blob();
  auto s1 = start(blob, 0, 100);
  auto s2 = start(blob, 0, 100);

  AbortWriteReq ab;
  ab.blob = blob;
  ab.version = s1.version;
  ASSERT_TRUE((call<AbortWriteReq, AbortWriteResp>(ab)).ok());

  CommitWriteReq c2;
  c2.blob = blob;
  c2.version = s2.version;
  c2.abort_epoch = s2.abort_epoch;  // stale: abort bumped the epoch
  auto r2 = call<CommitWriteReq, CommitWriteResp>(c2);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().published);
  ASSERT_TRUE(r2.value().rebuild_needed);
  EXPECT_TRUE(r2.value().history.empty());  // v1 removed from history

  // Re-commit with the corrected epoch -> publishes.
  c2.abort_epoch = r2.value().abort_epoch;
  auto r3 = call<CommitWriteReq, CommitWriteResp>(c2);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().published);
  EXPECT_EQ(r3.value().info.version, s2.version);
}

TEST_F(VmTest, AbortRecomputesAppendFrontier) {
  BlobId blob = make_blob();
  auto s1 = start(blob, 0, 100);
  auto s2 = start(blob, 1000, 100);  // reserves up to 1100
  auto s3 = start(blob, kAppendOffset, 100);
  EXPECT_EQ(s3.offset, 1100u);

  // Abort the far write; the frontier falls back.
  AbortWriteReq ab;
  ab.blob = blob;
  ab.version = s2.version;
  ASSERT_TRUE((call<AbortWriteReq, AbortWriteResp>(ab)).ok());
  // s3 still reserved [1100, 1200); a new append goes after it.
  auto s4 = start(blob, kAppendOffset, 50);
  EXPECT_EQ(s4.offset, 1200u);
  (void)s1;
}

TEST_F(VmTest, CommitOfUnknownWriteConflicts) {
  BlobId blob = make_blob();
  CommitWriteReq c;
  c.blob = blob;
  c.version = 9;
  EXPECT_EQ((call<CommitWriteReq, CommitWriteResp>(c)).code(),
            Errc::conflict);
  AbortWriteReq a;
  a.blob = blob;
  a.version = 9;
  EXPECT_EQ((call<AbortWriteReq, AbortWriteResp>(a)).code(), Errc::conflict);
}

TEST_F(VmTest, InfoOfUnpublishedVersionFails) {
  BlobId blob = make_blob();
  (void)start(blob, 0, 100);  // pending, not committed
  BlobInfoReq info;
  info.blob = blob;
  info.version = 1;
  EXPECT_EQ((call<BlobInfoReq, BlobInfoResp>(info)).code(), Errc::not_found);
  // Latest of a blob with no published writes is version 0, size 0.
  info.version = kLatestVersion;
  auto r = call<BlobInfoReq, BlobInfoResp>(info);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at.version, 0u);
  EXPECT_EQ(r.value().at.size, 0u);
}

TEST_F(VmTest, TrimComputesUnreferencedChunks) {
  BlobId blob = make_blob(100);
  // v1 covers chunks [0,3); v2 overwrites chunk 0; v3 overwrites chunk 1.
  auto commit = [&](const StartWriteResp& s) {
    CommitWriteReq c;
    c.blob = blob;
    c.version = s.version;
    c.abort_epoch = s.abort_epoch;
    auto r = call<CommitWriteReq, CommitWriteResp>(c);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().published);
  };
  commit(start(blob, 0, 300));
  commit(start(blob, 0, 100));
  commit(start(blob, 100, 100));

  TrimBlobReq trim;
  trim.blob = blob;
  trim.keep_from = 3;  // keep only v3
  auto r = call<TrimBlobReq, TrimBlobResp>(trim);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().versions_removed, 2u);
  // At v3: chunk0 owner=v2(kept? no, v2 < 3 -> removed)...
  // owner(kept=3): chunk0 -> v2, chunk1 -> v3, chunk2 -> v1.
  // Removed versions: v1 {0,1,2}, v2 {0}.
  // v1 chunk0 shadowed by v2 -> unreferenced; v1 chunk1 shadowed by v3 ->
  // unreferenced; v1 chunk2 still owner -> kept. v2 chunk0 is owner at the
  // kept snapshot -> kept.
  ASSERT_EQ(r.value().unreferenced.size(), 2u);
  for (const auto& key : r.value().unreferenced) {
    EXPECT_EQ(key.version, 1u);
    EXPECT_TRUE(key.index == 0 || key.index == 1);
  }

  // Trimmed versions are gone; v3 remains.
  BlobInfoReq info;
  info.blob = blob;
  info.version = 1;
  EXPECT_EQ((call<BlobInfoReq, BlobInfoResp>(info)).code(), Errc::not_found);
  info.version = 3;
  EXPECT_TRUE((call<BlobInfoReq, BlobInfoResp>(info)).ok());

  // Trimming everything is rejected.
  TrimBlobReq bad;
  bad.blob = blob;
  bad.keep_from = 99;
  EXPECT_EQ((call<TrimBlobReq, TrimBlobResp>(bad)).code(),
            Errc::invalid_argument);
}

TEST_F(VmTest, DeleteBlobHidesEverything) {
  BlobId blob = make_blob();
  auto s = start(blob, 0, 100);
  CommitWriteReq c;
  c.blob = blob;
  c.version = s.version;
  c.abort_epoch = s.abort_epoch;
  ASSERT_TRUE((call<CommitWriteReq, CommitWriteResp>(c)).ok());

  DeleteBlobReq del;
  del.blob = blob;
  ASSERT_TRUE((call<DeleteBlobReq, DeleteBlobResp>(del)).ok());

  BlobInfoReq info;
  info.blob = blob;
  EXPECT_EQ((call<BlobInfoReq, BlobInfoResp>(info)).code(), Errc::not_found);
  StartWriteReq w;
  w.blob = blob;
  w.offset = 0;
  w.size = 10;
  EXPECT_EQ((call<StartWriteReq, StartWriteResp>(w)).code(),
            Errc::not_found);
  ListBlobsReq lb;
  auto blobs = call<ListBlobsReq, ListBlobsResp>(lb);
  EXPECT_TRUE(blobs.value().blobs.empty());
}

TEST_F(VmTest, SetReplicationAffectsNewWrites) {
  BlobId blob = make_blob();
  SetReplicationReq rep;
  rep.blob = blob;
  rep.replication = 3;
  ASSERT_TRUE((call<SetReplicationReq, SetReplicationResp>(rep)).ok());
  auto s = start(blob, 0, 100);
  EXPECT_EQ(s.replication, 3u);

  rep.replication = 0;
  EXPECT_EQ((call<SetReplicationReq, SetReplicationResp>(rep)).code(),
            Errc::invalid_argument);
}

TEST_F(VmTest, RootCoverageGrowsWithConcurrentReservations) {
  BlobId blob = make_blob(100);
  auto s1 = start(blob, 0, 100);        // root 1
  EXPECT_EQ(s1.root_chunks, 1u);
  auto s2 = start(blob, 700, 100);      // reserves to 800 -> root 8
  EXPECT_EQ(s2.root_chunks, 8u);
  // A later small write must still build a root covering the pending
  // reservation (forward references need it).
  auto s3 = start(blob, 0, 100);
  EXPECT_EQ(s3.root_chunks, 8u);
}

}  // namespace
}  // namespace bs::blob
