// Data-provider storage semantics and provider-manager allocation
// behaviour (strategies, exclusion, liveness, decommission).
#include <gtest/gtest.h>

#include <set>

#include "blob/data_provider.hpp"
#include "blob/provider_manager.hpp"
#include "test_util.hpp"

namespace bs::blob {
namespace {

// ----------------------------------------------------------- DataProvider

class ProviderTest : public ::testing::Test {
 protected:
  ProviderTest() : cluster_(sim_, net::Topology::single_site()) {
    node_ = cluster_.add_node(0);
    DataProviderOptions opts;
    opts.capacity = 1000;
    provider_ = std::make_unique<DataProvider>(*node_, opts);
    client_ = cluster_.add_node(0);
  }

  template <class Req, class Resp>
  Result<Resp> call(Req req) {
    return test::run_task(
        sim_, cluster_.call<Req, Resp>(*client_, node_->id(),
                                       std::move(req)));
  }

  Result<PutChunkResp> put(std::uint64_t index, std::uint64_t size,
                           std::uint64_t content = 1) {
    PutChunkReq req;
    req.key = ChunkKey{BlobId{1}, 1, index};
    req.payload = Payload::synthetic(size, content);
    return call<PutChunkReq, PutChunkResp>(std::move(req));
  }

  sim::Simulation sim_;
  rpc::Cluster cluster_;
  rpc::Node* node_;
  std::unique_ptr<DataProvider> provider_;
  rpc::Node* client_;
};

TEST_F(ProviderTest, StoresAndAccountsCapacity) {
  ASSERT_TRUE(put(0, 400).ok());
  ASSERT_TRUE(put(1, 400).ok());
  EXPECT_EQ(provider_->used(), 800u);
  EXPECT_EQ(provider_->free_space(), 200u);
  EXPECT_EQ(provider_->chunk_count(), 2u);
  // Third chunk does not fit.
  EXPECT_EQ(put(2, 400).code(), Errc::out_of_space);
  EXPECT_EQ(provider_->used(), 800u);
}

TEST_F(ProviderTest, RePutIsIdempotent) {
  ASSERT_TRUE(put(0, 400).ok());
  ASSERT_TRUE(put(0, 400).ok());  // retry after e.g. lost response
  EXPECT_EQ(provider_->used(), 400u);
  EXPECT_EQ(provider_->chunk_count(), 1u);
}

TEST_F(ProviderTest, PartialReads) {
  std::vector<std::uint8_t> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  PutChunkReq req;
  req.key = ChunkKey{BlobId{1}, 1, 0};
  req.payload = Payload::from_bytes(data);
  ASSERT_TRUE((call<PutChunkReq, PutChunkResp>(std::move(req))).ok());

  GetChunkReq get;
  get.key = ChunkKey{BlobId{1}, 1, 0};
  get.offset = 10;
  get.length = 20;
  auto r = call<GetChunkReq, GetChunkResp>(get);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().payload.size, 20u);
  ASSERT_NE(r.value().payload.bytes, nullptr);
  EXPECT_EQ((*r.value().payload.bytes)[0], 10);
  EXPECT_EQ((*r.value().payload.bytes)[19], 29);

  // Read past end clipped; read starting past end fails.
  get.offset = 90;
  get.length = 50;
  auto tail = call<GetChunkReq, GetChunkResp>(get);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().payload.size, 10u);
  get.offset = 150;
  EXPECT_EQ((call<GetChunkReq, GetChunkResp>(get)).code(),
            Errc::invalid_argument);
}

TEST_F(ProviderTest, GetMissingChunkFails) {
  GetChunkReq get;
  get.key = ChunkKey{BlobId{9}, 1, 0};
  EXPECT_EQ((call<GetChunkReq, GetChunkResp>(get)).code(), Errc::not_found);
}

TEST_F(ProviderTest, RemoveFreesSpace) {
  ASSERT_TRUE(put(0, 600).ok());
  RemoveChunkReq rm;
  rm.key = ChunkKey{BlobId{1}, 1, 0};
  auto r = call<RemoveChunkReq, RemoveChunkResp>(rm);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().removed);
  EXPECT_EQ(provider_->used(), 0u);
  // Removing again reports not-removed but succeeds.
  auto again = call<RemoveChunkReq, RemoveChunkResp>(rm);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().removed);
}

TEST_F(ProviderTest, RemoveBlobChunksSweepsOneBlobOnly) {
  ASSERT_TRUE(put(0, 100).ok());
  ASSERT_TRUE(put(1, 100).ok());
  PutChunkReq other;
  other.key = ChunkKey{BlobId{2}, 1, 0};
  other.payload = Payload::synthetic(100, 1);
  ASSERT_TRUE((call<PutChunkReq, PutChunkResp>(std::move(other))).ok());

  RemoveBlobChunksReq rm;
  rm.blob = BlobId{1};
  auto r = call<RemoveBlobChunksReq, RemoveBlobChunksResp>(rm);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().chunks_removed, 2u);
  EXPECT_EQ(r.value().bytes_freed, 200u);
  EXPECT_EQ(provider_->chunk_count(), 1u);
}

TEST_F(ProviderTest, ReplicateCopiesToPeer) {
  rpc::Node* peer_node = cluster_.add_node(0);
  DataProvider peer(*peer_node);
  ASSERT_TRUE(put(0, 100).ok());
  ReplicateChunkReq rep;
  rep.key = ChunkKey{BlobId{1}, 1, 0};
  rep.target = peer_node->id();
  ASSERT_TRUE((call<ReplicateChunkReq, ReplicateChunkResp>(rep)).ok());
  EXPECT_TRUE(peer.has_chunk(ChunkKey{BlobId{1}, 1, 0}));
  // Replicating a chunk we do not hold fails.
  rep.key = ChunkKey{BlobId{1}, 1, 99};
  EXPECT_EQ((call<ReplicateChunkReq, ReplicateChunkResp>(rep)).code(),
            Errc::not_found);
}

TEST_F(ProviderTest, WipeDropsEverything) {
  ASSERT_TRUE(put(0, 100).ok());
  ASSERT_TRUE(put(1, 100).ok());
  provider_->wipe();
  EXPECT_EQ(provider_->used(), 0u);
  EXPECT_EQ(provider_->chunk_count(), 0u);
}

// -------------------------------------------------------- ProviderManager

class PmTest : public ::testing::Test {
 protected:
  PmTest() : cluster_(sim_, net::Topology::single_site()) {}

  void boot(const std::string& strategy, std::size_t providers,
            std::uint64_t capacity = units::GB) {
    ProviderManagerOptions opts;
    opts.strategy = strategy;
    pm_node_ = cluster_.add_node(0);
    pm_ = std::make_unique<ProviderManager>(*pm_node_, opts);
    client_ = cluster_.add_node(0);
    for (std::size_t i = 0; i < providers; ++i) {
      RegisterProviderReq reg;
      reg.provider = NodeId{100 + i};
      reg.capacity = capacity;
      auto r = test::run_task(
          sim_, cluster_.call<RegisterProviderReq, RegisterProviderResp>(
                    *client_, pm_node_->id(), reg));
      ASSERT_TRUE(r.ok());
    }
  }

  Result<AllocateResp> allocate(std::uint64_t chunks, std::uint32_t repl,
                                std::vector<NodeId> exclude = {},
                                std::uint64_t chunk_size = units::MB) {
    AllocateReq req;
    req.blob = BlobId{1};
    req.version = 1;
    req.chunk_count = chunks;
    req.chunk_size = chunk_size;
    req.replication = repl;
    req.exclude = std::move(exclude);
    return test::run_task(sim_,
                          cluster_.call<AllocateReq, AllocateResp>(
                              *client_, pm_node_->id(), std::move(req)));
  }

  sim::Simulation sim_;
  rpc::Cluster cluster_;
  rpc::Node* pm_node_{nullptr};
  std::unique_ptr<ProviderManager> pm_;
  rpc::Node* client_{nullptr};
};

TEST_F(PmTest, ReplicasAreDistinct) {
  boot("random", 8);
  auto r = allocate(10, 3);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().placements.size(), 10u);
  for (const auto& replicas : r.value().placements) {
    ASSERT_EQ(replicas.size(), 3u);
    std::set<NodeId> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
  }
}

TEST_F(PmTest, RoundRobinSpreadsEvenly) {
  boot("round_robin", 5);
  auto r = allocate(20, 1);
  ASSERT_TRUE(r.ok());
  std::map<std::uint64_t, int> counts;
  for (const auto& p : r.value().placements) ++counts[p[0].value];
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [id, n] : counts) EXPECT_EQ(n, 4);
}

TEST_F(PmTest, ExclusionRespected) {
  boot("round_robin", 4);
  auto r = allocate(8, 1, {NodeId{100}, NodeId{101}});
  ASSERT_TRUE(r.ok());
  for (const auto& p : r.value().placements) {
    EXPECT_NE(p[0], NodeId{100});
    EXPECT_NE(p[0], NodeId{101});
  }
}

TEST_F(PmTest, FreeSpaceFilter) {
  boot("round_robin", 3, /*capacity=*/units::MB);
  // Chunks bigger than any provider's capacity cannot be placed.
  auto r = allocate(1, 1, {}, 2 * units::MB);
  EXPECT_EQ(r.code(), Errc::out_of_space);
}

TEST_F(PmTest, DecommissionedProvidersGetNoAllocations) {
  boot("round_robin", 3);
  SetDecommissionReq dec;
  dec.provider = NodeId{101};
  ASSERT_TRUE(
      (test::run_task(sim_,
                      cluster_.call<SetDecommissionReq, SetDecommissionResp>(
                          *client_, pm_node_->id(), dec)))
          .ok());
  auto r = allocate(12, 1);
  ASSERT_TRUE(r.ok());
  for (const auto& p : r.value().placements) {
    EXPECT_NE(p[0], NodeId{101});
  }
  EXPECT_EQ(pm_->alive_count(), 2u);
}

TEST_F(PmTest, HeartbeatFromUnknownProviderAsksReregistration) {
  boot("round_robin", 1);
  HeartbeatReq hb;
  hb.provider = NodeId{999};
  auto r = test::run_task(sim_, cluster_.call<HeartbeatReq, HeartbeatResp>(
                                    *client_, pm_node_->id(), hb));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().known);
}

TEST_F(PmTest, ReplicationLargerThanPoolDegradesGracefully) {
  boot("load_aware", 2);
  auto r = allocate(1, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().placements[0].size(), 2u);  // best effort
}

TEST(AllocationScore, LoadAwareOrdersByPressure) {
  ProviderEntry idle;
  idle.capacity = 100;
  idle.free_space = 90;
  ProviderEntry busy = idle;
  busy.pending_allocs = 5;
  busy.store_rate = 2e8;
  EXPECT_LT(LoadAwareStrategy::score(idle), LoadAwareStrategy::score(busy));
}

}  // namespace
}  // namespace bs::blob
