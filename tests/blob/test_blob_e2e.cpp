// End-to-end tests of a full BlobSeer deployment on the simulated cluster:
// writes, reads, versioning, appends, replication, failover, concurrency.
#include <gtest/gtest.h>

#include "blob/deployment.hpp"
#include "test_util.hpp"

namespace bs::blob {
namespace {

DeploymentConfig small_config() {
  DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  return cfg;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return v;
}

TEST(BlobE2E, CreateWriteReadRoundTrip) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  BlobClient* client = dep.add_client();

  auto result = test::run_task(sim, [](BlobClient& c) -> sim::Task<Result<int>> {
    auto blob = co_await c.create(/*chunk_size=*/1 * units::MB);
    if (!blob.ok()) co_return blob.error();

    auto data = pattern_bytes(3 * units::MB + 123, 7);
    auto expected = data;
    auto w = co_await c.write(*blob, 0, Payload::from_bytes(std::move(data)));
    if (!w.ok()) co_return w.error();
    if (w.value().version != 1) co_return Error{Errc::internal, "version"};

    auto r = co_await c.read(*blob, 0, 3 * units::MB + 123);
    if (!r.ok()) co_return r.error();
    if (r.value().bytes != 3 * units::MB + 123) {
      co_return Error{Errc::internal, "byte count"};
    }
    auto assembled = r.value().assemble(0, 3 * units::MB + 123);
    if (!assembled.has_value()) co_return Error{Errc::internal, "assemble"};
    if (*assembled != expected) co_return Error{Errc::internal, "content"};
    co_return 0;
  }(*client));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
}

TEST(BlobE2E, SyntheticPayloadChecksumsVerify) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  BlobClient* client = dep.add_client();

  auto result = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<int>> {
        auto blob = co_await c.create(4 * units::MB);
        if (!blob.ok()) co_return blob.error();
        Payload p = Payload::synthetic(10 * units::MB, /*content_id=*/99);
        auto w = co_await c.write(*blob, 0, p);
        if (!w.ok()) co_return w.error();
        auto r = co_await c.read(*blob, 0, 10 * units::MB);
        if (!r.ok()) co_return r.error();
        // Chunk checksums must match what the writer derived.
        for (const auto& ch : r.value().chunks) {
          if (ch.hole) co_return Error{Errc::internal, "hole"};
          const std::uint64_t expect =
              hash_combine(p.checksum, ch.chunk_index);
          if (ch.checksum != expect) {
            co_return Error{Errc::internal, "checksum"};
          }
        }
        co_return 0;
      }(*client));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
}

TEST(BlobE2E, AppendsProduceVersionsAndGrowSize) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  BlobClient* client = dep.add_client();

  auto result = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<int>> {
        auto blob = co_await c.create(1 * units::MB);
        if (!blob.ok()) co_return blob.error();
        for (int i = 1; i <= 5; ++i) {
          auto w = co_await c.append(
              *blob, Payload::synthetic(2 * units::MB, i));
          if (!w.ok()) co_return w.error();
          if (w.value().version != static_cast<Version>(i)) {
            co_return Error{Errc::internal, "version sequence"};
          }
        }
        auto d = co_await c.stat(*blob);
        if (!d.ok()) co_return d.error();
        if (d.value().latest.size != 10 * units::MB) {
          co_return Error{Errc::internal, "size"};
        }
        auto vs = co_await c.versions(*blob);
        if (!vs.ok()) co_return vs.error();
        if (vs.value().size() != 5) co_return Error{Errc::internal, "#vers"};
        co_return 0;
      }(*client));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
}

TEST(BlobE2E, OldVersionsRemainReadable) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  BlobClient* client = dep.add_client();

  auto result = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<int>> {
        auto blob = co_await c.create(1 * units::MB);
        if (!blob.ok()) co_return blob.error();
        // v1: content A everywhere; v2: content B over the first chunk.
        auto a = pattern_bytes(2 * units::MB, 1);
        auto w1 = co_await c.write(*blob, 0, Payload::from_bytes(a));
        if (!w1.ok()) co_return w1.error();
        auto b = pattern_bytes(1 * units::MB, 2);
        auto w2 = co_await c.write(*blob, 0, Payload::from_bytes(b));
        if (!w2.ok()) co_return w2.error();

        // Version 1 still shows A in chunk 0.
        auto r1 = co_await c.read(*blob, 0, 1 * units::MB, 1);
        if (!r1.ok()) co_return r1.error();
        auto d1 = r1.value().assemble(0, 1 * units::MB);
        if (!d1 || !std::equal(d1->begin(), d1->end(), a.begin())) {
          co_return Error{Errc::internal, "v1 content changed"};
        }
        // Latest shows B in chunk 0, A in chunk 1.
        auto r2 = co_await c.read(*blob, 0, 2 * units::MB);
        if (!r2.ok()) co_return r2.error();
        auto d2 = r2.value().assemble(0, 2 * units::MB);
        if (!d2) co_return Error{Errc::internal, "assemble v2"};
        if (!std::equal(b.begin(), b.end(), d2->begin())) {
          co_return Error{Errc::internal, "v2 head"};
        }
        if (!std::equal(a.begin() + units::MB, a.end(),
                        d2->begin() + units::MB)) {
          co_return Error{Errc::internal, "v2 tail"};
        }
        co_return 0;
      }(*client));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
}

TEST(BlobE2E, SparseWriteLeavesHoles) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  BlobClient* client = dep.add_client();

  auto result = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<int>> {
        auto blob = co_await c.create(1 * units::MB);
        if (!blob.ok()) co_return blob.error();
        // Write 1 MB at offset 4 MB; chunks 0-3 are holes.
        auto w = co_await c.write(*blob, 4 * units::MB,
                                  Payload::synthetic(1 * units::MB, 5));
        if (!w.ok()) co_return w.error();
        auto r = co_await c.read(*blob, 0, 5 * units::MB);
        if (!r.ok()) co_return r.error();
        std::size_t holes = 0, data = 0;
        for (const auto& ch : r.value().chunks) {
          (ch.hole ? holes : data)++;
        }
        if (holes != 4 || data != 1) {
          co_return Error{Errc::internal, "hole layout"};
        }
        if (r.value().bytes != 1 * units::MB) {
          co_return Error{Errc::internal, "bytes"};
        }
        co_return 0;
      }(*client));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
}

TEST(BlobE2E, UnalignedWriteRejected) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  BlobClient* client = dep.add_client();
  auto result = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<int>> {
        auto blob = co_await c.create(1 * units::MB);
        if (!blob.ok()) co_return blob.error();
        auto w = co_await c.write(*blob, 12345,
                                  Payload::synthetic(1 * units::MB, 1));
        co_return w.ok() ? Result<int>{0} : Result<int>{w.error()};
      }(*client));
  EXPECT_EQ(result.code(), Errc::invalid_argument);
}

TEST(BlobE2E, ReadOfUnknownBlobAndVersionFails) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  BlobClient* client = dep.add_client();
  auto r1 = test::run_task(
      sim, client->read(BlobId{404}, 0, 100));
  EXPECT_EQ(r1.code(), Errc::not_found);

  auto r2 = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<ReadResult>> {
        auto blob = co_await c.create(1 * units::MB);
        if (!blob.ok()) co_return blob.error();
        (void)co_await c.write(*blob, 0, Payload::synthetic(units::MB, 1));
        co_return co_await c.read(*blob, 0, 100, /*version=*/9);
      }(*client));
  EXPECT_EQ(r2.code(), Errc::not_found);
}

TEST(BlobE2E, ReplicationSurvivesProviderLoss) {
  sim::Simulation sim;
  auto cfg = small_config();
  Deployment dep(sim, cfg);
  BlobClient* client = dep.add_client();

  auto setup = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<BlobId>> {
        auto blob = co_await c.create(1 * units::MB, /*replication=*/3);
        if (!blob.ok()) co_return blob.error();
        auto w = co_await c.write(*blob, 0,
                                  Payload::synthetic(4 * units::MB, 11));
        if (!w.ok()) co_return w.error();
        co_return *blob;
      }(*client));
  ASSERT_TRUE(setup.ok()) << setup.error().to_string();

  // Kill two of the six providers; with replication 3 every chunk still
  // has at least one live replica.
  dep.cluster().retire_node(dep.providers()[0]->id());
  dep.cluster().retire_node(dep.providers()[1]->id());

  auto read = test::run_task(
      sim, client->read(setup.value(), 0, 4 * units::MB));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(read.value().bytes, 4 * units::MB);
}

TEST(BlobE2E, WriteFailsWhenPoolExhausted) {
  sim::Simulation sim;
  auto cfg = small_config();
  cfg.provider_capacity = 2 * units::MB;  // tiny providers
  Deployment dep(sim, cfg);
  BlobClient* client = dep.add_client();

  auto result = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<int>> {
        auto blob = co_await c.create(1 * units::MB);
        if (!blob.ok()) co_return blob.error();
        // 6 providers x 2 MB = 12 MB total; a 30 MB write cannot fit.
        auto w = co_await c.write(*blob, 0,
                                  Payload::synthetic(30 * units::MB, 1));
        if (w.ok()) co_return Error{Errc::internal, "should have failed"};
        // The failed write must not have published a version.
        auto d = co_await c.stat(*blob);
        if (!d.ok()) co_return d.error();
        if (d.value().latest.version != 0) {
          co_return Error{Errc::internal, "phantom version"};
        }
        co_return 0;
      }(*client));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
}

TEST(BlobE2E, ConcurrentAppendersSerializeCleanly) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  const int n_clients = 6;
  std::vector<BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());

  auto blob = test::run_task(sim, clients[0]->create(1 * units::MB));
  ASSERT_TRUE(blob.ok());

  sim::WaitGroup wg(sim);
  std::vector<Result<WriteReceipt>> receipts(
      n_clients, Result<WriteReceipt>{Errc::internal});
  for (int i = 0; i < n_clients; ++i) {
    wg.launch([](BlobClient& c, BlobId b, int idx,
                 Result<WriteReceipt>& out) -> sim::Task<void> {
      out = co_await c.append(b, Payload::synthetic(2 * units::MB, idx));
    }(*clients[static_cast<std::size_t>(i)], blob.value(), i, receipts[i]));
  }
  test::run_task_void(sim, [](sim::WaitGroup& w) -> sim::Task<void> {
    co_await w.wait();
  }(wg));

  std::set<Version> versions;
  std::set<std::uint64_t> offsets;
  for (const auto& r : receipts) {
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    versions.insert(r.value().version);
    offsets.insert(r.value().offset);
  }
  // All versions distinct 1..6; all offsets distinct and chunk-aligned.
  EXPECT_EQ(versions.size(), static_cast<std::size_t>(n_clients));
  EXPECT_EQ(*versions.begin(), 1u);
  EXPECT_EQ(*versions.rbegin(), static_cast<Version>(n_clients));
  EXPECT_EQ(offsets.size(), static_cast<std::size_t>(n_clients));

  auto d = test::run_task(sim, clients[0]->stat(blob.value()));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().latest.size,
            static_cast<std::uint64_t>(n_clients) * 2 * units::MB);

  // Every version snapshot is fully readable.
  for (Version v = 1; v <= static_cast<Version>(n_clients); ++v) {
    auto r = test::run_task(
        sim, clients[1]->read(blob.value(), 0, 64 * units::MB, v));
    ASSERT_TRUE(r.ok()) << "version " << v << ": "
                        << r.error().to_string();
  }
}

TEST(BlobE2E, WriteThroughputBoundedByNic) {
  // A single writer on a 1 Gb/s NIC cannot exceed 125 MB/s and should get
  // close to it with parallel chunk puts to distinct providers.
  sim::Simulation sim;
  auto cfg = small_config();
  cfg.data_providers = 8;
  Deployment dep(sim, cfg);
  BlobClient* client = dep.add_client();

  auto result = test::run_task(
      sim, [](BlobClient& c) -> sim::Task<Result<WriteReceipt>> {
        auto blob = co_await c.create(8 * units::MB);
        if (!blob.ok()) co_return blob.error();
        co_return co_await c.write(
            *blob, 0, Payload::synthetic(256 * units::MB, 1));
      }(*client));
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const double mbps = result.value().throughput_bps() / 1e6;
  EXPECT_LT(mbps, 126.0);
  EXPECT_GT(mbps, 80.0);
}

TEST(BlobE2E, ProviderRegistryReflectsHeartbeats) {
  sim::Simulation sim;
  Deployment dep(sim, small_config());
  sim.run_until(simtime::seconds(10));
  EXPECT_EQ(dep.provider_manager().provider_count(), 6u);

  // Take one provider down; the reaper expires it after ~3 intervals.
  dep.cluster().retire_node(dep.providers()[3]->id());
  sim.run_until(simtime::seconds(30));
  EXPECT_EQ(dep.provider_manager().provider_count(), 5u);
}

}  // namespace
}  // namespace bs::blob
