// Failure-injection property tests: random provider crashes while many
// clients write concurrently. Invariants checked afterwards:
//   * every write that reported success is fully readable (no torn data);
//   * every write that reported failure left no published version;
//   * version numbers of successful writes are unique;
//   * the blob's final size equals the furthest successful write.
// This exercises put retries with re-allocation, write aborts, and the
// abort-repair (epoch/rebuild) protocol under fire.
#include <gtest/gtest.h>

#include <map>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "test_util.hpp"

namespace bs::blob {
namespace {

struct WriteOutcome {
  ClientId client{};
  std::uint64_t content{0};
  Result<WriteReceipt> result{Errc::internal};
};

class FailureInjectionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FailureInjectionTest, ConcurrentWritesSurviveProviderCrashes) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::Simulation sim;

  DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 10;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 2ull * units::GB;
  Deployment dep(sim, cfg);

  const int n_clients = 6;
  std::vector<BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());

  auto blob = test::run_task(
      sim, clients[0]->create(4 * units::MB, /*replication=*/2));
  ASSERT_TRUE(blob.ok());

  // Each client performs 4 appends at random times in [0, 30s).
  std::vector<WriteOutcome> outcomes;
  outcomes.reserve(n_clients * 4);
  for (int c = 0; c < n_clients; ++c) {
    for (int k = 0; k < 4; ++k) {
      outcomes.push_back(WriteOutcome{clients[c]->id(),
                                      rng.next_u64(), Errc::internal});
    }
  }
  std::size_t slot = 0;
  for (int c = 0; c < n_clients; ++c) {
    for (int k = 0; k < 4; ++k, ++slot) {
      const SimTime at = simtime::millis(rng.uniform(0, 30000));
      const std::uint64_t bytes =
          (1 + rng.next_below(4)) * 4 * units::MB;
      sim.spawn([](sim::Simulation& s, BlobClient& cl, BlobId b,
                   SimTime when, std::uint64_t n,
                   WriteOutcome& out) -> sim::Task<void> {
        co_await s.delay_until(when);
        out.result =
            co_await cl.append(b, Payload::synthetic(n, out.content));
      }(sim, *clients[c], blob.value(), at, bytes, outcomes[slot]));
    }
  }

  // Crash one random provider mid-run (replication 2 tolerates any single
  // failure, so every committed write must stay readable) and add a fresh
  // provider at another random time (placement churn).
  const std::size_t victim = rng.next_below(cfg.data_providers);
  sim.schedule_at(simtime::millis(rng.uniform(2000, 25000)),
                  [&dep, victim] {
                    dep.cluster().retire_node(
                        dep.providers()[victim]->id());
                  });
  sim.schedule_at(simtime::millis(rng.uniform(2000, 25000)),
                  [&dep] { dep.add_provider(); });

  sim.run_until(simtime::minutes(6));

  // Classify outcomes.
  std::map<Version, const WriteOutcome*> by_version;
  std::uint64_t max_end = 0;
  std::size_t successes = 0;
  for (const auto& o : outcomes) {
    if (!o.result.ok()) continue;
    ++successes;
    const auto& r = o.result.value();
    // Unique version per successful write.
    EXPECT_EQ(by_version.count(r.version), 0u)
        << "duplicate version " << r.version;
    by_version[r.version] = &o;
    max_end = std::max(max_end, r.offset + r.size);
  }
  // With 10 providers, r=2 and only 3 crashes, most writes must succeed.
  EXPECT_GE(successes, outcomes.size() / 2) << "seed " << seed;

  // Final size matches the furthest successful write.
  auto desc = test::run_task(sim, clients[0]->stat(blob.value()));
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc.value().latest.size, max_end) << "seed " << seed;

  // Every successful write's payload is intact in its own snapshot.
  for (const auto& [version, o] : by_version) {
    const auto& r = o->result.value();
    auto read = test::run_task(
        sim, clients[1]->read(blob.value(), r.offset, r.size, version));
    ASSERT_TRUE(read.ok()) << "seed " << seed << " version " << version
                           << ": " << read.error().to_string();
    EXPECT_EQ(read.value().bytes, r.size);
    const std::uint64_t base_checksum =
        Payload::synthetic(r.size, o->content).checksum;
    for (const auto& ch : read.value().chunks) {
      ASSERT_FALSE(ch.hole) << "seed " << seed << " torn write v"
                            << version;
      const std::uint64_t chunk_in_write =
          (ch.offset - r.offset) / desc.value().chunk_size;
      EXPECT_EQ(ch.checksum, hash_combine(base_checksum, chunk_in_write))
          << "seed " << seed << " corrupt chunk";
    }
  }

  // The latest snapshot reads fully (holes allowed where aborted writes
  // reserved space but later writers did not cover it).
  auto final_read = test::run_task(
      sim, clients[2]->read(blob.value(), 0, max_end));
  ASSERT_TRUE(final_read.ok()) << final_read.error().to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjectionTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

// --- fault-plane scenarios -------------------------------------------------

TEST(FaultPlaneScenarios, ClientCrashMidWriteIsSweptAndLaterWritersPublish) {
  // A writer's node fail-stops after version assignment but before commit.
  // Its self-abort fails too (the node is down), so only the version
  // manager's lease sweeper can unblock ordered publication for everyone
  // behind the orphaned version.
  sim::Simulation sim;
  DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.vm_options.write_lease = simtime::seconds(20);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  Deployment dep(sim, cfg);
  fault::FaultPlane plane(dep.cluster());

  BlobClient* doomed = dep.add_client();
  BlobClient* survivor = dep.add_client();
  auto blob = test::run_task(sim, survivor->create(4 * units::MB, 2));
  ASSERT_TRUE(blob.ok());

  Result<WriteReceipt> doomed_result{Errc::internal};
  sim.spawn([](BlobClient& cl, BlobId b,
               Result<WriteReceipt>& out) -> sim::Task<void> {
    out = co_await cl.append(b, Payload::synthetic(64 * units::MB, 1));
  }(*doomed, blob.value(), doomed_result));
  // 64 MB over a 1 Gb/s NIC takes ~0.5 s+: at 100 ms the StartWrite has
  // succeeded (pending version assigned) but the chunk puts are in flight.
  sim.schedule_at(simtime::millis(100),
                  [&] { plane.crash(doomed->node().id()); });

  Result<WriteReceipt> later_result{Errc::internal};
  sim.spawn([](sim::Simulation& s, BlobClient& cl, BlobId b,
               Result<WriteReceipt>& out) -> sim::Task<void> {
    co_await s.delay_until(simtime::seconds(10));
    out = co_await cl.append(b, Payload::synthetic(8 * units::MB, 2));
  }(sim, *survivor, blob.value(), later_result));

  sim.run_until(simtime::minutes(3));

  EXPECT_FALSE(doomed_result.ok());
  ASSERT_TRUE(later_result.ok()) << later_result.error().to_string();
  EXPECT_GE(dep.version_manager().leases_expired(), 1u);
  EXPECT_EQ(dep.version_manager().pending_writes(), 0u);
  // The survivor's snapshot is intact.
  auto read = test::run_task(
      sim, survivor->read(blob.value(), later_result.value().offset,
                          later_result.value().size,
                          later_result.value().version));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().bytes, later_result.value().size);
}

TEST(FaultPlaneScenarios, VersionManagerCrashMidPublishRecovers) {
  // The version manager fail-stops (keeping its store) while several
  // commits are racing. In-flight commits are lost and retried/failed, but
  // after the restart: no version is torn, new writes publish, and no
  // pending write is stuck forever.
  sim::Simulation sim;
  DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.vm_options.write_lease = simtime::seconds(15);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  Deployment dep(sim, cfg);
  fault::FaultPlane plane(dep.cluster());

  const int n_clients = 3;
  std::vector<BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());
  auto blob = test::run_task(sim, clients[0]->create(4 * units::MB, 2));
  ASSERT_TRUE(blob.ok());

  std::vector<Result<WriteReceipt>> results(9, Result<WriteReceipt>{
                                                   Errc::internal});
  Rng rng(99);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SimTime at = simtime::millis(rng.uniform(0, 8000));
    sim.spawn([](sim::Simulation& s, BlobClient& cl, BlobId b, SimTime when,
                 std::uint64_t content,
                 Result<WriteReceipt>& out) -> sim::Task<void> {
      co_await s.delay_until(when);
      out = co_await cl.append(b, Payload::synthetic(8 * units::MB, content));
    }(sim, *clients[i % n_clients], blob.value(), at, i + 1, results[i]));
  }

  plane.schedule(fault::FaultEvent{.at = simtime::seconds(2),
                                   .kind = fault::FaultEvent::Kind::crash,
                                   .node = dep.version_manager_node().id()});
  plane.schedule(fault::FaultEvent{.at = simtime::seconds(8),
                                   .kind = fault::FaultEvent::Kind::restart,
                                   .node = dep.version_manager_node().id()});

  sim.run_until(simtime::minutes(4));

  // Every write that reported success is readable in its own snapshot.
  for (const auto& r : results) {
    if (!r.ok()) continue;
    auto read = test::run_task(
        sim, clients[0]->read(blob.value(), r.value().offset,
                              r.value().size, r.value().version));
    ASSERT_TRUE(read.ok()) << read.error().to_string();
    EXPECT_EQ(read.value().bytes, r.value().size);
  }
  // The system is live again: a fresh write publishes.
  auto fresh = test::run_task(
      sim, clients[1]->append(blob.value(),
                              Payload::synthetic(8 * units::MB, 42)));
  ASSERT_TRUE(fresh.ok()) << fresh.error().to_string();
  EXPECT_EQ(dep.version_manager().pending_writes(), 0u);
}

TEST(FaultPlaneScenarios, ProviderRestartWithIntactStoreServesItsChunks) {
  // A provider crashes WITHOUT losing its disk. While it is down, its
  // replication-1 chunks are unreadable; after the restart it re-registers
  // carrying the surviving store and serves them again.
  sim::Simulation sim;
  DeploymentConfig cfg;
  cfg.sites = 1;
  cfg.data_providers = 3;
  cfg.metadata_providers = 1;
  Deployment dep(sim, cfg);
  fault::FaultPlane plane(dep.cluster());

  BlobClient* client = dep.add_client();
  auto blob = test::run_task(sim, client->create(4 * units::MB,
                                                 /*replication=*/1));
  ASSERT_TRUE(blob.ok());
  auto receipt = test::run_task(
      sim, client->append(blob.value(), Payload::synthetic(4 * units::MB, 7)));
  ASSERT_TRUE(receipt.ok());

  DataProvider* holder = nullptr;
  for (auto& p : dep.providers()) {
    if (p->chunk_count() > 0) holder = p.get();
  }
  ASSERT_NE(holder, nullptr);
  const std::uint64_t stored = holder->used();
  EXPECT_GT(stored, 0u);

  plane.crash(holder->id(), /*lose_storage=*/false);
  sim.run_until(sim.now() + simtime::seconds(5));
  auto down_read = test::run_task(
      sim, client->read(blob.value(), 0, receipt.value().size));
  EXPECT_FALSE(down_read.ok()) << "replication-1 chunk readable while its "
                                  "only holder is down";

  plane.restart(holder->id());
  // Give the heartbeat loop time to re-register with the intact store.
  sim.run_until(sim.now() + simtime::seconds(10));
  EXPECT_EQ(holder->used(), stored);
  auto up_read = test::run_task(
      sim, client->read(blob.value(), 0, receipt.value().size));
  ASSERT_TRUE(up_read.ok()) << up_read.error().to_string();
  EXPECT_EQ(up_read.value().bytes, receipt.value().size);
  // The registry reflects the surviving store (not a fresh register).
  bool found = false;
  for (const auto& e : dep.provider_manager().snapshot()) {
    if (e.node != holder->id()) continue;
    found = true;
    EXPECT_EQ(e.free_space, holder->free_space());
    EXPECT_EQ(e.chunks, holder->chunk_count());
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace bs::blob
