// Failure-injection property tests: random provider crashes while many
// clients write concurrently. Invariants checked afterwards:
//   * every write that reported success is fully readable (no torn data);
//   * every write that reported failure left no published version;
//   * version numbers of successful writes are unique;
//   * the blob's final size equals the furthest successful write.
// This exercises put retries with re-allocation, write aborts, and the
// abort-repair (epoch/rebuild) protocol under fire.
#include <gtest/gtest.h>

#include <map>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "test_util.hpp"

namespace bs::blob {
namespace {

struct WriteOutcome {
  ClientId client{};
  std::uint64_t content{0};
  Result<WriteReceipt> result{Errc::internal};
};

class FailureInjectionTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FailureInjectionTest, ConcurrentWritesSurviveProviderCrashes) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  sim::Simulation sim;

  DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 10;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 2ull * units::GB;
  Deployment dep(sim, cfg);

  const int n_clients = 6;
  std::vector<BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());

  auto blob = test::run_task(
      sim, clients[0]->create(4 * units::MB, /*replication=*/2));
  ASSERT_TRUE(blob.ok());

  // Each client performs 4 appends at random times in [0, 30s).
  std::vector<WriteOutcome> outcomes;
  outcomes.reserve(n_clients * 4);
  for (int c = 0; c < n_clients; ++c) {
    for (int k = 0; k < 4; ++k) {
      outcomes.push_back(WriteOutcome{clients[c]->id(),
                                      rng.next_u64(), Errc::internal});
    }
  }
  std::size_t slot = 0;
  for (int c = 0; c < n_clients; ++c) {
    for (int k = 0; k < 4; ++k, ++slot) {
      const SimTime at = simtime::millis(rng.uniform(0, 30000));
      const std::uint64_t bytes =
          (1 + rng.next_below(4)) * 4 * units::MB;
      sim.spawn([](sim::Simulation& s, BlobClient& cl, BlobId b,
                   SimTime when, std::uint64_t n,
                   WriteOutcome& out) -> sim::Task<void> {
        co_await s.delay_until(when);
        out.result =
            co_await cl.append(b, Payload::synthetic(n, out.content));
      }(sim, *clients[c], blob.value(), at, bytes, outcomes[slot]));
    }
  }

  // Crash one random provider mid-run (replication 2 tolerates any single
  // failure, so every committed write must stay readable) and add a fresh
  // provider at another random time (placement churn).
  const std::size_t victim = rng.next_below(cfg.data_providers);
  sim.schedule_at(simtime::millis(rng.uniform(2000, 25000)),
                  [&dep, victim] {
                    dep.cluster().retire_node(
                        dep.providers()[victim]->id());
                  });
  sim.schedule_at(simtime::millis(rng.uniform(2000, 25000)),
                  [&dep] { dep.add_provider(); });

  sim.run_until(simtime::minutes(6));

  // Classify outcomes.
  std::map<Version, const WriteOutcome*> by_version;
  std::uint64_t max_end = 0;
  std::size_t successes = 0;
  for (const auto& o : outcomes) {
    if (!o.result.ok()) continue;
    ++successes;
    const auto& r = o.result.value();
    // Unique version per successful write.
    EXPECT_EQ(by_version.count(r.version), 0u)
        << "duplicate version " << r.version;
    by_version[r.version] = &o;
    max_end = std::max(max_end, r.offset + r.size);
  }
  // With 10 providers, r=2 and only 3 crashes, most writes must succeed.
  EXPECT_GE(successes, outcomes.size() / 2) << "seed " << seed;

  // Final size matches the furthest successful write.
  auto desc = test::run_task(sim, clients[0]->stat(blob.value()));
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc.value().latest.size, max_end) << "seed " << seed;

  // Every successful write's payload is intact in its own snapshot.
  for (const auto& [version, o] : by_version) {
    const auto& r = o->result.value();
    auto read = test::run_task(
        sim, clients[1]->read(blob.value(), r.offset, r.size, version));
    ASSERT_TRUE(read.ok()) << "seed " << seed << " version " << version
                           << ": " << read.error().to_string();
    EXPECT_EQ(read.value().bytes, r.size);
    const std::uint64_t base_checksum =
        Payload::synthetic(r.size, o->content).checksum;
    for (const auto& ch : read.value().chunks) {
      ASSERT_FALSE(ch.hole) << "seed " << seed << " torn write v"
                            << version;
      const std::uint64_t chunk_in_write =
          (ch.offset - r.offset) / desc.value().chunk_size;
      EXPECT_EQ(ch.checksum, hash_combine(base_checksum, chunk_in_write))
          << "seed " << seed << " corrupt chunk";
    }
  }

  // The latest snapshot reads fully (holes allowed where aborted writes
  // reserved space but later writers did not cover it).
  auto final_read = test::run_task(
      sim, clients[2]->read(blob.value(), 0, max_end));
  ASSERT_TRUE(final_read.ok()) << final_read.error().to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjectionTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

}  // namespace
}  // namespace bs::blob
