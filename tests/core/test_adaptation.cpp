// Autonomic core: MAPE-K controller, elasticity decisions, replication
// repair, and removal strategies against live deployments.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/elasticity.hpp"
#include "core/removal.hpp"
#include "core/replication.hpp"
#include "mon/layer.hpp"
#include "test_util.hpp"
#include "workload/clients.hpp"

namespace bs::core {
namespace {

/// A full self-adaptive stack on a small deployment.
struct Stack {
  explicit Stack(sim::Simulation& sim, std::size_t providers = 4,
                 std::uint64_t capacity = 1 * units::GB)
      : sim_(sim) {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = providers;
    cfg.metadata_providers = 2;
    cfg.provider_capacity = capacity;
    dep = std::make_unique<blob::Deployment>(sim, cfg);

    rpc::Node* intro_node = dep->cluster().add_node(0);
    intro = std::make_unique<intro::IntrospectionService>(*intro_node);
    intro->start();

    mon::MonitoringConfig mcfg;
    mcfg.services = 1;
    mcfg.storage_servers = 1;
    mcfg.sinks = {intro_node->id()};
    mon = std::make_unique<mon::MonitoringLayer>(*dep, mcfg);
    mon->start();

    controller = std::make_unique<AutonomicController>(*dep, *intro);
  }

  sim::Simulation& sim_;
  std::unique_ptr<blob::Deployment> dep;
  std::unique_ptr<intro::IntrospectionService> intro;
  std::unique_ptr<mon::MonitoringLayer> mon;
  std::unique_ptr<AutonomicController> controller;
};

TEST(Elasticity, DesiredProvidersFollowsSpaceAndLoad) {
  ElasticityOptions opts;
  opts.min_providers = 2;
  opts.max_providers = 50;
  ElasticityModule mod(opts);

  intro::SystemSnapshot snap;
  for (int i = 0; i < 4; ++i) {
    intro::SystemSnapshot::ProviderInfo p;
    p.capacity = 1e9;
    p.used = 0.9e9;  // 90% full
    snap.providers.push_back(p);
    snap.total_capacity += p.capacity;
    snap.total_used += p.used;
  }
  // Space-driven: 3.6 GB used at 47.5% target over 1 GB providers -> ~8.
  EXPECT_GE(mod.desired_providers(snap), 7u);
  EXPECT_LE(mod.desired_providers(snap), 9u);

  // Load-driven: 600 MB/s over 60 MB/s budget -> 10 providers.
  snap.total_used = 0;
  for (auto& p : snap.providers) p.used = 0;
  snap.aggregate_write_rate = 600e6;
  EXPECT_EQ(mod.desired_providers(snap), 10u);
}

TEST(Elasticity, GrowsPoolUnderStoragePressure) {
  sim::Simulation sim;
  Stack stack(sim, /*providers=*/3, /*capacity=*/200 * units::MB);
  ElasticityOptions eopts;
  eopts.min_providers = 3;
  eopts.signals_required = 2;
  eopts.cooldown = simtime::seconds(5);
  stack.controller->add_module(std::make_unique<ElasticityModule>(eopts));
  stack.controller->start();

  // Fill ~80% of the initial 600 MB pool.
  blob::BlobClient* client = stack.dep->add_client();
  auto blob = test::run_task(sim, client->create(16 * units::MB));
  ASSERT_TRUE(blob.ok());
  (void)test::run_task(
      sim, client->write(*blob, 0,
                         blob::Payload::synthetic(480 * units::MB, 1)));

  const std::size_t before = stack.dep->providers().size();
  sim.run_until(sim.now() + simtime::seconds(60));
  EXPECT_GT(stack.dep->providers().size(), before);
  // New providers registered with the provider manager via heartbeats.
  EXPECT_EQ(stack.dep->provider_manager().provider_count(),
            stack.dep->providers().size());
}

TEST(Replication, DesiredReplicationScalesWithReadRate) {
  ReplicationOptions opts;
  opts.hot_read_rate = 40e6;
  opts.max_replication = 4;
  ReplicationModule mod(opts);
  EXPECT_EQ(mod.desired_replication(1, 0), 1u);
  EXPECT_EQ(mod.desired_replication(1, 45e6), 2u);
  EXPECT_EQ(mod.desired_replication(1, 90e6), 3u);
  EXPECT_EQ(mod.desired_replication(1, 1e9), 4u);  // capped
  EXPECT_EQ(mod.desired_replication(3, 45e6), 4u);
}

TEST(Replication, RepairsChunksAfterProviderLoss) {
  sim::Simulation sim;
  Stack stack(sim, /*providers=*/6);
  stack.controller->add_module(std::make_unique<ReplicationModule>());
  stack.controller->start();

  blob::BlobClient* client = stack.dep->add_client();
  auto blob = test::run_task(
      sim, client->create(4 * units::MB, /*replication=*/2));
  ASSERT_TRUE(blob.ok());
  auto w = test::run_task(
      sim, client->write(*blob, 0,
                         blob::Payload::synthetic(32 * units::MB, 1)));
  ASSERT_TRUE(w.ok());

  // Kill one provider; every chunk replica on it is lost.
  const NodeId victim = stack.dep->providers()[0]->id();
  stack.dep->cluster().retire_node(victim);

  sim.run_until(sim.now() + simtime::seconds(90));

  // All chunks must be back at full replication on live providers.
  blob::RemoteMetadataStore store(
      *stack.controller->context().node,
      stack.dep->endpoints().metadata_providers, ClientId{0},
      simtime::seconds(30));
  auto d = test::run_task(sim, client->stat(*blob));
  ASSERT_TRUE(d.ok());
  auto leaves = test::run_task(
      sim, blob::meta_ops::collect(sim, store, *blob,
                                   d.value().latest.version,
                                   d.value().latest.root_chunks, 0,
                                   d.value().latest.root_chunks));
  ASSERT_TRUE(leaves.ok());
  for (const auto& leaf : leaves.value()) {
    if (leaf.hole) continue;
    std::size_t alive = 0;
    for (NodeId r : leaf.chunk.replicas) {
      EXPECT_NE(r, victim);
      rpc::Node* n = stack.dep->cluster().node(r);
      if (n != nullptr && n->up()) ++alive;
    }
    EXPECT_GE(alive, 2u);
  }
  // And the data is readable.
  auto read = test::run_task(sim, client->read(*blob, 0, 32 * units::MB));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(read.value().bytes, 32 * units::MB);
}

TEST(Replication, ShrinksWhenDemandFades) {
  sim::Simulation sim;
  Stack stack(sim, /*providers=*/8);
  core::ReplicationOptions ropts;
  ropts.hot_read_rate = 10e6;
  ropts.max_replication = 3;
  stack.controller->add_module(
      std::make_unique<core::ReplicationModule>(ropts));
  stack.controller->start();

  blob::BlobClient* client = stack.dep->add_client();
  stack.mon->attach_client(*client);
  auto blob = test::run_task(sim, client->create(4 * units::MB, 1));
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(test::run_task(
                  sim, client->write(*blob, 0,
                                     blob::Payload::synthetic(
                                         16 * units::MB, 1)))
                  .ok());

  auto replica_counts = [&](std::size_t& min_r, std::size_t& max_r) {
    blob::RemoteMetadataStore store(
        *stack.controller->context().node,
        stack.dep->endpoints().metadata_providers, ClientId{0},
        simtime::seconds(30));
    auto d = test::run_task(sim, client->stat(*blob));
    ASSERT_TRUE(d.ok());
    auto leaves = test::run_task(
        sim, blob::meta_ops::collect(sim, store, *blob,
                                     d.value().latest.version,
                                     d.value().latest.root_chunks, 0,
                                     d.value().latest.root_chunks));
    ASSERT_TRUE(leaves.ok());
    min_r = 99;
    max_r = 0;
    for (const auto& leaf : leaves.value()) {
      if (leaf.hole) continue;
      min_r = std::min(min_r, leaf.chunk.replicas.size());
      max_r = std::max(max_r, leaf.chunk.replicas.size());
    }
  };

  // Phase 1: heavy reads -> the module raises replication to the cap.
  blob::BlobClient* reader = stack.dep->add_client();
  workload::ClientRunStats rstats;
  workload::ReaderOptions r;
  r.loop_forever = true;
  r.op_bytes = 16 * units::MB;
  r.deadline = simtime::seconds(120);
  sim.spawn(workload::Reader::run(*reader, *blob, r, &rstats));
  // Sample while the heat is still on.
  sim.run_until(simtime::seconds(60));

  std::size_t min_r = 0, max_r = 0;
  replica_counts(min_r, max_r);
  EXPECT_EQ(min_r, 3u) << "hot blob should be fully replicated";

  // Phase 2: demand gone; the degree falls back to the creation floor.
  sim.run_until(simtime::seconds(260));
  replica_counts(min_r, max_r);
  EXPECT_EQ(max_r, 1u) << "cold blob should shrink back to base";
  // Data still intact.
  auto read = test::run_task(sim, client->read(*blob, 0, 16 * units::MB));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().bytes, 16 * units::MB);
  // Storage reclaimed: 4 chunks x 1 replica.
  std::uint64_t used = 0;
  for (auto& p : stack.dep->providers()) used += p->used();
  EXPECT_EQ(used, 16 * units::MB);
}

TEST(Removal, TtlExpiryDeletesTemporaryBlobs) {
  sim::Simulation sim;
  Stack stack(sim);
  stack.controller->add_module(std::make_unique<RemovalModule>());
  stack.controller->start();

  blob::BlobClient* client = stack.dep->add_client();
  auto temp = test::run_task(
      sim, client->create(1 * units::MB, 1, /*ttl=*/simtime::seconds(30)));
  auto durable = test::run_task(sim, client->create(1 * units::MB));
  ASSERT_TRUE(temp.ok() && durable.ok());
  (void)test::run_task(
      sim,
      client->write(*temp, 0, blob::Payload::synthetic(8 * units::MB, 1)));
  (void)test::run_task(
      sim, client->write(*durable, 0,
                         blob::Payload::synthetic(8 * units::MB, 2)));

  std::uint64_t used_before = 0;
  for (auto& p : stack.dep->providers()) used_before += p->used();
  ASSERT_GE(used_before, 16 * units::MB);

  sim.run_until(sim.now() + simtime::seconds(60));

  // Temporary blob is gone, durable one still there.
  auto gone = test::run_task(sim, client->stat(*temp));
  EXPECT_EQ(gone.code(), Errc::not_found);
  auto still = test::run_task(sim, client->stat(*durable));
  EXPECT_TRUE(still.ok());
  // Chunks reclaimed from providers.
  std::uint64_t used_after = 0;
  for (auto& p : stack.dep->providers()) used_after += p->used();
  EXPECT_LT(used_after, used_before);
  EXPECT_GE(used_after, 8 * units::MB);
}

TEST(Removal, VersionTrimmingFreesOverwrittenChunks) {
  sim::Simulation sim;
  Stack stack(sim);
  RemovalOptions ropts;
  ropts.keep_versions = 2;
  stack.controller->add_module(std::make_unique<RemovalModule>(ropts));
  stack.controller->start();

  blob::BlobClient* client = stack.dep->add_client();
  auto blob = test::run_task(sim, client->create(1 * units::MB));
  ASSERT_TRUE(blob.ok());
  // Overwrite the same 4 MB range six times: only the last two versions'
  // chunks should survive trimming.
  for (int i = 0; i < 6; ++i) {
    (void)test::run_task(
        sim, client->write(*blob, 0,
                           blob::Payload::synthetic(4 * units::MB, i)));
  }
  std::uint64_t used_before = 0;
  for (auto& p : stack.dep->providers()) used_before += p->used();
  ASSERT_GE(used_before, 24 * units::MB);

  sim.run_until(sim.now() + simtime::seconds(30));

  std::uint64_t used_after = 0;
  for (auto& p : stack.dep->providers()) used_after += p->used();
  EXPECT_LE(used_after, 8 * units::MB + units::MB);

  // Latest version still fully readable; trimmed version is not.
  auto vs = test::run_task(sim, client->versions(*blob));
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ(vs.value().size(), 2u);
  auto latest = test::run_task(sim, client->read(*blob, 0, 4 * units::MB));
  EXPECT_TRUE(latest.ok());
  auto old = test::run_task(
      sim, client->read(*blob, 0, 4 * units::MB, /*version=*/1));
  EXPECT_EQ(old.code(), Errc::not_found);
}

TEST(Controller, ExecutorDrainMigratesChunks) {
  sim::Simulation sim;
  Stack stack(sim, /*providers=*/5);
  blob::BlobClient* client = stack.dep->add_client();
  auto blob = test::run_task(sim, client->create(2 * units::MB));
  ASSERT_TRUE(blob.ok());
  (void)test::run_task(
      sim, client->write(*blob, 0,
                         blob::Payload::synthetic(20 * units::MB, 1)));

  // Find a provider holding chunks and drain it.
  blob::DataProvider* victim = nullptr;
  for (auto& p : stack.dep->providers()) {
    if (p->chunk_count() > 0) {
      victim = p.get();
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  AdaptAction drain;
  drain.type = AdaptAction::Type::drain_provider;
  drain.provider = victim->id();
  auto r = test::run_task(sim, stack.controller->executor().execute(drain));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(victim->chunk_count(), 0u);
  EXPECT_FALSE(victim->node().up());

  // Data remains fully readable afterwards.
  auto read = test::run_task(sim, client->read(*blob, 0, 20 * units::MB));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(read.value().bytes, 20 * units::MB);
}

TEST(Controller, KnowledgeHistoryBounded) {
  KnowledgeBase kb(4);
  for (int i = 0; i < 10; ++i) {
    intro::SystemSnapshot s;
    s.time = simtime::seconds(i);
    s.total_used = i;
    kb.update(s);
  }
  EXPECT_EQ(kb.history().size(), 4u);
  EXPECT_DOUBLE_EQ(kb.current().total_used, 9);
  EXPECT_DOUBLE_EQ(
      kb.trend(2, [](const intro::SystemSnapshot& s) {
        return s.total_used;
      }),
      8.5);
}

}  // namespace
}  // namespace bs::core
