// Metadata GC: trimming removes the segment-tree nodes no kept snapshot
// can reach, while every kept snapshot stays fully readable.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "intro/introspection.hpp"
#include "test_util.hpp"

namespace bs::core {
namespace {

std::size_t total_meta_nodes(blob::Deployment& dep) {
  std::size_t n = 0;
  for (auto& mp : dep.metadata_providers()) n += mp->node_count();
  return n;
}

TEST(MetadataGc, TrimRemovesUnreachableNodesKeepsSnapshotsReadable) {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 2;
  cfg.data_providers = 4;
  cfg.metadata_providers = 2;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService intro(*intro_node);
  AutonomicController controller(dep, intro);

  blob::BlobClient* client = dep.add_client();
  auto blob = test::run_task(sim, client->create(1 * units::MB));
  ASSERT_TRUE(blob.ok());

  // Ten full overwrites of the same 4 MB region.
  for (int i = 0; i < 10; ++i) {
    auto w = test::run_task(
        sim, client->write(*blob, 0,
                           blob::Payload::synthetic(4 * units::MB, i)));
    ASSERT_TRUE(w.ok());
  }
  const std::size_t nodes_before = total_meta_nodes(dep);
  // 10 versions x (4 leaves + 3 inner) = 70 nodes.
  EXPECT_EQ(nodes_before, 70u);

  AdaptAction trim;
  trim.type = AdaptAction::Type::trim_blob;
  trim.blob = *blob;
  trim.version = 9;  // keep v9, v10
  auto r = test::run_task(sim, controller.executor().execute(trim));
  ASSERT_TRUE(r.ok()) << r.error().to_string();

  // Versions 1..8 fully overwritten by v9 -> all their nodes unreachable.
  // Remaining: v9 + v10 = 14 nodes.
  EXPECT_EQ(total_meta_nodes(dep), 14u);

  // Chunks of trimmed versions were reclaimed too: 2 versions x 4 MB.
  std::uint64_t used = 0;
  for (auto& p : dep.providers()) used += p->used();
  EXPECT_EQ(used, 8 * units::MB);

  // Both kept snapshots read back perfectly.
  for (blob::Version v : {9u, 10u}) {
    auto read = test::run_task(
        sim, client->read(*blob, 0, 4 * units::MB, v));
    ASSERT_TRUE(read.ok()) << "v" << v << ": "
                           << read.error().to_string();
    EXPECT_EQ(read.value().bytes, 4 * units::MB);
  }
  // Trimmed snapshot is gone.
  auto gone = test::run_task(sim, client->read(*blob, 0, 100, 3));
  EXPECT_EQ(gone.code(), Errc::not_found);
}

TEST(MetadataGc, PartialOverwritesKeepSharedSubtrees) {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 1;
  cfg.data_providers = 3;
  cfg.metadata_providers = 1;
  blob::Deployment dep(sim, cfg);
  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService intro(*intro_node);
  AutonomicController controller(dep, intro);

  blob::BlobClient* client = dep.add_client();
  auto blob = test::run_task(sim, client->create(1 * units::MB));
  ASSERT_TRUE(blob.ok());

  // v1 writes 4 chunks; v2 overwrites only chunk 0. Trimming to v2 must
  // keep v1's chunks 1-3 (still visible at v2) and their leaves.
  ASSERT_TRUE(test::run_task(sim, client->write(
                                      *blob, 0,
                                      blob::Payload::synthetic(
                                          4 * units::MB, 1)))
                  .ok());
  ASSERT_TRUE(test::run_task(sim, client->write(
                                      *blob, 0,
                                      blob::Payload::synthetic(
                                          1 * units::MB, 2)))
                  .ok());

  AdaptAction trim;
  trim.type = AdaptAction::Type::trim_blob;
  trim.blob = *blob;
  trim.version = 2;
  ASSERT_TRUE(
      test::run_task(sim, controller.executor().execute(trim)).ok());

  // v2's snapshot reads all 4 MB: chunk 0 from v2, chunks 1-3 from v1.
  auto read = test::run_task(sim, client->read(*blob, 0, 4 * units::MB));
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(read.value().bytes, 4 * units::MB);
  std::size_t from_v1 = 0;
  for (const auto& ch : read.value().chunks) {
    ASSERT_FALSE(ch.hole);
    if (ch.chunk_index > 0) {
      ++from_v1;
    }
  }
  EXPECT_EQ(from_v1, 3u);

  // Storage: v1's chunk 0 freed (shadowed), the rest kept.
  std::uint64_t used = 0;
  for (auto& p : dep.providers()) used += p->used();
  EXPECT_EQ(used, 4 * units::MB);
}

}  // namespace
}  // namespace bs::core
