// Monitoring layer tests: filters, burst-cache storage server, and the full
// instrumentation -> service -> storage pipeline over a live deployment.
#include <gtest/gtest.h>

#include "mon/filters.hpp"
#include "mon/layer.hpp"
#include "test_util.hpp"

namespace bs::mon {
namespace {

MetricEvent client_event(MetricKind kind, std::uint64_t client,
                         double value) {
  MetricEvent ev;
  ev.kind = kind;
  ev.client = ClientId{client};
  ev.value = value;
  return ev;
}

TEST(ClientActivityFilter, AggregatesPerClientPerInterval) {
  ClientActivityFilter f;
  f.ingest(client_event(MetricKind::chunk_write, 1, 1000));
  f.ingest(client_event(MetricKind::chunk_write, 1, 2000));
  f.ingest(client_event(MetricKind::chunk_read, 1, 500));
  f.ingest(client_event(MetricKind::rejected_request, 2, 1));

  std::vector<Record> out;
  f.flush(simtime::seconds(1), out);

  auto find = [&](std::uint64_t id, Metric m) -> double {
    for (const auto& r : out) {
      if (r.key.domain == Domain::client && r.key.id == id &&
          r.key.metric == m) {
        return r.value;
      }
    }
    return -1;
  };
  EXPECT_DOUBLE_EQ(find(1, Metric::write_ops), 2);
  EXPECT_DOUBLE_EQ(find(1, Metric::write_bytes), 3000);
  EXPECT_DOUBLE_EQ(find(1, Metric::read_ops), 1);
  EXPECT_DOUBLE_EQ(find(2, Metric::rejected_ops), 1);

  // Interval state resets.
  out.clear();
  f.flush(simtime::seconds(2), out);
  EXPECT_TRUE(out.empty());
}

TEST(ClientActivityFilter, IgnoresAnonymousTraffic) {
  ClientActivityFilter f;
  MetricEvent ev;
  ev.kind = MetricKind::chunk_write;
  ev.value = 100;  // no client id
  f.ingest(ev);
  std::vector<Record> out;
  f.flush(0, out);
  EXPECT_TRUE(out.empty());
}

TEST(ProviderStorageFilter, GaugesPersistRatesReset) {
  ProviderStorageFilter f;
  MetricEvent gauge;
  gauge.kind = MetricKind::provider_storage;
  gauge.source = NodeId{5};
  gauge.value = 1e9;
  gauge.aux = 2000;  // capacity MB
  f.ingest(gauge);
  MetricEvent store;
  store.kind = MetricKind::chunk_write;
  store.source = NodeId{5};
  store.value = 64e6;
  f.ingest(store);

  std::vector<Record> out;
  f.flush(simtime::seconds(1), out);
  double used = -1, cap = -1, rate = -1;
  for (const auto& r : out) {
    if (r.key.metric == Metric::used_bytes) used = r.value;
    if (r.key.metric == Metric::capacity_bytes) cap = r.value;
    if (r.key.metric == Metric::store_rate) rate = r.value;
  }
  EXPECT_DOUBLE_EQ(used, 1e9);
  EXPECT_DOUBLE_EQ(cap, 2e9);
  EXPECT_GT(rate, 0);

  // Next interval: gauge persists, rate falls to zero.
  out.clear();
  f.flush(simtime::seconds(2), out);
  rate = -1;
  used = -1;
  for (const auto& r : out) {
    if (r.key.metric == Metric::store_rate) rate = r.value;
    if (r.key.metric == Metric::used_bytes) used = r.value;
  }
  EXPECT_DOUBLE_EQ(rate, 0);
  EXPECT_DOUBLE_EQ(used, 1e9);
}

TEST(ProviderStorageFilter, EmitsSystemTotals) {
  ProviderStorageFilter f;
  for (std::uint64_t p = 0; p < 3; ++p) {
    MetricEvent g;
    g.kind = MetricKind::provider_storage;
    g.source = NodeId{p};
    g.value = 1e9;
    g.aux = 4000;
    f.ingest(g);
  }
  std::vector<Record> out;
  f.flush(simtime::seconds(1), out);
  double total_used = -1, total_cap = -1;
  for (const auto& r : out) {
    if (r.key.domain != Domain::system) continue;
    if (r.key.metric == Metric::total_used_bytes) total_used = r.value;
    if (r.key.metric == Metric::total_capacity_bytes) total_cap = r.value;
  }
  EXPECT_DOUBLE_EQ(total_used, 3e9);
  EXPECT_DOUBLE_EQ(total_cap, 12e9);
}

TEST(RecordKey, SeriesNamesAndHashing) {
  RecordKey a{Domain::provider, 42, Metric::used_bytes};
  EXPECT_EQ(a.series_name(), "provider.42.used_bytes");
  RecordKey sys{Domain::system, 0, Metric::publish_count};
  EXPECT_EQ(sys.series_name(), "system.publish_count");
  RecordKey b = a;
  EXPECT_EQ(a.hash(), b.hash());
  b.id = 43;
  EXPECT_NE(a.hash(), b.hash());
}

class MonPipelineTest : public ::testing::Test {
 protected:
  MonPipelineTest() {
    blob::DeploymentConfig cfg;
    cfg.sites = 3;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);
    MonitoringConfig mcfg;
    mcfg.services = 2;
    mcfg.storage_servers = 2;
    mon_ = std::make_unique<MonitoringLayer>(*dep_, mcfg);
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
  std::unique_ptr<MonitoringLayer> mon_;
};

TEST_F(MonPipelineTest, EndToEndRecordsFlow) {
  blob::BlobClient* client = dep_->add_client();
  mon_->attach_client(*client);
  mon_->start();

  auto blob = test::run_task(sim_, client->create(4 * units::MB));
  ASSERT_TRUE(blob.ok());
  auto w = test::run_task(
      sim_, client->write(*blob, 0,
                          blob::Payload::synthetic(32 * units::MB, 1)));
  ASSERT_TRUE(w.ok());
  // Let the pipeline flush: instrument (1s) -> service (1s) -> storage
  // drain (200ms).
  sim_.run_until(sim_.now() + simtime::seconds(6));

  EXPECT_GT(mon_->total_events(), 0u);
  EXPECT_GT(mon_->total_records(), 0u);
  EXPECT_GT(mon_->distinct_series(), 0u);

  // Per-client write bytes were recorded.
  const TimeSeries* writes = mon_->query(
      {Domain::client, client->id().value, Metric::write_bytes});
  ASSERT_NE(writes, nullptr);
  double sum = 0;
  for (const auto& s : writes->samples()) sum += s.value;
  // Payload plus per-chunk wire headers.
  EXPECT_GE(sum, 32e6);
  EXPECT_LT(sum, 32e6 * 1.01);

  // Provider storage gauges landed too.
  bool provider_series = false;
  for (const auto& key : mon_->all_keys()) {
    if (key.domain == Domain::provider &&
        key.metric == Metric::used_bytes) {
      provider_series = true;
    }
  }
  EXPECT_TRUE(provider_series);
}

TEST_F(MonPipelineTest, StorageServerBurstCacheDropsWhenFull) {
  // Stand-alone storage server with a tiny cache and no drain.
  rpc::Node* n = dep_->cluster().add_node(0);
  MonStorageOptions opts;
  opts.cache_capacity = 8;
  MonStorageServer server(*n, opts);  // not started: cache never drains
  rpc::Node* src = dep_->cluster().add_node(0);

  MonStoreReq req;
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) {
    Record r;
    r.key = {Domain::system, 0, Metric::publish_count};
    r.time = i;
    r.value = i;
    records.push_back(r);
  }
  req.records =
      std::make_shared<const std::vector<Record>>(std::move(records));
  auto resp = test::run_task(
      sim_, dep_->cluster().call<MonStoreReq, MonStoreResp>(
                *src, n->id(), std::move(req)));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().accepted, 8u);
  EXPECT_EQ(resp.value().dropped, 12u);
  EXPECT_EQ(server.records_dropped(), 12u);
}

TEST_F(MonPipelineTest, StorageServerDrainPersistsSeries) {
  rpc::Node* n = dep_->cluster().add_node(0);
  MonStorageServer server(*n);
  server.start();
  rpc::Node* src = dep_->cluster().add_node(0);

  MonStoreReq req;
  std::vector<Record> records;
  for (int i = 0; i < 5; ++i) {
    Record r;
    r.key = {Domain::node, 1, Metric::cpu_load};
    r.time = simtime::seconds(i);
    r.value = 0.1 * i;
    records.push_back(r);
  }
  req.records =
      std::make_shared<const std::vector<Record>>(std::move(records));
  (void)test::run_task(sim_,
                       dep_->cluster().call<MonStoreReq, MonStoreResp>(
                           *src, n->id(), std::move(req)));
  sim_.run_until(sim_.now() + simtime::seconds(2));

  const TimeSeries* ts =
      server.series({Domain::node, 1, Metric::cpu_load});
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->size(), 5u);
  EXPECT_EQ(server.records_stored(), 5u);
}

TEST_F(MonPipelineTest, InstrumentationCountsAndBatches) {
  blob::BlobClient* client = dep_->add_client();
  mon_->attach_client(*client);
  mon_->start();
  auto blob = test::run_task(sim_, client->create(1 * units::MB));
  ASSERT_TRUE(blob.ok());
  for (int i = 0; i < 3; ++i) {
    (void)test::run_task(
        sim_, client->append(*blob,
                             blob::Payload::synthetic(2 * units::MB, i)));
  }
  sim_.run_until(sim_.now() + simtime::seconds(4));

  Instrument* inst = mon_->instrument_for(client->node().id());
  ASSERT_NE(inst, nullptr);
  EXPECT_GE(inst->events_emitted(), 3u);  // one client_op per append
  EXPECT_GT(inst->batches_sent(), 0u);
  EXPECT_EQ(inst->events_dropped(), 0u);
  EXPECT_EQ(inst->send_failures(), 0u);
}

}  // namespace
}  // namespace bs::mon
