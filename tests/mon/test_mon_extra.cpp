// Monitoring corner cases: instrument buffer limits and gauge aux values,
// record partitioning across storage servers, and the query RPCs.
#include <gtest/gtest.h>

#include <set>

#include "mon/layer.hpp"
#include "test_util.hpp"

namespace bs::mon {
namespace {

TEST(Instrument, BufferLimitDropsExcessEvents) {
  sim::Simulation sim;
  rpc::Cluster cluster(sim, net::Topology::single_site());
  rpc::Node* node = cluster.add_node(0);
  rpc::Node* svc = cluster.add_node(0);
  InstrumentOptions opts;
  opts.buffer_limit = 10;
  Instrument inst(*node, svc->id(), opts);  // not started: nothing drains
  for (int i = 0; i < 25; ++i) {
    MetricEvent ev;
    ev.kind = MetricKind::control_op;
    inst.emit(ev);
  }
  EXPECT_EQ(inst.events_emitted(), 10u);
  EXPECT_EQ(inst.events_dropped(), 15u);
}

TEST(Instrument, StopsWhenNodeGoesDown) {
  sim::Simulation sim;
  rpc::Cluster cluster(sim, net::Topology::single_site());
  rpc::Node* node = cluster.add_node(0);
  rpc::Node* svc_node = cluster.add_node(0);
  MonitoringService svc(*svc_node, {});
  svc.start();
  Instrument inst(*node, svc_node->id(), {});
  inst.start();
  MetricEvent ev;
  ev.kind = MetricKind::control_op;
  inst.emit(ev);
  sim.run_until(simtime::seconds(3));
  const auto sent = inst.batches_sent();
  EXPECT_GT(sent, 0u);
  node->set_up(false);
  inst.emit(ev);
  sim.run_until(simtime::seconds(10));
  EXPECT_EQ(inst.batches_sent(), sent);  // flush loop exited
}

class MonRpcTest : public ::testing::Test {
 protected:
  MonRpcTest() : cluster_(sim_, net::Topology::single_site()) {
    storage_node_ = cluster_.add_node(0);
    server_ = std::make_unique<MonStorageServer>(*storage_node_);
    server_->start();
    client_ = cluster_.add_node(0);
    // Preload two series.
    MonStoreReq req;
    std::vector<Record> records;
    for (int t = 0; t < 10; ++t) {
      records.push_back(Record{
          {Domain::provider, 7, Metric::used_bytes},
          simtime::seconds(t), 100.0 * t});
      records.push_back(Record{
          {Domain::node, 7, Metric::cpu_load}, simtime::seconds(t), 0.5});
    }
    req.records =
        std::make_shared<const std::vector<Record>>(std::move(records));
    auto r = test::run_task(
        sim_, cluster_.call<MonStoreReq, MonStoreResp>(
                  *client_, storage_node_->id(), std::move(req)));
    EXPECT_TRUE(r.ok());
    sim_.run_until(simtime::seconds(2));  // drain to "disk"
  }

  sim::Simulation sim_;
  rpc::Cluster cluster_;
  rpc::Node* storage_node_;
  std::unique_ptr<MonStorageServer> server_;
  rpc::Node* client_;
};

TEST_F(MonRpcTest, QueryReturnsRange) {
  MonQueryReq q;
  q.key = {Domain::provider, 7, Metric::used_bytes};
  q.from = simtime::seconds(3);
  q.to = simtime::seconds(7);
  auto r = test::run_task(sim_, cluster_.call<MonQueryReq, MonQueryResp>(
                                    *client_, storage_node_->id(), q));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().samples.size(), 4u);
  EXPECT_DOUBLE_EQ(r.value().samples[0].value, 300.0);
}

TEST_F(MonRpcTest, QueryUnknownSeriesIsEmpty) {
  MonQueryReq q;
  q.key = {Domain::blob, 99, Metric::blob_read_bytes};
  auto r = test::run_task(sim_, cluster_.call<MonQueryReq, MonQueryResp>(
                                    *client_, storage_node_->id(), q));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().samples.empty());
}

TEST_F(MonRpcTest, ListSeriesFiltersByDomain) {
  MonListSeriesReq all;
  auto r1 = test::run_task(
      sim_, cluster_.call<MonListSeriesReq, MonListSeriesResp>(
                *client_, storage_node_->id(), all));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().keys.size(), 2u);

  MonListSeriesReq only_nodes;
  only_nodes.filter_domain = true;
  only_nodes.domain = Domain::node;
  auto r2 = test::run_task(
      sim_, cluster_.call<MonListSeriesReq, MonListSeriesResp>(
                *client_, storage_node_->id(), only_nodes));
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2.value().keys.size(), 1u);
  EXPECT_EQ(r2.value().keys[0].metric, Metric::cpu_load);
}

TEST(MonPartitioning, RecordsShardAcrossStorageServersByKey) {
  sim::Simulation sim;
  blob::DeploymentConfig dcfg;
  dcfg.sites = 1;
  dcfg.data_providers = 6;
  dcfg.metadata_providers = 1;
  blob::Deployment dep(sim, dcfg);
  MonitoringConfig mcfg;
  mcfg.services = 1;
  mcfg.storage_servers = 3;
  MonitoringLayer layer(dep, mcfg);
  layer.start();
  blob::BlobClient* c = dep.add_client();
  layer.attach_client(*c);
  auto blob = test::run_task(sim, c->create(units::MB));
  (void)test::run_task(
      sim, c->write(*blob, 0, blob::Payload::synthetic(16 * units::MB, 1)));
  sim.run_until(simtime::seconds(8));

  // Each series lives on exactly one storage server (hash-partitioned),
  // and more than one server holds something.
  std::size_t servers_with_data = 0;
  std::set<RecordKey> seen;
  for (auto& s : layer.storage()) {
    auto keys = s->keys();
    if (!keys.empty()) ++servers_with_data;
    for (const auto& k : keys) {
      EXPECT_EQ(seen.count(k), 0u) << "series on two servers";
      seen.insert(k);
    }
  }
  EXPECT_GE(servers_with_data, 2u);
  // The layer's query() finds every series wherever it lives.
  for (const auto& k : seen) {
    EXPECT_NE(layer.query(k), nullptr);
  }
}

}  // namespace
}  // namespace bs::mon
