// Shared helpers for simulation-driven tests.
#pragma once

#include <optional>
#include <utility>

#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace bs::test {

/// Runs the simulation until `task` completes and returns its value.
/// Background actors (heartbeats, monitors) may still have events queued;
/// they are simply not processed further.
template <class T>
T run_task(sim::Simulation& sim, sim::Task<T> task) {
  std::optional<T> out;
  sim.spawn([](sim::Task<T> t, std::optional<T>& slot) -> sim::Task<void> {
    slot.emplace(co_await std::move(t));
  }(std::move(task), out));
  while (!out.has_value() && sim.step()) {
  }
  if (!out.has_value()) {
    // The task deadlocked: no events left but not complete.
    std::abort();
  }
  return std::move(*out);
}

/// Order-sensitive 64-bit digest accumulator for determinism tests: two
/// runs are considered bit-identical only if every mixed value matches in
/// both content and order.
class Digest {
 public:
  void mix(std::uint64_t v) {
    h_ ^= v + 0x9e3779b97f4a7c15ull + (h_ << 6) + (h_ >> 2);
  }
  void mix_signed(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_{0xcbf29ce484222325ull};
};

inline void run_task_void(sim::Simulation& sim, sim::Task<void> task) {
  bool done = false;
  sim.spawn([](sim::Task<void> t, bool& flag) -> sim::Task<void> {
    co_await std::move(t);
    flag = true;
  }(std::move(task), done));
  while (!done && sim.step()) {
  }
  if (!done) std::abort();
}

}  // namespace bs::test
