#include "rpc/rpc.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace bs::rpc {
namespace {

struct EchoReq {
  static constexpr const char* kName = "test.echo";
  int value{0};
  std::uint64_t wire_size() const { return 32; }
};
struct EchoResp {
  int value{0};
  std::uint64_t wire_size() const { return 32; }
};

struct BigPutReq {
  static constexpr const char* kName = "test.big_put";
  static constexpr bool kPayloadToDisk = true;
  std::uint64_t bytes{0};
  std::uint64_t wire_size() const { return 64 + bytes; }
};
struct BigPutResp {
  std::uint64_t wire_size() const { return 16; }
};

struct SlowReq {
  static constexpr const char* kName = "test.slow";
  std::uint64_t wire_size() const { return 16; }
};
struct SlowResp {
  std::uint64_t wire_size() const { return 16; }
};

class RpcTest : public ::testing::Test {
 protected:
  RpcTest() : cluster_(sim_, net::Topology::grid5000()) {
    server_ = cluster_.add_node(0);
    client_ = cluster_.add_node(1);
    server_->serve<EchoReq, EchoResp>(
        [](const EchoReq& req,
           const Envelope&) -> sim::Task<Result<EchoResp>> {
          co_return EchoResp{req.value * 2};
        });
    server_->serve<BigPutReq, BigPutResp>(
        [](const BigPutReq&,
           const Envelope&) -> sim::Task<Result<BigPutResp>> {
          co_return BigPutResp{};
        });
    server_->serve<SlowReq, SlowResp>(
        [this](const SlowReq&,
               const Envelope&) -> sim::Task<Result<SlowResp>> {
          co_await sim_.delay(simtime::seconds(60));
          co_return SlowResp{};
        });
  }

  sim::Simulation sim_;
  Cluster cluster_;
  Node* server_;
  Node* client_;
};

TEST_F(RpcTest, EchoRoundTrip) {
  auto r = test::run_task(
      sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                             EchoReq{21}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, 42);
  // Crossed two WAN hops + service overhead: at least 8 ms, under 100 ms.
  EXPECT_GT(sim_.now(), simtime::millis(8));
  EXPECT_LT(sim_.now(), simtime::millis(100));
}

struct NoHandlerReq {
  static constexpr const char* kName = "test.nohandler";
  std::uint64_t wire_size() const { return 16; }
};

TEST_F(RpcTest, UnknownServiceFails) {
  auto r = test::run_task(
      sim_, cluster_.call<NoHandlerReq, EchoResp>(*client_, server_->id(),
                                                  NoHandlerReq{}));
  EXPECT_EQ(r.code(), Errc::unavailable);
}

TEST_F(RpcTest, DownNodeUnavailable) {
  server_->set_up(false);
  auto r = test::run_task(
      sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                             EchoReq{1}));
  EXPECT_EQ(r.code(), Errc::unavailable);
}

TEST_F(RpcTest, UnknownDestinationUnavailable) {
  auto r = test::run_task(
      sim_, cluster_.call<EchoReq, EchoResp>(*client_, NodeId{999},
                                             EchoReq{1}));
  EXPECT_EQ(r.code(), Errc::unavailable);
}

TEST_F(RpcTest, LargePayloadPaysBandwidth) {
  // 125 MB over a 1 Gb/s NIC ~ 1 s (+ disk is faster, + latency).
  auto r = test::run_task(
      sim_, cluster_.call<BigPutReq, BigPutResp>(*client_, server_->id(),
                                                 BigPutReq{125'000'000}));
  ASSERT_TRUE(r.ok());
  EXPECT_GT(sim_.now(), simtime::seconds(0.9));
  EXPECT_LT(sim_.now(), simtime::seconds(1.5));
}

TEST_F(RpcTest, TimeoutFires) {
  CallOptions opts;
  opts.timeout = simtime::seconds(5);
  auto r = test::run_task(
      sim_, cluster_.call<SlowReq, SlowResp>(*client_, server_->id(),
                                             SlowReq{}, opts));
  EXPECT_EQ(r.code(), Errc::timeout);
  EXPECT_EQ(cluster_.calls_timed_out(), 1u);
  // The caller observed the timeout at exactly 5 s.
  EXPECT_EQ(sim_.now(), simtime::seconds(5));
}

TEST_F(RpcTest, AdmissionHookRejectsCheaply) {
  server_->set_admission(
      [](const Envelope& env, const char*) -> Result<void> {
        if (env.client == ClientId{666}) {
          return Error{Errc::blocked, "banned"};
        }
        return ok_result();
      });
  CallOptions banned;
  banned.client = ClientId{666};
  auto r1 = test::run_task(
      sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                             EchoReq{1}, banned));
  EXPECT_EQ(r1.code(), Errc::blocked);

  CallOptions fine;
  fine.client = ClientId{7};
  auto r2 = test::run_task(
      sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                             EchoReq{1}, fine));
  EXPECT_TRUE(r2.ok());
}

TEST_F(RpcTest, RequestObserverSeesTraffic) {
  std::vector<RequestInfo> seen;
  server_->set_request_observer(
      [&seen](const RequestInfo& info) { seen.push_back(info); });
  CallOptions opts;
  opts.client = ClientId{5};
  (void)test::run_task(
      sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                             EchoReq{1}, opts));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_STREQ(seen[0].name, "test.echo");
  EXPECT_EQ(seen[0].client, ClientId{5});
  EXPECT_EQ(seen[0].outcome, Errc::ok);
  EXPECT_EQ(seen[0].request_bytes, 32u);
}

TEST_F(RpcTest, ServiceQueueSerializesBeyondConcurrency) {
  // The default spec allows 4 concurrent requests with 300 us overhead;
  // 8 echo calls therefore need two service "waves".
  sim::WaitGroup wg(sim_);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    wg.launch([](Cluster& c, Node& from, NodeId to,
                 int& d) -> sim::Task<void> {
      (void)co_await c.call<EchoReq, EchoResp>(from, to, EchoReq{1});
      ++d;
    }(cluster_, *client_, server_->id(), done));
  }
  sim_.run();
  EXPECT_EQ(done, 8);
  EXPECT_GT(server_->requests_served(), 0u);
}

TEST(RpcClusterTest, RetireNodeMakesItUnavailable) {
  sim::Simulation sim;
  Cluster cluster(sim, net::Topology::single_site());
  Node* a = cluster.add_node(0);
  Node* b = cluster.add_node(0);
  b->serve<EchoReq, EchoResp>(
      [](const EchoReq& req, const Envelope&) -> sim::Task<Result<EchoResp>> {
        co_return EchoResp{req.value};
      });
  cluster.retire_node(b->id());
  auto r = test::run_task(
      sim, cluster.call<EchoReq, EchoResp>(*a, b->id(), EchoReq{1}));
  EXPECT_EQ(r.code(), Errc::unavailable);
}

}  // namespace
}  // namespace bs::rpc
