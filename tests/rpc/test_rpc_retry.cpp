// RPC retry/backoff hardening: exponential, jittered, deterministic-per-seed
// backoff; retries stop at the attempt cap; only transport-level failures
// retry; and the cluster's attempt/timeout counters stay consistent when one
// logical call expands into several attempts.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "rpc/rpc.hpp"
#include "test_util.hpp"

namespace bs::rpc {
namespace {

struct PingReq {
  static constexpr const char* kName = "test.ping";
  std::uint64_t wire_size() const { return 16; }
};
struct PingResp {
  std::uint64_t wire_size() const { return 16; }
};

RetryPolicy no_jitter(std::uint32_t attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.base_backoff = simtime::millis(100);
  p.multiplier = 2.0;
  p.max_backoff = simtime::millis(400);
  p.jitter = 0.0;
  return p;
}

TEST(RetryPolicy_, BackoffIsExponentialAndCapped) {
  Rng rng(1);
  const RetryPolicy p = no_jitter(10);
  EXPECT_EQ(p.backoff(1, rng), simtime::millis(100));
  EXPECT_EQ(p.backoff(2, rng), simtime::millis(200));
  EXPECT_EQ(p.backoff(3, rng), simtime::millis(400));
  EXPECT_EQ(p.backoff(4, rng), simtime::millis(400));  // capped
  EXPECT_EQ(p.backoff(9, rng), simtime::millis(400));
}

TEST(RetryPolicy_, JitterIsBoundedAndDeterministicPerSeed) {
  RetryPolicy p = no_jitter(10);
  p.jitter = 0.5;
  // Same seed -> identical jittered schedule, bit for bit.
  Rng a(42), b(42);
  for (std::uint32_t k = 1; k <= 8; ++k) {
    const SimDuration da = p.backoff(k, a);
    const SimDuration db = p.backoff(k, b);
    EXPECT_EQ(da, db) << "retry " << k;
    // Bounded: within [d * (1 - jitter), d].
    const SimDuration full = no_jitter(10).backoff(k, a);
    EXPECT_GE(da, full / 2);
    EXPECT_LE(da, full);
  }
  // Different seeds diverge (with overwhelming probability over 8 draws).
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (std::uint32_t k = 1; k <= 8; ++k) {
    if (p.backoff(k, a2) != p.backoff(k, c)) differs = true;
  }
  EXPECT_TRUE(differs);
}

class RetryRpcTest : public ::testing::Test {
 protected:
  RetryRpcTest() : cluster_(sim_, net::Topology::grid5000(), /*seed=*/7) {
    server_ = cluster_.add_node(0);
    client_ = cluster_.add_node(1);
    server_->serve<PingReq, PingResp>(
        [this](const PingReq&,
               const Envelope&) -> sim::Task<Result<PingResp>> {
          ++handled_;
          if (handled_ <= fail_first_) {
            co_return Error{fail_code_, "induced failure"};
          }
          co_return PingResp{};
        });
  }

  Result<PingResp> call(CallOptions opts) {
    return test::run_task(sim_, cluster_.call<PingReq, PingResp>(
                                    *client_, server_->id(), PingReq{}, opts));
  }

  sim::Simulation sim_;
  Cluster cluster_;
  Node* server_;
  Node* client_;
  int handled_{0};
  int fail_first_{0};
  Errc fail_code_{Errc::unavailable};
};

TEST_F(RetryRpcTest, RetriesStopAtAttemptCap) {
  fail_first_ = 1000;  // always fail
  CallOptions opts;
  opts.retry = no_jitter(4);
  auto r = call(opts);
  EXPECT_EQ(r.code(), Errc::unavailable);
  EXPECT_EQ(handled_, 4);
  EXPECT_EQ(cluster_.calls_started(), 4u);
  EXPECT_EQ(cluster_.calls_retried(), 3u);
}

TEST_F(RetryRpcTest, FirstSuccessStopsRetrying) {
  fail_first_ = 2;
  CallOptions opts;
  opts.retry = no_jitter(5);
  auto r = call(opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(handled_, 3);
  EXPECT_EQ(cluster_.calls_retried(), 2u);
}

TEST_F(RetryRpcTest, ApplicationErrorsAreNotRetried) {
  fail_first_ = 1000;
  fail_code_ = Errc::not_found;
  CallOptions opts;
  opts.retry = no_jitter(5);
  auto r = call(opts);
  EXPECT_EQ(r.code(), Errc::not_found);
  EXPECT_EQ(handled_, 1);
  EXPECT_EQ(cluster_.calls_retried(), 0u);
}

TEST_F(RetryRpcTest, DisabledPolicyMakesSingleAttempt) {
  fail_first_ = 1000;
  CallOptions opts;  // no per-call policy, cluster default disabled
  EXPECT_FALSE(cluster_.default_retry().enabled());
  auto r = call(opts);
  EXPECT_EQ(r.code(), Errc::unavailable);
  EXPECT_EQ(handled_, 1);
  EXPECT_EQ(cluster_.calls_retried(), 0u);
}

TEST_F(RetryRpcTest, TimeoutAccountingCountsEveryAttempt) {
  // Black-hole the network: every request message is dropped, so each
  // attempt ends in a timeout and the counters reflect attempts, not calls.
  cluster_.set_link_fault_fn([](net::SiteId, net::SiteId) {
    return Cluster::LinkFault{.drop = true};
  });
  CallOptions opts;
  opts.timeout = simtime::seconds(1);
  opts.retry = no_jitter(3);
  auto r = call(opts);
  EXPECT_EQ(r.code(), Errc::timeout);
  EXPECT_EQ(handled_, 0);
  EXPECT_EQ(cluster_.calls_started(), 3u);
  EXPECT_EQ(cluster_.calls_timed_out(), 3u);
  EXPECT_EQ(cluster_.calls_retried(), 2u);
  EXPECT_EQ(cluster_.messages_dropped(), 3u);
  // Zero jitter makes the whole schedule analytic:
  // 3 x 1 s timeouts + 100 ms + 200 ms of backoff.
  EXPECT_EQ(sim_.now(), simtime::seconds(3) + simtime::millis(300));
}

TEST(RetryDeterminism, JitteredScheduleIsIdenticalAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t fault_seed) {
    sim::Simulation sim;
    Cluster cluster(sim, net::Topology::grid5000(), fault_seed);
    Node* server = cluster.add_node(0);
    Node* client = cluster.add_node(1);
    server->serve<PingReq, PingResp>(
        [](const PingReq&, const Envelope&) -> sim::Task<Result<PingResp>> {
          co_return PingResp{};
        });
    cluster.set_link_fault_fn([](net::SiteId, net::SiteId) {
      return Cluster::LinkFault{.drop = true};
    });
    CallOptions opts;
    opts.timeout = simtime::millis(500);
    RetryPolicy p;
    p.max_attempts = 5;
    p.jitter = 0.5;
    opts.retry = p;
    (void)test::run_task(sim, cluster.call<PingReq, PingResp>(
                                  *client, server->id(), PingReq{}, opts));
    return sim.now();
  };
  const SimTime a = run_once(1234);
  const SimTime b = run_once(1234);
  const SimTime c = run_once(9999);
  EXPECT_EQ(a, b);   // same seed: bit-identical backoff schedule
  EXPECT_NE(a, c);   // different seed: different jitter draws
}

}  // namespace
}  // namespace bs::rpc
