// Gateway journal recovery: bucket/object metadata and the dedup index
// survive a gateway crash (including torn journal tails), checkpoints bound
// the replay tail, and unverified post-recovery dedup hits are re-probed
// against the providers before being trusted — a wiped provider forces a
// fresh store instead of a dangling manifest, and stale pre-crash manifests
// cannot move the regenerated entry's refcount.
#include <gtest/gtest.h>

#include "blob/deployment.hpp"
#include "cloud/gateway.hpp"
#include "test_util.hpp"

namespace bs::cloud {
namespace {

constexpr std::uint64_t kChunk = 1 * units::MB;

class GatewayRecoveryTest : public ::testing::Test {
 protected:
  explicit GatewayRecoveryTest(std::size_t data_providers = 4,
                               std::size_t replication = 1) {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = data_providers;
    cfg.metadata_providers = 2;
    cfg.journal.enabled = true;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);
    gw_node_ = dep_->cluster().add_node(0);
    GatewayOptions opts;
    opts.object_chunk_size = kChunk;
    opts.replication = static_cast<std::uint32_t>(replication);
    opts.journal.enabled = true;
    opts.journal.checkpoint_records = 64;
    gateway_ = std::make_unique<S3Gateway>(*gw_node_, dep_->endpoints(),
                                           opts);
    user_node_ = dep_->cluster().add_node(1);
  }

  template <class Req, class Resp>
  Result<Resp> as(ClientId user, Req req) {
    rpc::CallOptions opts;
    opts.client = user;
    return test::run_task(
        sim_, dep_->cluster().call<Req, Resp>(*user_node_, gw_node_->id(),
                                              std::move(req), opts));
  }

  void put_ids(ClientId user, const std::string& bucket,
               const std::string& key,
               const std::vector<std::uint64_t>& ids) {
    S3PutObjectReq put;
    put.bucket = bucket;
    put.key = key;
    std::uint64_t etag = fnv1a_u64(ids.size() * kChunk);
    for (std::uint64_t id : ids) {
      put.chunk_sums.push_back(fnv1a_u64(id));
      etag = hash_combine(etag, put.chunk_sums.back());
    }
    put.payload = blob::Payload{ids.size() * kChunk, etag, nullptr};
    ASSERT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(user, put)).ok());
  }

  /// Crash the gateway node, restart it, and run the sim until the spawned
  /// recovery task has replayed the journal.
  void crash_restart_gateway(bool torn_tail = false) {
    rpc::CrashOptions c;
    c.torn_tail = torn_tail;
    gw_node_->crash(c);
    sim_.run_until(sim_.now() + simtime::seconds(1));
    gw_node_->restart();
    sim_.run_until(sim_.now() + simtime::seconds(10));
    ASSERT_FALSE(gateway_->recovering());
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
  rpc::Node* gw_node_;
  std::unique_ptr<S3Gateway> gateway_;
  rpc::Node* user_node_;
  const ClientId alice_{101};
  const ClientId bob_{102};
};

TEST_F(GatewayRecoveryTest, MetadataAndIndexSurviveCrash) {
  S3CreateBucketReq mk;
  mk.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(alice_, mk)).ok());
  S3SetAclReq grant;
  grant.bucket = "b";
  grant.grantee = bob_;
  grant.permission = Permission::read;
  ASSERT_TRUE((as<S3SetAclReq, S3SetAclResp>(alice_, grant)).ok());
  put_ids(alice_, "b", "x", {1, 2, 3});
  put_ids(alice_, "b", "y", {2, 3, 4});  // shares chunks 2, 3 with x

  const std::uint64_t before = gateway_->state_digest();
  const std::size_t index_before = gateway_->index().size();
  S3HeadObjectReq head;
  head.bucket = "b";
  head.key = "x";
  auto h0 = as<S3HeadObjectReq, S3HeadObjectResp>(alice_, head);
  ASSERT_TRUE(h0.ok());

  crash_restart_gateway();

  EXPECT_EQ(gateway_->state_digest(), before);
  EXPECT_EQ(gateway_->index().size(), index_before);
  EXPECT_EQ(gateway_->recovery_stats().recoveries, 1u);
  EXPECT_GT(gateway_->recovery_stats().replay_records, 0u);

  // Metadata answers match, the ACL survived, and the data is readable.
  auto h1 = as<S3HeadObjectReq, S3HeadObjectResp>(alice_, head);
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(h1.value().info.etag, h0.value().info.etag);
  EXPECT_EQ(h1.value().info.size, h0.value().info.size);
  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "y";
  EXPECT_TRUE((as<S3GetObjectReq, S3GetObjectResp>(bob_, get)).ok());

  // A dedup hit against the recovered index still skips provider writes
  // (after the one-time presence re-probe).
  const std::uint64_t stored_before = gateway_->stats().bytes_to_providers;
  put_ids(alice_, "b", "z", {3, 4});
  EXPECT_EQ(gateway_->stats().bytes_to_providers, stored_before);
  EXPECT_EQ(gateway_->index().size(), index_before);
}

TEST_F(GatewayRecoveryTest, TornTailKeepsAckedObjects) {
  S3CreateBucketReq mk;
  mk.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(alice_, mk)).ok());
  for (int i = 0; i < 6; ++i) {
    put_ids(alice_, "b", "k" + std::to_string(i),
            {std::uint64_t(10 + i), std::uint64_t(20 + i)});
  }
  const std::uint64_t before = gateway_->state_digest();

  crash_restart_gateway(/*torn_tail=*/true);

  // Every acked put was fsynced before its response, so a torn tail (the
  // half-written record past the last sync) cannot lose any of them.
  EXPECT_EQ(gateway_->state_digest(), before);
  for (int i = 0; i < 6; ++i) {
    S3GetObjectReq get;
    get.bucket = "b";
    get.key = "k" + std::to_string(i);
    EXPECT_TRUE((as<S3GetObjectReq, S3GetObjectResp>(alice_, get)).ok());
  }
}

TEST_F(GatewayRecoveryTest, CheckpointBoundsReplay) {
  S3CreateBucketReq mk;
  mk.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(alice_, mk)).ok());
  // Well past checkpoint_records (64): each put journals several records.
  for (int i = 0; i < 40; ++i) {
    put_ids(alice_, "b", "k" + std::to_string(i),
            {std::uint64_t(100 + i), std::uint64_t(200 + i)});
  }
  const std::uint64_t before = gateway_->state_digest();

  crash_restart_gateway();

  EXPECT_EQ(gateway_->state_digest(), before);
  // Replay = last checkpoint + tail. Each put appends 5 records (2 inserts,
  // 2 refs, put_object), so full history is ~202; a checkpoint at put k
  // holds 3 + 3k records and the tail stays under the 64-record trigger,
  // bounding replay to ~151 worst case. Without checkpoints it would be
  // the full 202.
  EXPECT_LT(gateway_->recovery_stats().replay_records, 170u);
  EXPECT_GT(gateway_->recovery_stats().replay_records, 0u);
  S3ListObjectsReq ls;
  ls.bucket = "b";
  auto r = as<S3ListObjectsReq, S3ListObjectsResp>(alice_, ls);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().objects.size(), 40u);
}

// Single provider, replication 1: wiping it loses every stored chunk while
// the gateway journal (and so the dedup index) survives.
class GatewayWipedStoreTest : public GatewayRecoveryTest {
 protected:
  GatewayWipedStoreTest() : GatewayRecoveryTest(1, 1) {}
};

TEST_F(GatewayWipedStoreTest, VerifiedHitsReprobeAfterProviderWipe) {
  S3CreateBucketReq mk;
  mk.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(alice_, mk)).ok());
  put_ids(alice_, "b", "old", {1, 2});
  const std::size_t index_before = gateway_->index().size();
  ASSERT_EQ(index_before, 2u);

  // Provider loses its store; the gateway crashes at the same instant.
  rpc::CrashOptions wipe;
  wipe.lose_storage = true;
  dep_->providers()[0]->node().crash(wipe);
  gw_node_->crash(rpc::CrashOptions{});
  sim_.run_until(sim_.now() + simtime::seconds(1));
  dep_->providers()[0]->node().restart();
  gw_node_->restart();
  sim_.run_until(sim_.now() + simtime::seconds(10));
  ASSERT_FALSE(gateway_->recovering());
  EXPECT_EQ(gateway_->index().size(), index_before);

  // Re-ingesting the same content would be a dedup hit, but the recovered
  // entries are unverified: the presence probe finds the chunks gone and
  // stores them fresh instead of handing back dangling manifests.
  const std::uint64_t misses_before = gateway_->stats().dedup_misses;
  put_ids(alice_, "b", "new", {1, 2});
  EXPECT_EQ(gateway_->stats().dedup_misses, misses_before + 2);
  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "new";
  EXPECT_TRUE((as<S3GetObjectReq, S3GetObjectResp>(alice_, get)).ok());

  // The stale pre-wipe manifest must not perturb the regenerated entries'
  // refcounts: deleting "old" reclaims nothing and "new" stays readable.
  const std::uint64_t reclaimed = gateway_->stats().chunks_reclaimed;
  S3DeleteObjectReq del;
  del.bucket = "b";
  del.key = "old";
  ASSERT_TRUE((as<S3DeleteObjectReq, S3DeleteObjectResp>(alice_, del)).ok());
  EXPECT_EQ(gateway_->stats().chunks_reclaimed, reclaimed);
  EXPECT_EQ(gateway_->index().size(), 2u);
  EXPECT_TRUE((as<S3GetObjectReq, S3GetObjectResp>(alice_, get)).ok());

  // Deleting "new" (the live generation) does reclaim.
  del.key = "new";
  ASSERT_TRUE((as<S3DeleteObjectReq, S3DeleteObjectResp>(alice_, del)).ok());
  EXPECT_EQ(gateway_->index().size(), 0u);
}

}  // namespace
}  // namespace bs::cloud
