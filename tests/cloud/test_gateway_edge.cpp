// Gateway edge cases: range-GET clamping at chunk boundaries and EOF,
// list_objects prefix paging with markers, the bounded per-user client
// cache (idle LRU eviction), and the ACL grant/revoke matrix.
#include <gtest/gtest.h>

#include "blob/deployment.hpp"
#include "cloud/gateway.hpp"
#include "test_util.hpp"

namespace bs::cloud {
namespace {

constexpr std::uint64_t kChunk = 1 * units::MB;

class GatewayEdgeTest : public ::testing::Test {
 protected:
  GatewayEdgeTest() {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);
    gw_node_ = dep_->cluster().add_node(0);
    GatewayOptions opts;
    opts.object_chunk_size = kChunk;
    opts.max_user_clients = 2;
    gateway_ = std::make_unique<S3Gateway>(*gw_node_, dep_->endpoints(),
                                           opts);
    user_node_ = dep_->cluster().add_node(1);
  }

  template <class Req, class Resp>
  Result<Resp> as(ClientId user, Req req) {
    rpc::CallOptions opts;
    opts.client = user;
    return test::run_task(
        sim_, dep_->cluster().call<Req, Resp>(*user_node_, gw_node_->id(),
                                              std::move(req), opts));
  }

  void SetUp() override {
    S3CreateBucketReq mk;
    mk.bucket = "b";
    ASSERT_TRUE(
        (as<S3CreateBucketReq, S3CreateBucketResp>(alice_, mk)).ok());
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
  rpc::Node* gw_node_;
  std::unique_ptr<S3Gateway> gateway_;
  rpc::Node* user_node_;
  const ClientId alice_{101};
  const ClientId bob_{102};
  const ClientId carol_{103};
};

TEST_F(GatewayEdgeTest, RangeGetClampsAndStraddlesChunks) {
  std::vector<std::uint8_t> content(2'500'000);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::uint8_t>(i * 7);
  }
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "k";
  put.payload = blob::Payload::from_bytes(content);
  ASSERT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(alice_, put)).ok());

  // Straddle both chunk boundaries: [kChunk - 10, 2 * kChunk + 10).
  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "k";
  get.offset = kChunk - 10;
  get.length = kChunk + 20;
  auto straddle = as<S3GetObjectReq, S3GetObjectResp>(alice_, get);
  ASSERT_TRUE(straddle.ok());
  ASSERT_NE(straddle.value().payload.bytes, nullptr);
  ASSERT_EQ(straddle.value().payload.bytes->size(), kChunk + 20);
  EXPECT_TRUE(std::equal(
      straddle.value().payload.bytes->begin(),
      straddle.value().payload.bytes->end(),
      content.begin() + static_cast<std::ptrdiff_t>(kChunk - 10)));

  // Length overruns EOF: clamped to the object size.
  get.offset = 2'400'000;
  get.length = 10 * kChunk;
  auto tail = as<S3GetObjectReq, S3GetObjectResp>(alice_, get);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().payload.size, 100'000u);

  // Offset past EOF: empty payload, not an error (etag still reported).
  get.offset = 9'999'999;
  get.length = 5;
  auto past = as<S3GetObjectReq, S3GetObjectResp>(alice_, get);
  ASSERT_TRUE(past.ok());
  EXPECT_EQ(past.value().payload.size, 0u);
  EXPECT_EQ(past.value().etag, blob::Payload::checksum_of(content));

  // Exactly at a chunk boundary, one full chunk.
  get.offset = kChunk;
  get.length = kChunk;
  auto aligned = as<S3GetObjectReq, S3GetObjectResp>(alice_, get);
  ASSERT_TRUE(aligned.ok());
  ASSERT_NE(aligned.value().payload.bytes, nullptr);
  EXPECT_TRUE(std::equal(
      aligned.value().payload.bytes->begin(),
      aligned.value().payload.bytes->end(),
      content.begin() + static_cast<std::ptrdiff_t>(kChunk)));
}

TEST_F(GatewayEdgeTest, EmptyPutIsRejected) {
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "k";
  EXPECT_EQ((as<S3PutObjectReq, S3PutObjectResp>(alice_, put)).code(),
            Errc::invalid_argument);
}

TEST_F(GatewayEdgeTest, ListObjectsPagesWithMarkers) {
  for (int i = 0; i < 25; ++i) {
    S3PutObjectReq put;
    put.bucket = "b";
    char key[16];
    std::snprintf(key, sizeof(key), "log/%02d", i);
    put.key = key;
    put.payload = blob::Payload::synthetic(kChunk, 50 + i);
    ASSERT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(alice_, put)).ok());
  }
  // An unrelated prefix that must never leak into "log/" pages.
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "other/x";
  put.payload = blob::Payload::synthetic(kChunk, 99);
  ASSERT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(alice_, put)).ok());

  std::vector<std::string> seen;
  S3ListObjectsReq ls;
  ls.bucket = "b";
  ls.prefix = "log/";
  ls.max_keys = 10;
  int pages = 0;
  for (;;) {
    auto r = as<S3ListObjectsReq, S3ListObjectsResp>(alice_, ls);
    ASSERT_TRUE(r.ok());
    ++pages;
    for (const auto& o : r.value().objects) seen.push_back(o.key);
    if (!r.value().truncated) break;
    EXPECT_EQ(r.value().objects.size(), 10u);
    ls.marker = r.value().next_marker;
  }
  EXPECT_EQ(pages, 3);
  ASSERT_EQ(seen.size(), 25u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  for (const auto& k : seen) {
    EXPECT_EQ(k.compare(0, 4, "log/"), 0) << k;
  }

  // A marker below the prefix run restarts from the prefix.
  ls.marker = "a";
  auto r = as<S3ListObjectsReq, S3ListObjectsResp>(alice_, ls);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r.value().objects.empty());
  EXPECT_EQ(r.value().objects.front().key, "log/00");

  // max_keys = 0 falls back to the server cap (1000): one page.
  ls.marker.clear();
  ls.max_keys = 0;
  r = as<S3ListObjectsReq, S3ListObjectsResp>(alice_, ls);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().objects.size(), 25u);
  EXPECT_FALSE(r.value().truncated);
}

TEST_F(GatewayEdgeTest, UserClientCacheIsBoundedWithLru) {
  // Three users take turns; the cache holds at most two BlobClients.
  for (ClientId user : {alice_, bob_, carol_}) {
    S3CreateBucketReq mk;
    mk.bucket = "u" + std::to_string(user.value);
    ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(user, mk)).ok());
    S3PutObjectReq put;
    put.bucket = mk.bucket;
    put.key = "k";
    put.payload = blob::Payload::synthetic(kChunk, user.value);
    ASSERT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(user, put)).ok());
    EXPECT_LE(gateway_->user_client_count(), 2u);
  }
  EXPECT_GT(gateway_->stats().clients_evicted, 0u);

  // An evicted user's next request just rebuilds their client.
  S3GetObjectReq get;
  get.bucket = "u" + std::to_string(alice_.value);
  get.key = "k";
  EXPECT_TRUE((as<S3GetObjectReq, S3GetObjectResp>(alice_, get)).ok());
  EXPECT_LE(gateway_->user_client_count(), 2u);
}

TEST_F(GatewayEdgeTest, AclGrantRevokeMatrix) {
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "k";
  put.payload = blob::Payload::synthetic(kChunk, 1);
  ASSERT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(alice_, put)).ok());

  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "k";
  S3DeleteObjectReq del;
  del.bucket = "b";
  del.key = "k";

  // write-only grant: put allowed, get denied.
  S3SetAclReq grant;
  grant.bucket = "b";
  grant.grantee = bob_;
  grant.permission = Permission::write;
  ASSERT_TRUE((as<S3SetAclReq, S3SetAclResp>(alice_, grant)).ok());
  put.key = "bobs";
  put.payload = blob::Payload::synthetic(kChunk, 2);
  EXPECT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(bob_, put)).ok());
  EXPECT_EQ((as<S3GetObjectReq, S3GetObjectResp>(bob_, get)).code(),
            Errc::permission_denied);
  // write does not confer ACL administration.
  S3SetAclReq escalate;
  escalate.bucket = "b";
  escalate.grantee = carol_;
  escalate.permission = Permission::full_control;
  EXPECT_EQ((as<S3SetAclReq, S3SetAclResp>(bob_, escalate)).code(),
            Errc::permission_denied);

  // Upgrade to read_write, then revoke entirely.
  grant.permission = Permission::read_write;
  ASSERT_TRUE((as<S3SetAclReq, S3SetAclResp>(alice_, grant)).ok());
  EXPECT_TRUE((as<S3GetObjectReq, S3GetObjectResp>(bob_, get)).ok());
  grant.permission = Permission::none;  // revocation erases the grant
  ASSERT_TRUE((as<S3SetAclReq, S3SetAclResp>(alice_, grant)).ok());
  EXPECT_EQ((as<S3GetObjectReq, S3GetObjectResp>(bob_, get)).code(),
            Errc::permission_denied);
  EXPECT_EQ((as<S3DeleteObjectReq, S3DeleteObjectResp>(bob_, del)).code(),
            Errc::permission_denied);

  // Toggling public_read opens reads (only) to everyone.
  S3SetAclReq pub;
  pub.bucket = "b";
  pub.set_public_read = true;
  pub.public_read = true;
  ASSERT_TRUE((as<S3SetAclReq, S3SetAclResp>(alice_, pub)).ok());
  EXPECT_TRUE((as<S3GetObjectReq, S3GetObjectResp>(carol_, get)).ok());
  EXPECT_EQ((as<S3DeleteObjectReq, S3DeleteObjectResp>(carol_, del)).code(),
            Errc::permission_denied);
  pub.public_read = false;
  ASSERT_TRUE((as<S3SetAclReq, S3SetAclResp>(alice_, pub)).ok());
  EXPECT_EQ((as<S3GetObjectReq, S3GetObjectResp>(carol_, get)).code(),
            Errc::permission_denied);
}

}  // namespace
}  // namespace bs::cloud
