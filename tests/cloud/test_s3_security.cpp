// Gateway + self-protection integration: traffic through the S3 gateway is
// attributed to the END USER (not the gateway), so a user abusing the
// gateway gets detected and blocked by the security framework while other
// tenants keep working.
#include <gtest/gtest.h>

#include "cloud/gateway.hpp"
#include "mon/layer.hpp"
#include "sec/framework.hpp"
#include "test_util.hpp"

namespace bs::cloud {
namespace {

class S3SecurityTest : public ::testing::Test {
 protected:
  S3SecurityTest() {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = 6;
    cfg.metadata_providers = 2;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);

    intro_node_ = dep_->cluster().add_node(0);
    intro_ = std::make_unique<intro::IntrospectionService>(*intro_node_);
    intro_->start();
    mon::MonitoringConfig mcfg;
    mcfg.sinks = {intro_node_->id()};
    monitoring_ = std::make_unique<mon::MonitoringLayer>(*dep_, mcfg);
    monitoring_->start();

    sec::SecurityConfig scfg;
    scfg.detection.scan_interval = simtime::seconds(2);
    scfg.policy_source =
        "policy gw_flood { severity high; when rate(write_ops, 10s) > 8; "
        "then block(120s), trust(-0.4); }";
    security_ = std::make_unique<sec::SecurityFramework>(
        sim_, intro_->activity(), scfg);
    security_->attach_deployment(*dep_);
    security_->start();

    gw_node_ = dep_->cluster().add_node(0);
    GatewayOptions gopts;
    gopts.object_chunk_size = 1 * units::MB;
    gateway_ = std::make_unique<S3Gateway>(*gw_node_, dep_->endpoints(),
                                           gopts);
    user_node_ = dep_->cluster().add_node(1);
  }

  template <class Req, class Resp>
  Result<Resp> as(ClientId user, Req req) {
    rpc::CallOptions opts;
    opts.client = user;
    opts.timeout = simtime::minutes(2);
    return test::run_task(
        sim_, dep_->cluster().call<Req, Resp>(*user_node_, gw_node_->id(),
                                              std::move(req), opts));
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
  rpc::Node* intro_node_;
  std::unique_ptr<intro::IntrospectionService> intro_;
  std::unique_ptr<mon::MonitoringLayer> monitoring_;
  std::unique_ptr<sec::SecurityFramework> security_;
  rpc::Node* gw_node_;
  std::unique_ptr<S3Gateway> gateway_;
  rpc::Node* user_node_;
};

TEST_F(S3SecurityTest, AbusiveGatewayUserIsBlockedOthersUnaffected) {
  const ClientId abuser{301}, tenant{302};
  for (ClientId user : {abuser, tenant}) {
    S3CreateBucketReq mk;
    mk.bucket = "b" + std::to_string(user.value);
    ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(user, mk)).ok());
  }

  // The abuser hammers object puts through the gateway (each put is
  // several chunk writes attributed to the abuser's identity).
  bool abuser_started_failing = false;
  sim_.spawn([](sim::Simulation& s, rpc::Cluster& c, rpc::Node& n,
                NodeId gw, ClientId user, bool& failing) -> sim::Task<void> {
    rpc::CallOptions opts;
    opts.client = user;
    for (int i = 0; i < 300 && !failing; ++i) {
      S3PutObjectReq put;
      put.bucket = "b301";
      put.key = "obj" + std::to_string(i);
      put.payload = blob::Payload::synthetic(4 * units::MB, i);
      auto r = co_await c.call<S3PutObjectReq, S3PutObjectResp>(
          n, gw, std::move(put), opts);
      if (!r.ok()) failing = true;
      co_await s.delay(simtime::millis(100));
    }
  }(sim_, dep_->cluster(), *user_node_, gw_node_->id(), abuser,
    abuser_started_failing));

  sim_.run_until(simtime::seconds(60));

  // The abuser's BlobSeer traffic got them blocked...
  EXPECT_TRUE(
      security_->enforcement().is_blocked(abuser, sim_.now()));
  EXPECT_TRUE(abuser_started_failing);
  EXPECT_LT(security_->trust().trust(abuser), 0.5);
  // ...and NOT the gateway machine or the other tenant.
  EXPECT_FALSE(
      security_->enforcement().is_blocked(tenant, sim_.now()));

  // The honest tenant still works through the same gateway.
  S3PutObjectReq put;
  put.bucket = "b302";
  put.key = "mine";
  put.payload = blob::Payload::synthetic(2 * units::MB, 1);
  auto ok = as<S3PutObjectReq, S3PutObjectResp>(tenant, put);
  EXPECT_TRUE(ok.ok()) << ok.error().to_string();

  // And the abuser's gateway requests now die at BlobSeer admission. The
  // content must be fresh: a dedup-resident chunk would be served from the
  // gateway's index without ever reaching a provider.
  S3PutObjectReq denied;
  denied.bucket = "b301";
  denied.key = "nope";
  denied.payload = blob::Payload::synthetic(units::MB, 999);
  auto blocked = as<S3PutObjectReq, S3PutObjectResp>(abuser, denied);
  EXPECT_FALSE(blocked.ok());
}

}  // namespace
}  // namespace bs::cloud
