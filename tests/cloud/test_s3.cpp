// S3 gateway: bucket/object lifecycle, ACL enforcement, BlobSeer-backed
// content fidelity.
#include <gtest/gtest.h>

#include "blob/deployment.hpp"
#include "cloud/gateway.hpp"
#include "test_util.hpp"

namespace bs::cloud {
namespace {

class S3Test : public ::testing::Test {
 protected:
  S3Test() {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);
    gw_node_ = dep_->cluster().add_node(0);
    GatewayOptions opts;
    opts.object_chunk_size = 1 * units::MB;
    gateway_ = std::make_unique<S3Gateway>(*gw_node_, dep_->endpoints(),
                                           opts);
    alice_node_ = dep_->cluster().add_node(1);
    bob_node_ = dep_->cluster().add_node(1);
  }

  template <class Req, class Resp>
  Result<Resp> as(rpc::Node& node, ClientId user, Req req) {
    rpc::CallOptions opts;
    opts.client = user;
    return test::run_task(
        sim_, dep_->cluster().call<Req, Resp>(node, gw_node_->id(),
                                              std::move(req), opts));
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
  rpc::Node* gw_node_;
  std::unique_ptr<S3Gateway> gateway_;
  rpc::Node* alice_node_;
  rpc::Node* bob_node_;
  const ClientId alice_{101};
  const ClientId bob_{102};
};

TEST_F(S3Test, BucketLifecycle) {
  S3CreateBucketReq create;
  create.bucket = "data";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                         alice_, create))
                  .ok());
  // Duplicate fails.
  EXPECT_EQ((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_, alice_,
                                                       create))
                .code(),
            Errc::already_exists);
  auto list = as<S3ListBucketsReq, S3ListBucketsResp>(*alice_node_, alice_,
                                                      S3ListBucketsReq{});
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().buckets.size(), 1u);
  EXPECT_EQ(list.value().buckets[0].name, "data");

  // Bob cannot see Alice's private bucket.
  auto bob_list = as<S3ListBucketsReq, S3ListBucketsResp>(
      *bob_node_, bob_, S3ListBucketsReq{});
  ASSERT_TRUE(bob_list.ok());
  EXPECT_TRUE(bob_list.value().buckets.empty());

  S3DeleteBucketReq del;
  del.bucket = "data";
  EXPECT_TRUE((as<S3DeleteBucketReq, S3DeleteBucketResp>(*alice_node_,
                                                         alice_, del))
                  .ok());
}

TEST_F(S3Test, PutGetRoundTripWithRealBytes) {
  S3CreateBucketReq create;
  create.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                         alice_, create))
                  .ok());

  std::vector<std::uint8_t> content;
  for (int i = 0; i < 3'000'000; ++i) {
    content.push_back(static_cast<std::uint8_t>(i * 131));
  }
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "dir/object.bin";
  put.payload = blob::Payload::from_bytes(content);
  auto put_resp =
      as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put);
  ASSERT_TRUE(put_resp.ok()) << put_resp.error().to_string();
  EXPECT_EQ(put_resp.value().etag, blob::Payload::checksum_of(content));

  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "dir/object.bin";
  auto got = as<S3GetObjectReq, S3GetObjectResp>(*alice_node_, alice_, get);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  ASSERT_NE(got.value().payload.bytes, nullptr);
  EXPECT_EQ(*got.value().payload.bytes, content);
}

TEST_F(S3Test, RangedGet) {
  S3CreateBucketReq create;
  create.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                         alice_, create))
                  .ok());
  std::vector<std::uint8_t> content(2'500'000);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::uint8_t>(i);
  }
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "k";
  put.payload = blob::Payload::from_bytes(content);
  ASSERT_TRUE(
      (as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put)).ok());

  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "k";
  get.offset = 1'000'000;
  get.length = 500'000;
  auto got = as<S3GetObjectReq, S3GetObjectResp>(*alice_node_, alice_, get);
  ASSERT_TRUE(got.ok());
  ASSERT_NE(got.value().payload.bytes, nullptr);
  ASSERT_EQ(got.value().payload.bytes->size(), 500'000u);
  EXPECT_TRUE(std::equal(got.value().payload.bytes->begin(),
                         got.value().payload.bytes->end(),
                         content.begin() + 1'000'000));
}

TEST_F(S3Test, OverwriteCreatesNewVersion) {
  S3CreateBucketReq create;
  create.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                         alice_, create))
                  .ok());
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "k";
  put.payload = blob::Payload::synthetic(1 * units::MB, 1);
  auto v1 = as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put);
  ASSERT_TRUE(v1.ok());
  put.payload = blob::Payload::synthetic(2 * units::MB, 2);
  auto v2 = as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put);
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(v2.value().version, v1.value().version);

  S3HeadObjectReq head;
  head.bucket = "b";
  head.key = "k";
  auto info = as<S3HeadObjectReq, S3HeadObjectResp>(*alice_node_, alice_,
                                                    head);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().info.size, 2 * units::MB);
  EXPECT_EQ(info.value().info.version, v2.value().version);
}

TEST_F(S3Test, AclDeniesAndGrants) {
  S3CreateBucketReq create;
  create.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                         alice_, create))
                  .ok());
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "k";
  put.payload = blob::Payload::synthetic(units::MB, 1);
  ASSERT_TRUE(
      (as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put)).ok());

  // Bob denied.
  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "k";
  EXPECT_EQ(
      (as<S3GetObjectReq, S3GetObjectResp>(*bob_node_, bob_, get)).code(),
      Errc::permission_denied);
  put.payload = blob::Payload::synthetic(units::MB, 2);
  EXPECT_EQ(
      (as<S3PutObjectReq, S3PutObjectResp>(*bob_node_, bob_, put)).code(),
      Errc::permission_denied);
  // Bob cannot grant himself access.
  S3SetAclReq self_grant;
  self_grant.bucket = "b";
  self_grant.grantee = bob_;
  self_grant.permission = Permission::full_control;
  EXPECT_EQ((as<S3SetAclReq, S3SetAclResp>(*bob_node_, bob_, self_grant))
                .code(),
            Errc::permission_denied);

  // Alice grants read.
  S3SetAclReq grant;
  grant.bucket = "b";
  grant.grantee = bob_;
  grant.permission = Permission::read;
  ASSERT_TRUE(
      (as<S3SetAclReq, S3SetAclResp>(*alice_node_, alice_, grant)).ok());
  EXPECT_TRUE(
      (as<S3GetObjectReq, S3GetObjectResp>(*bob_node_, bob_, get)).ok());
  // Still no write.
  EXPECT_EQ(
      (as<S3PutObjectReq, S3PutObjectResp>(*bob_node_, bob_, put)).code(),
      Errc::permission_denied);
}

TEST_F(S3Test, PublicReadBucket) {
  S3CreateBucketReq create;
  create.bucket = "pub";
  create.public_read = true;
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                         alice_, create))
                  .ok());
  S3PutObjectReq put;
  put.bucket = "pub";
  put.key = "k";
  put.payload = blob::Payload::synthetic(units::MB, 1);
  ASSERT_TRUE(
      (as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put)).ok());
  S3GetObjectReq get;
  get.bucket = "pub";
  get.key = "k";
  EXPECT_TRUE(
      (as<S3GetObjectReq, S3GetObjectResp>(*bob_node_, bob_, get)).ok());
}

TEST_F(S3Test, ListObjectsWithPrefixAndDelete) {
  S3CreateBucketReq create;
  create.bucket = "b";
  ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                         alice_, create))
                  .ok());
  for (const char* key : {"logs/a", "logs/b", "data/c"}) {
    S3PutObjectReq put;
    put.bucket = "b";
    put.key = key;
    put.payload = blob::Payload::synthetic(units::MB, 1);
    ASSERT_TRUE((as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_,
                                                     put))
                    .ok());
  }
  S3ListObjectsReq list;
  list.bucket = "b";
  list.prefix = "logs/";
  auto r = as<S3ListObjectsReq, S3ListObjectsResp>(*alice_node_, alice_,
                                                   list);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().objects.size(), 2u);

  S3DeleteObjectReq del;
  del.bucket = "b";
  del.key = "logs/a";
  ASSERT_TRUE((as<S3DeleteObjectReq, S3DeleteObjectResp>(*alice_node_,
                                                         alice_, del))
                  .ok());
  r = as<S3ListObjectsReq, S3ListObjectsResp>(*alice_node_, alice_, list);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().objects.size(), 1u);
  // Deleted object's data is gone from BlobSeer too.
  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "logs/a";
  EXPECT_EQ(
      (as<S3GetObjectReq, S3GetObjectResp>(*alice_node_, alice_, get)).code(),
      Errc::not_found);

  // Non-empty bucket cannot be deleted.
  S3DeleteBucketReq delb;
  delb.bucket = "b";
  EXPECT_EQ((as<S3DeleteBucketReq, S3DeleteBucketResp>(*alice_node_, alice_,
                                                       delb))
                .code(),
            Errc::conflict);
}

}  // namespace
}  // namespace bs::cloud
