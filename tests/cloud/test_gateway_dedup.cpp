// Content-addressed dedup at the gateway: identical chunk content — across
// objects, tenants and versions — is stored once, refcounted by manifest
// occurrence, and reclaimed only when the last reference drops.
#include <gtest/gtest.h>

#include "blob/deployment.hpp"
#include "cloud/gateway.hpp"
#include "test_util.hpp"

namespace bs::cloud {
namespace {

constexpr std::uint64_t kChunk = 1 * units::MB;

class GatewayDedupTest : public ::testing::Test {
 protected:
  explicit GatewayDedupTest(bool dedup = true) {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);
    gw_node_ = dep_->cluster().add_node(0);
    GatewayOptions opts;
    opts.object_chunk_size = kChunk;
    opts.dedup = dedup;
    gateway_ = std::make_unique<S3Gateway>(*gw_node_, dep_->endpoints(),
                                           opts);
    alice_node_ = dep_->cluster().add_node(1);
    bob_node_ = dep_->cluster().add_node(1);
  }

  template <class Req, class Resp>
  Result<Resp> as(rpc::Node& node, ClientId user, Req req) {
    rpc::CallOptions opts;
    opts.client = user;
    return test::run_task(
        sim_, dep_->cluster().call<Req, Resp>(node, gw_node_->id(),
                                              std::move(req), opts));
  }

  Result<S3CreateBucketResp> make_bucket(rpc::Node& node, ClientId user,
                                         const std::string& name) {
    S3CreateBucketReq mk;
    mk.bucket = name;
    return as<S3CreateBucketReq, S3CreateBucketResp>(node, user,
                                                     std::move(mk));
  }

  /// PUT of a synthetic object whose chunk contents are named by ids.
  Result<S3PutObjectResp> put_ids(rpc::Node& node, ClientId user,
                                  const std::string& bucket,
                                  const std::string& key,
                                  std::vector<std::uint64_t> ids,
                                  std::uint64_t tail = kChunk) {
    S3PutObjectReq put;
    put.bucket = bucket;
    put.key = key;
    put.payload.size = (ids.size() - 1) * kChunk + tail;
    for (std::uint64_t id : ids) {
      put.chunk_sums.push_back(fnv1a_u64(id));
    }
    put.payload.checksum = fnv1a_u64(put.payload.size);
    for (std::uint64_t s : put.chunk_sums) {
      put.payload.checksum = hash_combine(put.payload.checksum, s);
    }
    return as<S3PutObjectReq, S3PutObjectResp>(node, user, std::move(put));
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
  rpc::Node* gw_node_;
  std::unique_ptr<S3Gateway> gateway_;
  rpc::Node* alice_node_;
  rpc::Node* bob_node_;
  const ClientId alice_{101};
  const ClientId bob_{102};
};

TEST_F(GatewayDedupTest, CrossObjectDedupSkipsProviderWrites) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "b").ok());

  auto a = put_ids(*alice_node_, alice_, "b", "one", {1, 2, 3, 4});
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  EXPECT_EQ(a.value().chunks, 4u);
  EXPECT_EQ(a.value().chunks_deduped, 0u);
  EXPECT_EQ(gateway_->stats().dedup_misses, 4u);
  EXPECT_EQ(gateway_->stats().bytes_to_providers, 4 * kChunk);

  // Same content under a different key: zero new provider bytes.
  auto b = put_ids(*alice_node_, alice_, "b", "two", {1, 2, 3, 4});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().chunks_deduped, 4u);
  EXPECT_EQ(gateway_->stats().dedup_hits, 4u);
  EXPECT_EQ(gateway_->stats().bytes_to_providers, 4 * kChunk);
  EXPECT_EQ(gateway_->stats().bytes_saved, 4 * kChunk);
  EXPECT_EQ(gateway_->index().size(), 4u);

  // Both read back with their own etags.
  for (const char* key : {"one", "two"}) {
    S3GetObjectReq get;
    get.bucket = "b";
    get.key = key;
    auto got = as<S3GetObjectReq, S3GetObjectResp>(*alice_node_, alice_, get);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().payload.size, 4 * kChunk);
  }
}

TEST_F(GatewayDedupTest, CrossTenantDedupSharesChunks) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "ba").ok());
  ASSERT_TRUE(make_bucket(*bob_node_, bob_, "bb").ok());
  ASSERT_TRUE(put_ids(*alice_node_, alice_, "ba", "k", {7, 8}).ok());
  auto b = put_ids(*bob_node_, bob_, "bb", "k", {7, 8});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().chunks_deduped, 2u);
  EXPECT_EQ(gateway_->index().size(), 2u);
  // Each shared chunk carries one ref per manifest occurrence.
  const auto* e = gateway_->index().find(hash_combine(fnv1a_u64(7), kChunk));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->refs, 2u);
}

TEST_F(GatewayDedupTest, RealBytesSurviveDedup) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "b").ok());
  std::vector<std::uint8_t> content(2'500'000);
  for (std::size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<std::uint8_t>(i * 17);
  }
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "first";
  put.payload = blob::Payload::from_bytes(content);
  ASSERT_TRUE(
      (as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put)).ok());
  put.key = "second";
  put.payload = blob::Payload::from_bytes(content);
  auto second =
      as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().chunks_deduped, second.value().chunks);

  // The deduped copy reads back byte-identical.
  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "second";
  auto got = as<S3GetObjectReq, S3GetObjectResp>(*alice_node_, alice_, get);
  ASSERT_TRUE(got.ok());
  ASSERT_NE(got.value().payload.bytes, nullptr);
  EXPECT_EQ(*got.value().payload.bytes, content);
}

TEST_F(GatewayDedupTest, RefcountHoldsChunksWhileSharersLive) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "b").ok());
  ASSERT_TRUE(put_ids(*alice_node_, alice_, "b", "x", {1, 2}).ok());
  ASSERT_TRUE(put_ids(*alice_node_, alice_, "b", "y", {2, 3}).ok());
  EXPECT_EQ(gateway_->index().size(), 3u);

  // Deleting x reclaims chunk 1 only: chunk 2 still backs y.
  S3DeleteObjectReq del;
  del.bucket = "b";
  del.key = "x";
  ASSERT_TRUE(
      (as<S3DeleteObjectReq, S3DeleteObjectResp>(*alice_node_, alice_, del))
          .ok());
  EXPECT_EQ(gateway_->index().size(), 2u);
  EXPECT_EQ(gateway_->stats().chunks_reclaimed, 1u);
  EXPECT_EQ(gateway_->stats().bytes_reclaimed, kChunk);

  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "y";
  EXPECT_TRUE(
      (as<S3GetObjectReq, S3GetObjectResp>(*alice_node_, alice_, get)).ok());

  // Overwriting y with {3, 4} releases {2, 3}: 2 dies, 3 is re-shared by
  // the new manifest, 4 is stored fresh.
  ASSERT_TRUE(put_ids(*alice_node_, alice_, "b", "y", {3, 4}).ok());
  EXPECT_EQ(gateway_->index().size(), 2u);
  EXPECT_EQ(gateway_->stats().chunks_reclaimed, 2u);
  EXPECT_EQ(
      gateway_->index().find(hash_combine(fnv1a_u64(2), kChunk)), nullptr);
  EXPECT_NE(
      gateway_->index().find(hash_combine(fnv1a_u64(3), kChunk)), nullptr);
}

TEST_F(GatewayDedupTest, DuplicateChunksWithinOneObject) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "b").ok());
  auto r = put_ids(*alice_node_, alice_, "b", "k", {9, 9, 9});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().chunks, 3u);
  // One stored, two shared within the same manifest.
  EXPECT_EQ(r.value().chunks_deduped, 2u);
  EXPECT_EQ(gateway_->index().size(), 1u);
  const auto* e = gateway_->index().find(hash_combine(fnv1a_u64(9), kChunk));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->refs, 3u);

  S3DeleteObjectReq del;
  del.bucket = "b";
  del.key = "k";
  ASSERT_TRUE(
      (as<S3DeleteObjectReq, S3DeleteObjectResp>(*alice_node_, alice_, del))
          .ok());
  EXPECT_EQ(gateway_->index().size(), 0u);
  EXPECT_EQ(gateway_->stats().chunks_reclaimed, 1u);
}

TEST_F(GatewayDedupTest, DeltaSyncShipsOnlyChangedChunks) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "b").ok());
  auto base = put_ids(*alice_node_, alice_, "b", "k", {1, 2, 3, 4});
  ASSERT_TRUE(base.ok());

  S3PutDeltaReq delta;
  delta.bucket = "b";
  delta.key = "k";
  delta.base_etag = base.value().etag;
  delta.new_size = 4 * kChunk;
  delta.new_etag = 0xD417A;
  S3DeltaChunk changed;
  changed.index = 2;
  changed.payload.size = kChunk;
  changed.payload.checksum = fnv1a_u64(33);
  delta.chunks.push_back(changed);
  auto r = as<S3PutDeltaReq, S3PutDeltaResp>(*alice_node_, alice_, delta);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().chunks_shipped, 1u);
  EXPECT_EQ(r.value().chunks_shared, 3u);
  EXPECT_GT(r.value().version, base.value().version);
  EXPECT_EQ(gateway_->stats().delta_bytes_shipped, kChunk);
  EXPECT_EQ(gateway_->stats().delta_bytes_shared, 3 * kChunk);
  // Old chunk 3 was replaced and reclaimed; shared chunks survive.
  EXPECT_EQ(gateway_->index().size(), 4u);
  EXPECT_EQ(
      gateway_->index().find(hash_combine(fnv1a_u64(3), kChunk)), nullptr);

  S3HeadObjectReq head;
  head.bucket = "b";
  head.key = "k";
  auto info = as<S3HeadObjectReq, S3HeadObjectResp>(*alice_node_, alice_,
                                                    head);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().info.etag, 0xD417Au);

  // A delta against a stale etag is refused: the client must re-diff.
  auto stale = as<S3PutDeltaReq, S3PutDeltaResp>(*alice_node_, alice_, delta);
  EXPECT_EQ(stale.code(), Errc::conflict);
}

TEST_F(GatewayDedupTest, DeltaValidatesShape) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "b").ok());
  auto base = put_ids(*alice_node_, alice_, "b", "k", {1, 2});
  ASSERT_TRUE(base.ok());

  // Delta against a missing object.
  S3PutDeltaReq missing;
  missing.bucket = "b";
  missing.key = "nope";
  missing.new_size = kChunk;
  EXPECT_EQ(
      (as<S3PutDeltaReq, S3PutDeltaResp>(*alice_node_, alice_, missing))
          .code(),
      Errc::not_found);

  // Growing the object without shipping the new slot is rejected.
  S3PutDeltaReq grow;
  grow.bucket = "b";
  grow.key = "k";
  grow.base_etag = base.value().etag;
  grow.new_size = 3 * kChunk;
  EXPECT_EQ(
      (as<S3PutDeltaReq, S3PutDeltaResp>(*alice_node_, alice_, grow)).code(),
      Errc::invalid_argument);

  // A shipped chunk whose size does not match its slot is rejected.
  S3PutDeltaReq bad;
  bad.bucket = "b";
  bad.key = "k";
  bad.base_etag = base.value().etag;
  bad.new_size = 2 * kChunk;
  S3DeltaChunk c;
  c.index = 0;
  c.payload.size = kChunk / 2;
  c.payload.checksum = 1;
  bad.chunks.push_back(c);
  EXPECT_EQ(
      (as<S3PutDeltaReq, S3PutDeltaResp>(*alice_node_, alice_, bad)).code(),
      Errc::invalid_argument);
}

class GatewayDedupOffTest : public GatewayDedupTest {
 protected:
  GatewayDedupOffTest() : GatewayDedupTest(/*dedup=*/false) {}
};

TEST_F(GatewayDedupOffTest, AblationStoresEveryChunk) {
  ASSERT_TRUE(make_bucket(*alice_node_, alice_, "b").ok());
  ASSERT_TRUE(put_ids(*alice_node_, alice_, "b", "one", {1, 2}).ok());
  auto again = put_ids(*alice_node_, alice_, "b", "two", {1, 2});
  ASSERT_TRUE(again.ok());
  // Identical content, but with dedup off every chunk pays a provider
  // write and gets its own index entry.
  EXPECT_EQ(again.value().chunks_deduped, 0u);
  EXPECT_EQ(gateway_->stats().dedup_hits, 0u);
  EXPECT_EQ(gateway_->stats().bytes_to_providers, 4 * kChunk);
  EXPECT_EQ(gateway_->index().size(), 4u);

  // Refcounting still works: deleting one copy reclaims only its chunks.
  S3DeleteObjectReq del;
  del.bucket = "b";
  del.key = "one";
  ASSERT_TRUE(
      (as<S3DeleteObjectReq, S3DeleteObjectResp>(*alice_node_, alice_, del))
          .ok());
  EXPECT_EQ(gateway_->index().size(), 2u);
  S3GetObjectReq get;
  get.bucket = "b";
  get.key = "two";
  EXPECT_TRUE(
      (as<S3GetObjectReq, S3GetObjectResp>(*alice_node_, alice_, get)).ok());
}

}  // namespace
}  // namespace bs::cloud
