// Multipart upload: out-of-order and concurrent part ingest, per-part
// resume after a crashed/retried part, validation at complete, and chunk
// release on abort/replace.
#include <gtest/gtest.h>

#include "blob/deployment.hpp"
#include "cloud/gateway.hpp"
#include "test_util.hpp"

namespace bs::cloud {
namespace {

constexpr std::uint64_t kChunk = 1 * units::MB;

class MultipartTest : public ::testing::Test {
 protected:
  MultipartTest() {
    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = 4;
    cfg.metadata_providers = 2;
    dep_ = std::make_unique<blob::Deployment>(sim_, cfg);
    gw_node_ = dep_->cluster().add_node(0);
    GatewayOptions opts;
    opts.object_chunk_size = kChunk;
    gateway_ = std::make_unique<S3Gateway>(*gw_node_, dep_->endpoints(),
                                           opts);
    alice_node_ = dep_->cluster().add_node(1);
    bob_node_ = dep_->cluster().add_node(1);
  }

  template <class Req, class Resp>
  Result<Resp> as(rpc::Node& node, ClientId user, Req req) {
    rpc::CallOptions opts;
    opts.client = user;
    return test::run_task(
        sim_, dep_->cluster().call<Req, Resp>(node, gw_node_->id(),
                                              std::move(req), opts));
  }

  std::uint64_t start_upload(const std::string& key) {
    S3CreateMultipartReq mk;
    mk.bucket = "b";
    mk.key = key;
    auto r = as<S3CreateMultipartReq, S3CreateMultipartResp>(*alice_node_,
                                                             alice_, mk);
    EXPECT_TRUE(r.ok());
    return r.ok() ? r.value().upload_id : 0;
  }

  S3UploadPartReq make_part(const std::string& key, std::uint64_t upload_id,
                            std::uint32_t part_number,
                            std::vector<std::uint64_t> ids,
                            std::uint64_t tail = kChunk) {
    S3UploadPartReq up;
    up.bucket = "b";
    up.key = key;
    up.upload_id = upload_id;
    up.part_number = part_number;
    up.payload.size = (ids.size() - 1) * kChunk + tail;
    for (std::uint64_t id : ids) up.chunk_sums.push_back(fnv1a_u64(id));
    up.payload.checksum = fnv1a_u64(up.payload.size);
    for (std::uint64_t s : up.chunk_sums) {
      up.payload.checksum = hash_combine(up.payload.checksum, s);
    }
    return up;
  }

  void SetUp() override {
    S3CreateBucketReq mk;
    mk.bucket = "b";
    ASSERT_TRUE((as<S3CreateBucketReq, S3CreateBucketResp>(*alice_node_,
                                                           alice_, mk))
                    .ok());
  }

  sim::Simulation sim_;
  std::unique_ptr<blob::Deployment> dep_;
  rpc::Node* gw_node_;
  std::unique_ptr<S3Gateway> gateway_;
  rpc::Node* alice_node_;
  rpc::Node* bob_node_;
  const ClientId alice_{101};
  const ClientId bob_{102};
};

TEST_F(MultipartTest, OutOfOrderPartsAssembleInPartOrder) {
  const std::uint64_t id = start_upload("k");
  // Upload parts 3, 1, 2 — completion must assemble 1, 2, 3.
  for (std::uint32_t no : {3u, 1u, 2u}) {
    auto up = make_part("k", id, no, {no * 10, no * 10 + 1},
                        no == 3 ? kChunk / 2 : kChunk);
    auto r = as<S3UploadPartReq, S3UploadPartResp>(*alice_node_, alice_, up);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_FALSE(r.value().resumed);
  }
  S3CompleteMultipartReq fin;
  fin.bucket = "b";
  fin.key = "k";
  fin.upload_id = id;
  fin.part_count = 3;
  auto done = as<S3CompleteMultipartReq, S3CompleteMultipartResp>(
      *alice_node_, alice_, fin);
  ASSERT_TRUE(done.ok()) << done.error().to_string();
  EXPECT_EQ(done.value().size, 5 * kChunk + kChunk / 2);
  EXPECT_EQ(done.value().version, 1u);

  S3HeadObjectReq head;
  head.bucket = "b";
  head.key = "k";
  auto info = as<S3HeadObjectReq, S3HeadObjectResp>(*alice_node_, alice_,
                                                    head);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().info.size, done.value().size);
  EXPECT_EQ(info.value().info.etag, done.value().etag);
  // The upload is gone; a second complete is not found.
  EXPECT_EQ((as<S3CompleteMultipartReq, S3CompleteMultipartResp>(
                 *alice_node_, alice_, fin))
                .code(),
            Errc::not_found);
}

TEST_F(MultipartTest, ConcurrentPartsAllLand) {
  const std::uint64_t id = start_upload("k");
  const std::uint32_t parts = 6;
  std::vector<Result<S3UploadPartResp>> results(
      parts, Result<S3UploadPartResp>{Errc::internal});
  for (std::uint32_t p = 0; p < parts; ++p) {
    auto up = make_part("k", id, p + 1, {100 + p, 200 + p});
    rpc::CallOptions opts;
    opts.client = alice_;
    sim_.spawn([](rpc::Cluster& c, rpc::Node& n, NodeId gw,
                  S3UploadPartReq req, rpc::CallOptions o,
                  Result<S3UploadPartResp>& slot) -> sim::Task<void> {
      slot = co_await c.call<S3UploadPartReq, S3UploadPartResp>(
          n, gw, std::move(req), o);
    }(dep_->cluster(), *alice_node_, gw_node_->id(), std::move(up), opts,
      results[p]));
  }
  sim_.run_until(sim_.now() + simtime::minutes(2));
  for (const auto& r : results) ASSERT_TRUE(r.ok());

  S3CompleteMultipartReq fin;
  fin.bucket = "b";
  fin.key = "k";
  fin.upload_id = id;
  fin.part_count = parts;
  auto done = as<S3CompleteMultipartReq, S3CompleteMultipartResp>(
      *alice_node_, alice_, fin);
  ASSERT_TRUE(done.ok()) << done.error().to_string();
  EXPECT_EQ(done.value().size, 2ull * parts * kChunk);
  EXPECT_EQ(gateway_->index().size(), 2ull * parts);
}

TEST_F(MultipartTest, RetriedPartResumesWithoutReingest) {
  const std::uint64_t id = start_upload("k");
  auto up = make_part("k", id, 1, {1, 2});
  ASSERT_TRUE(
      (as<S3UploadPartReq, S3UploadPartResp>(*alice_node_, alice_, up)).ok());
  const std::uint64_t ingested = gateway_->stats().chunks_ingested;

  // The client crashed before seeing the ack and retries the same part.
  auto retry = as<S3UploadPartReq, S3UploadPartResp>(*alice_node_, alice_,
                                                     up);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry.value().resumed);
  EXPECT_EQ(gateway_->stats().parts_resumed, 1u);
  EXPECT_EQ(gateway_->stats().chunks_ingested, ingested);

  // Replacing the part with different content is a fresh ingest and
  // releases the replaced part's chunks.
  auto replaced = make_part("k", id, 1, {3, 4});
  auto r = as<S3UploadPartReq, S3UploadPartResp>(*alice_node_, alice_,
                                                 replaced);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().resumed);
  EXPECT_EQ(gateway_->index().size(), 2u);
  EXPECT_EQ(gateway_->index().find(hash_combine(fnv1a_u64(1), kChunk)),
            nullptr);
}

TEST_F(MultipartTest, CompleteValidatesPartSet) {
  const std::uint64_t id = start_upload("k");
  ASSERT_TRUE((as<S3UploadPartReq, S3UploadPartResp>(
                   *alice_node_, alice_, make_part("k", id, 1, {1, 2})))
                  .ok());
  // Part 3 committed but part 2 missing.
  ASSERT_TRUE((as<S3UploadPartReq, S3UploadPartResp>(
                   *alice_node_, alice_, make_part("k", id, 3, {5, 6})))
                  .ok());
  S3CompleteMultipartReq fin;
  fin.bucket = "b";
  fin.key = "k";
  fin.upload_id = id;
  fin.part_count = 3;
  EXPECT_EQ((as<S3CompleteMultipartReq, S3CompleteMultipartResp>(
                 *alice_node_, alice_, fin))
                .code(),
            Errc::invalid_argument);

  // A non-final part that is not chunk-aligned cannot be assembled.
  ASSERT_TRUE((as<S3UploadPartReq, S3UploadPartResp>(
                   *alice_node_, alice_,
                   make_part("k", id, 2, {3, 4}, kChunk / 2)))
                  .ok());
  EXPECT_EQ((as<S3CompleteMultipartReq, S3CompleteMultipartResp>(
                 *alice_node_, alice_, fin))
                .code(),
            Errc::invalid_argument);

  // Part numbers are 1-based and parts cannot be empty.
  auto zero = make_part("k", id, 0, {9});
  EXPECT_EQ(
      (as<S3UploadPartReq, S3UploadPartResp>(*alice_node_, alice_, zero))
          .code(),
      Errc::invalid_argument);
}

TEST_F(MultipartTest, AbortReleasesChunks) {
  const std::uint64_t id = start_upload("k");
  ASSERT_TRUE((as<S3UploadPartReq, S3UploadPartResp>(
                   *alice_node_, alice_, make_part("k", id, 1, {1, 2})))
                  .ok());
  EXPECT_EQ(gateway_->index().size(), 2u);

  S3AbortMultipartReq abort;
  abort.bucket = "b";
  abort.key = "k";
  abort.upload_id = id;
  ASSERT_TRUE((as<S3AbortMultipartReq, S3AbortMultipartResp>(*alice_node_,
                                                             alice_, abort))
                  .ok());
  EXPECT_EQ(gateway_->index().size(), 0u);
  EXPECT_EQ(gateway_->stats().chunks_reclaimed, 2u);
  // Parts against the aborted upload are gone.
  EXPECT_EQ((as<S3UploadPartReq, S3UploadPartResp>(
                 *alice_node_, alice_, make_part("k", id, 2, {3})))
                .code(),
            Errc::not_found);
}

TEST_F(MultipartTest, OnlyTheOwnerUploadsParts) {
  const std::uint64_t id = start_upload("k");
  // Bob gets write on the bucket but is not the upload's owner.
  S3SetAclReq grant;
  grant.bucket = "b";
  grant.grantee = bob_;
  grant.permission = Permission::read_write;
  ASSERT_TRUE(
      (as<S3SetAclReq, S3SetAclResp>(*alice_node_, alice_, grant)).ok());
  EXPECT_EQ((as<S3UploadPartReq, S3UploadPartResp>(
                 *bob_node_, bob_, make_part("k", id, 1, {1})))
                .code(),
            Errc::permission_denied);
  S3CompleteMultipartReq fin;
  fin.bucket = "b";
  fin.key = "k";
  fin.upload_id = id;
  fin.part_count = 1;
  EXPECT_EQ((as<S3CompleteMultipartReq, S3CompleteMultipartResp>(*bob_node_,
                                                                 bob_, fin))
                .code(),
            Errc::permission_denied);
}

TEST_F(MultipartTest, MultipartSharesChunksWithDedup) {
  // A part whose chunks were already stored by a plain PUT pays nothing.
  S3PutObjectReq put;
  put.bucket = "b";
  put.key = "existing";
  put.payload.size = 2 * kChunk;
  put.chunk_sums = {fnv1a_u64(1), fnv1a_u64(2)};
  put.payload.checksum = 0xABC;
  ASSERT_TRUE(
      (as<S3PutObjectReq, S3PutObjectResp>(*alice_node_, alice_, put)).ok());

  const std::uint64_t id = start_upload("k");
  auto r = as<S3UploadPartReq, S3UploadPartResp>(
      *alice_node_, alice_, make_part("k", id, 1, {1, 2}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().chunks_deduped, 2u);
  EXPECT_EQ(gateway_->index().size(), 2u);
}

}  // namespace
}  // namespace bs::cloud
