// Seeded chaos harness for the fault-injection plane (ctest label: chaos).
// Each seed derives a random fault schedule — provider crashes (some losing
// their stores), a site partition, link degradation with probabilistic
// drops and latency spikes, and a disk slowdown — and replays a concurrent
// append workload under it. Invariants:
//   * replaying the same seed twice is bit-identical (digest over every
//     operation outcome, the published-version inventory, full-version
//     reads and the cluster's fault/retry counters);
//   * every published blob version is fully readable after the dust
//     settles, even when writers crashed mid-write or mid-publish;
//   * the RPC retry layer is load-bearing: the same schedules replayed
//     with retries disabled lose strictly more writes.
#include <gtest/gtest.h>

#include <vector>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

struct ChaosOutcome {
  std::uint64_t digest{0};
  std::size_t attempted{0};
  std::size_t succeeded{0};
  std::size_t published{0};
  std::size_t unreadable_versions{0};
  std::uint64_t faults_applied{0};
  std::uint64_t calls_retried{0};
  std::uint64_t messages_dropped{0};
};

ChaosOutcome run_chaos(std::uint64_t seed, bool retries_enabled) {
  sim::Simulation sim;

  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.fault_seed = seed ^ 0xF00Dull;
  // Short leases: a writer that crashes mid-write must not stall ordered
  // publication for the rest of the run.
  cfg.vm_options.write_lease = simtime::seconds(30);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  blob::Deployment dep(sim, cfg);

  blob::ClientConfig ccfg;
  if (!retries_enabled) ccfg.retry.max_attempts = 1;
  const int n_clients = 4;
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client(ccfg));

  auto blob = test::run_task(
      sim, clients[0]->create(4 * units::MB, /*replication=*/2));
  EXPECT_TRUE(blob.ok());

  // Fault schedule: bounded so the invariants stay checkable — at most one
  // store-losing crash (below the replication factor), everything healed
  // and restarted before the quiescent tail.
  fault::FaultPlane plane(dep.cluster(), seed * 31 + 7);
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(4);
  so.quiesce_fraction = 0.7;
  for (auto& p : dep.providers()) so.crashable.push_back(p->id());
  so.crashes = 3;
  so.max_wipe_crashes = 1;
  so.site_count = cfg.sites;
  so.partitions = 1;
  so.degrades = 2;
  so.disk_slowdowns = 1;
  const auto schedule = fault::random_schedule(seed * 13 + 5, so);
  plane.schedule_all(schedule);

  // Workload: each client issues 4 appends at random times in the faulted
  // window, so writes race crashes, partitions and drops.
  struct Op {
    SimTime at{0};
    std::uint64_t bytes{0};
    std::uint64_t content{0};
    Result<blob::WriteReceipt> result{Errc::internal};
  };
  Rng wl(seed ^ 0xC0FFEEull);
  std::vector<Op> ops(static_cast<std::size_t>(n_clients) * 4);
  for (auto& op : ops) {
    op.at = simtime::millis(wl.uniform(0, 150000));
    op.bytes = (1 + wl.next_below(3)) * 4 * units::MB;
    op.content = wl.next_u64();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 Op& op) -> sim::Task<void> {
      co_await s.delay_until(op.at);
      op.result = co_await cl.append(
          b, blob::Payload::synthetic(op.bytes, op.content));
    }(sim, *clients[i % n_clients], blob.value(), ops[i]));
  }

  sim.run_until(simtime::minutes(6));

  ChaosOutcome out;
  out.attempted = ops.size();
  test::Digest dg;
  for (const auto& op : ops) {
    dg.mix(static_cast<std::uint64_t>(op.result.code()));
    if (op.result.ok()) {
      ++out.succeeded;
      dg.mix(op.result.value().version);
      dg.mix(op.result.value().offset);
      dg.mix(op.result.value().size);
      dg.mix_signed(op.result.value().duration);
    }
  }

  // Published-version inventory + the core invariant: every published
  // version must be fully readable now that all faults are healed.
  auto versions = test::run_task(sim, clients[0]->versions(blob.value()));
  EXPECT_TRUE(versions.ok());
  if (versions.ok()) {
    for (const auto& v : versions.value()) {
      if (v.version == 0) continue;  // the empty initial version
      ++out.published;
      dg.mix(v.version);
      dg.mix(v.size);
      auto read = test::run_task(
          sim, clients[1]->read(blob.value(), 0, v.size, v.version));
      if (!read.ok()) {
        ++out.unreadable_versions;
        continue;
      }
      dg.mix(read.value().bytes);
    }
  }

  dg.mix(out.faults_applied = plane.faults_applied());
  dg.mix(out.calls_retried = dep.cluster().calls_retried());
  dg.mix(out.messages_dropped = dep.cluster().messages_dropped());
  dg.mix(dep.cluster().calls_timed_out());
  dg.mix(dep.version_manager().leases_expired());
  dg.mix(static_cast<std::uint64_t>(sim.now()));
  out.digest = dg.value();
  return out;
}

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeeds, ReplayIsBitIdenticalAndPublishedVersionsStayReadable) {
  const std::uint64_t seed = GetParam();
  const ChaosOutcome a = run_chaos(seed, /*retries_enabled=*/true);
  const ChaosOutcome b = run_chaos(seed, /*retries_enabled=*/true);

  // Determinism: the same seed replays bit-identically.
  EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
  EXPECT_EQ(a.succeeded, b.succeeded) << "seed " << seed;
  EXPECT_EQ(a.calls_retried, b.calls_retried) << "seed " << seed;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << "seed " << seed;

  // Liveness: the system keeps making progress under the schedule.
  EXPECT_GT(a.succeeded, 0u) << "seed " << seed;
  EXPECT_GT(a.faults_applied, 0u) << "seed " << seed;
  EXPECT_GE(a.published, a.succeeded) << "seed " << seed;

  // Safety: no published version is ever torn or unreadable.
  EXPECT_EQ(a.unreadable_versions, 0u) << "seed " << seed;
  EXPECT_EQ(b.unreadable_versions, 0u) << "seed " << seed;
}

// 50 seeded schedules in the tier-1/chaos gate.
INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

TEST(ChaosAggregate, RetryLayerIsLoadBearing) {
  // Replay a band of schedules with and without the RPC retry layer. The
  // no-retry runs must lose strictly more writes overall (drops and
  // timeouts become hard failures), while the safety invariant — published
  // versions stay readable — holds either way.
  std::size_t with_retries = 0;
  std::size_t without_retries = 0;
  std::size_t attempted = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ChaosOutcome on = run_chaos(seed, /*retries_enabled=*/true);
    const ChaosOutcome off = run_chaos(seed, /*retries_enabled=*/false);
    with_retries += on.succeeded;
    without_retries += off.succeeded;
    attempted += on.attempted;
    EXPECT_EQ(on.unreadable_versions, 0u) << "seed " << seed;
    EXPECT_EQ(off.unreadable_versions, 0u) << "seed " << seed;
  }
  EXPECT_GT(with_retries, without_retries)
      << "retries recovered no writes across " << attempted << " appends";
  // And retries recover most of the workload.
  EXPECT_GE(with_retries * 10, attempted * 7);
}

}  // namespace
}  // namespace bs
