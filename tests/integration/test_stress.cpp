// Long-haul mixed-workload stress: many clients doing writes, reads,
// appends, trims and deletes concurrently with the full autonomic stack
// running, then a sweep of global invariants.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/elasticity.hpp"
#include "core/removal.hpp"
#include "core/replication.hpp"
#include "mon/layer.hpp"
#include "test_util.hpp"
#include "workload/clients.hpp"

namespace bs {
namespace {

TEST(Stress, MixedWorkloadWithFullAutonomicStack) {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 2ull * units::GB;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService intro(*intro_node);
  intro.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();

  core::AutonomicController controller(dep, intro);
  controller.add_module(std::make_unique<core::ElasticityModule>());
  controller.add_module(std::make_unique<core::ReplicationModule>());
  core::RemovalOptions ropts;
  ropts.keep_versions = 6;
  controller.add_module(std::make_unique<core::RemovalModule>(ropts));
  controller.executor().set_provider_added_hook(
      [&monitoring](blob::DataProvider& p) {
        monitoring.attach_provider(p);
      });
  controller.start();

  // 10 clients: 4 dedicated writers, 3 mixed write+read, 3 readers on a
  // shared hot blob.
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < 10; ++i) {
    clients.push_back(dep.add_client());
    monitoring.attach_client(*clients.back());
  }
  auto hot = test::run_task(sim, clients[0]->create(4 * units::MB, 2));
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(test::run_task(
                  sim, clients[0]->write(
                           *hot, 0,
                           blob::Payload::synthetic(64 * units::MB, 7)))
                  .ok());

  std::vector<workload::ClientRunStats> stats(10);
  for (int i = 0; i < 4; ++i) {
    auto blob = test::run_task(sim, clients[i]->create(4 * units::MB));
    workload::WriterOptions w;
    // Bounded volume: 4 x 2 GB fits the 16 GB pool with room for the
    // overwrite writers (an unbounded writer would legitimately exhaust
    // storage faster than elasticity can grow it).
    w.total_bytes = 2ull * units::GB;
    w.op_bytes = 16 * units::MB;
    w.deadline = simtime::minutes(5);
    sim.spawn(workload::Writer::run(*clients[i], blob.value(), w,
                                    &stats[i]));
  }
  for (int i = 4; i < 7; ++i) {
    // Mixed: a writer that repeatedly overwrites the same region (so the
    // removal module trims its history).
    auto blob = test::run_task(sim, clients[i]->create(4 * units::MB));
    sim.spawn([](sim::Simulation& s, blob::BlobClient& c, BlobId b,
                 workload::ClientRunStats& st) -> sim::Task<void> {
      std::uint64_t round = 0;
      while (s.now() < simtime::minutes(5)) {
        auto w = co_await c.write(
            b, 0, blob::Payload::synthetic(8 * units::MB, round++));
        if (w.ok()) {
          ++st.ops_ok;
          st.bytes_done += 8 * units::MB;
        } else {
          ++st.ops_failed;
        }
        co_await s.delay(simtime::seconds(5));
      }
    }(sim, *clients[i], blob.value(), stats[i]));
  }
  for (int i = 7; i < 10; ++i) {
    workload::ReaderOptions r;
    r.loop_forever = true;
    r.op_bytes = 16 * units::MB;
    r.deadline = simtime::minutes(5);
    r.rng_seed = 900 + i;
    sim.spawn(workload::Reader::run(*clients[i], *hot, r, &stats[i]));
  }

  sim.run_until(simtime::minutes(6));

  // Everyone made progress; failure rates are negligible.
  std::uint64_t total_ok = 0, total_failed = 0;
  for (const auto& s : stats) {
    total_ok += s.ops_ok;
    total_failed += s.ops_failed;
  }
  EXPECT_GT(total_ok, 300u);
  EXPECT_LT(total_failed, total_ok / 50 + 3);

  // The removal module kept every overwrite history bounded.
  auto blobs = test::run_task(
      sim, dep.cluster().call<blob::ListBlobsReq, blob::ListBlobsResp>(
               *dep.cluster().node(clients[0]->node().id()),
               dep.endpoints().version_manager, blob::ListBlobsReq{}));
  ASSERT_TRUE(blobs.ok());
  for (const auto& d : blobs.value().blobs) {
    auto versions = test::run_task(sim, clients[0]->versions(d.id));
    ASSERT_TRUE(versions.ok());
    EXPECT_LE(versions.value().size(), 8u)
        << "blob " << d.id.value << " history unbounded";
    // Every surviving blob's latest version is fully readable.
    if (d.latest.size > 0) {
      auto read = test::run_task(
          sim, clients[1]->read(d.id, 0, d.latest.size));
      EXPECT_TRUE(read.ok()) << "blob " << d.id.value << ": "
                             << (read.ok() ? "" : read.error().to_string());
    }
  }

  // Storage accounting is self-consistent on every provider.
  for (auto& p : dep.providers()) {
    EXPECT_LE(p->used(), p->capacity());
  }
  // The controller actually ran and took actions.
  EXPECT_GT(controller.iterations(), 20u);
}

}  // namespace
}  // namespace bs
