// Seeded chaos harness for the geo-replication plane (ctest labels: repl,
// chaos, lanes). Each seed derives a random fault schedule that now leans
// on the long-partition knob — a WAN cut held for tens of sim-seconds
// while the append workload keeps publishing — plus egress-node crashes
// (torn tails, at most one store wipe) layered on the usual provider
// hazards. Invariants:
//   * replaying a seed twice is bit-identical, custody and version-map
//     state included, and the digest survives the lane/thread ablation;
//   * after the dust settles every remote site's version map is coherent
//     against the origin — whatever custody lost, reconciliation found;
//   * every published version stays fully readable (the partitions never
//     cut a write that was acked);
//   * custody accounting balances: nothing is silently lost.
// The file also carries the 30-sim-minute partition acceptance test: a
// WAN cut between two replica sites held for half an hour must surface
// zero failed replication RPCs to clients, and the system must converge
// back to coherence within a bounded reconciliation window after the heal.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "repl/plane.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

struct ReplChaosOutcome {
  std::uint64_t digest{0};
  std::size_t succeeded{0};
  std::size_t published{0};
  std::size_t unreadable_versions{0};
  bool coherent{false};
  std::uint64_t custody_enqueued{0};
  std::uint64_t custody_released{0};
  std::uint64_t custody_dropped{0};
  std::uint64_t heals{0};
  std::uint64_t egress_recoveries{0};
  std::uint64_t faults_applied{0};
};

ReplChaosOutcome run_repl_chaos(std::uint64_t seed, bool lanes_off = false,
                                unsigned threads = 0) {
  // The lane config is read by the Cluster constructor, so the env toggle
  // must bracket Deployment construction.
  if (lanes_off) setenv("BS_SIM_LANES", "off", 1);
  sim::Simulation sim;

  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.fault_seed = seed ^ 0xF00Dull;
  cfg.journal.enabled = true;
  cfg.vm_options.write_lease = simtime::seconds(30);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  blob::Deployment dep(sim, cfg);
  if (lanes_off) unsetenv("BS_SIM_LANES");
  if (threads > 0) sim.set_worker_threads(threads);

  // The plane goes up right after the deployment (before clients), so its
  // egress node ids are stable for the crash schedule below.
  repl::ReplOptions ro;
  ro.egress.journal = cfg.journal;
  ro.reconcile.interval = simtime::seconds(10);
  repl::ReplicationPlane plane(dep.cluster(),
                               dep.version_manager_node().site(), ro);
  plane.attach(dep);
  plane.start();

  const int n_clients = 4;
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());

  auto blob = test::run_task(
      sim, clients[0]->create(4 * units::MB, /*replication=*/2));
  EXPECT_TRUE(blob.ok());

  fault::FaultPlane fp(dep.cluster(), seed * 31 + 7);
  plane.attach_fault_plane(fp);
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(4);
  so.quiesce_fraction = 0.7;
  for (auto& p : dep.providers()) so.crashable.push_back(p->id());
  for (net::SiteId s = 0; s < cfg.sites; ++s) {
    so.crashable.push_back(plane.egress(s).node().id());
  }
  so.crashes = 3;
  so.max_wipe_crashes = 1;
  so.torn_tail_prob = 0.25;
  so.site_count = cfg.sites;
  so.partitions = 1;
  so.long_partitions = 1;
  so.min_long_partition = simtime::seconds(20);
  so.max_long_partition = simtime::seconds(60);
  so.degrades = 1;
  so.disk_slowdowns = 1;
  so.power_losses = 1;
  for (net::SiteId s = 0; s < cfg.sites; ++s) so.power_loss_sites.push_back(s);
  so.worst_case_recovery = simtime::seconds(10);
  fp.schedule_all(fault::random_schedule(seed * 13 + 5, so));

  struct Op {
    SimTime at{0};
    std::uint64_t bytes{0};
    std::uint64_t content{0};
    Result<blob::WriteReceipt> result{Errc::internal};
  };
  Rng wl(seed ^ 0xC0FFEEull);
  std::vector<Op> ops(static_cast<std::size_t>(n_clients) * 4);
  for (auto& op : ops) {
    op.at = simtime::millis(wl.uniform(0, 150000));
    op.bytes = (1 + wl.next_below(3)) * 4 * units::MB;
    op.content = wl.next_u64();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 Op& op) -> sim::Task<void> {
      co_await s.delay_until(op.at);
      op.result = co_await cl.append(
          b, blob::Payload::synthetic(op.bytes, op.content));
    }(sim, *clients[i % n_clients], blob.value(), ops[i]));
  }

  // Active window + fault quiescence, then a custody/reconciliation tail:
  // every partition heals by minute 4; two more minutes of anti-entropy
  // rounds drain whatever custody parked or lost.
  sim.run_until(simtime::minutes(6));
  sim.run_until(simtime::minutes(8));

  ReplChaosOutcome out;
  test::Digest dg;
  for (const auto& op : ops) {
    dg.mix(static_cast<std::uint64_t>(op.result.code()));
    if (op.result.ok()) {
      ++out.succeeded;
      dg.mix(op.result.value().version);
      dg.mix(op.result.value().size);
    }
  }

  auto versions = test::run_task(sim, clients[0]->versions(blob.value()));
  EXPECT_TRUE(versions.ok());
  if (versions.ok()) {
    for (const auto& v : versions.value()) {
      if (v.version == 0) continue;
      ++out.published;
      dg.mix(v.version);
      dg.mix(v.size);
      auto read = test::run_task(
          sim, clients[1]->read(blob.value(), 0, v.size, v.version));
      if (!read.ok()) {
        ++out.unreadable_versions;
        continue;
      }
      dg.mix(read.value().bytes);
    }
  }

  // Replication-plane accounting — all of it part of the replay contract.
  out.coherent = plane.coherent();
  const repl::CustodyQueueStats cs = plane.total_custody_stats();
  out.custody_enqueued = cs.enqueued;
  out.custody_released = cs.released;
  out.custody_dropped = cs.dropped;
  out.heals = plane.heals_observed();
  for (net::SiteId s = 0; s < cfg.sites; ++s) {
    out.egress_recoveries += plane.egress(s).recovery_stats().recoveries;
  }
  dg.mix(out.coherent ? 1 : 0);
  dg.mix(plane.digest());
  dg.mix(cs.enqueued);
  dg.mix(cs.released);
  dg.mix(cs.dropped);
  dg.mix(cs.spilled);
  dg.mix(cs.reforwards);
  dg.mix(out.heals);
  dg.mix(out.egress_recoveries);
  dg.mix(plane.reconciler().rounds());
  dg.mix(plane.reconciler().catch_up_scheduled());
  dg.mix(plane.chunks_routed());
  dg.mix(out.faults_applied = fp.faults_applied());
  dg.mix(dep.cluster().calls_retried());
  dg.mix(dep.cluster().messages_dropped());
  dg.mix(dep.cluster().calls_timed_out());
  dg.mix(static_cast<std::uint64_t>(sim.now()));
  out.digest = dg.value();
  return out;
}

class ReplChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplChaosSeeds, ReplayIsBitIdenticalAndReconciliationConverges) {
  const std::uint64_t seed = GetParam();
  const ReplChaosOutcome a = run_repl_chaos(seed);
  const ReplChaosOutcome b = run_repl_chaos(seed);

  // Determinism, custody and version-map state included.
  EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
  EXPECT_EQ(a.custody_enqueued, b.custody_enqueued) << "seed " << seed;
  EXPECT_EQ(a.heals, b.heals) << "seed " << seed;

  // Disruption tolerance: the workload makes progress, every published
  // version survives readable, and after the heals + anti-entropy tail
  // every remote map is coherent against the origin.
  EXPECT_GT(a.succeeded, 0u) << "seed " << seed;
  EXPECT_EQ(a.unreadable_versions, 0u) << "seed " << seed;
  EXPECT_TRUE(a.coherent) << "seed " << seed;

  // Custody was actually exercised and nothing leaked: every bundle taken
  // into custody was either handed off durably or declared dropped (and
  // drops were re-scheduled by the reconciler — coherence above proves it).
  EXPECT_GT(a.custody_enqueued, 0u) << "seed " << seed;
  EXPECT_GT(a.heals, 0u) << "seed " << seed;
}

// 50 seeded schedules in the repl/chaos gate.
INSTANTIATE_TEST_SUITE_P(Seeds, ReplChaosSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

class ReplChaosAblation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplChaosAblation, StepperAndThreadsNeverChangeReplOutcomes) {
  // Custody drains, map exchanges and catch-up transfers are cross-site
  // by construction — exactly the traffic the sharded-lane stepper
  // reorders most aggressively. All steppers must agree bit-for-bit.
  const std::uint64_t seed = GetParam();
  const ReplChaosOutcome lanes = run_repl_chaos(seed);
  const ReplChaosOutcome single =
      run_repl_chaos(seed, /*lanes_off=*/true);
  const ReplChaosOutcome t1 =
      run_repl_chaos(seed, /*lanes_off=*/false, /*threads=*/1);
  const ReplChaosOutcome t4 =
      run_repl_chaos(seed, /*lanes_off=*/false, /*threads=*/4);
  EXPECT_EQ(lanes.digest, single.digest) << "seed " << seed;
  EXPECT_EQ(lanes.digest, t1.digest) << "seed " << seed;
  EXPECT_EQ(lanes.digest, t4.digest) << "seed " << seed;
  EXPECT_TRUE(lanes.coherent) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(StepperAblation, ReplChaosAblation,
                         ::testing::Values(5ull, 17ull, 41ull));

// ------------------------------------------------- 30-minute partition
// Acceptance scenario from the disruption-tolerance brief: a WAN cut
// between the two replica sites (the control plane stays reachable) held
// for 30 simulated minutes. Clients keep writing throughout; cross-site
// chunk replication is requested against the cut and must be absorbed by
// custody — zero failed replication RPCs surface to any caller. After the
// heal the plane must drain and reconcile within a bounded window.
TEST(ReplPartitionAcceptance, ThirtyMinuteCutIsInvisibleToClients) {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.journal.enabled = true;
  blob::Deployment dep(sim, cfg);

  repl::ReplOptions ro;
  ro.egress.journal = cfg.journal;
  ro.reconcile.interval = simtime::seconds(10);
  repl::ReplicationPlane plane(dep.cluster(),
                               dep.version_manager_node().site(), ro);
  plane.attach(dep);
  plane.start();

  blob::BlobClient* client = dep.add_client();
  // Deployment placement is round-robin, so the first client lands on the
  // origin site — the partition below never cuts its control plane.
  ASSERT_EQ(client->node().site(), plane.origin_site());
  auto blob = test::run_task(
      sim, client->create(4 * units::MB, /*replication=*/2));
  ASSERT_TRUE(blob.ok());

  fault::FaultPlane fp(dep.cluster());
  plane.attach_fault_plane(fp);

  // dp[0] lives on site 1, dp[1] on site 2 (round-robin from site 1).
  blob::DataProvider& src_dp = *dep.providers()[0];
  blob::DataProvider& dst_dp = *dep.providers()[1];
  ASSERT_EQ(src_dp.node().site(), net::SiteId{1});
  ASSERT_EQ(dst_dp.node().site(), net::SiteId{2});

  sim.run_until(simtime::seconds(10));
  fp.partition(1, 2);
  const SimTime cut_at = sim.now();

  // Appends throughout the outage — none may fail.
  struct Op {
    SimTime at{0};
    Result<blob::WriteReceipt> result{Errc::internal};
  };
  std::vector<Op> ops(60);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].at = cut_at + simtime::seconds(5 + 29 * static_cast<double>(i));
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 Op& op) -> sim::Task<void> {
      co_await s.delay_until(op.at);
      op.result = co_await cl.append(
          b, blob::Payload::synthetic(
                 units::MB, static_cast<std::uint64_t>(op.at)));
    }(sim, *client, blob.value(), ops[i]));
  }

  // Cross-site replication requests against the cut: store a chunk on the
  // site-1 provider, then ask it to replicate to site 2. The router hands
  // the copy to custody, so the RPC succeeds instantly despite the cut.
  constexpr std::size_t kPulses = 6;
  std::vector<blob::ChunkKey> pulsed;
  for (std::size_t i = 0; i < kPulses; ++i) {
    sim.run_until(cut_at + simtime::minutes(1 + 4 * static_cast<double>(i)));
    blob::ChunkKey key{BlobId{9000 + i}, 1, i};
    blob::PutChunkReq put;
    put.key = key;
    put.payload = blob::Payload::synthetic(256 * units::KB, 0xAB00 + i);
    auto stored = test::run_task(
        sim, dep.cluster().call<blob::PutChunkReq, blob::PutChunkResp>(
                 client->node(), src_dp.id(), std::move(put)));
    ASSERT_TRUE(stored.ok()) << "pulse " << i;
    blob::ReplicateChunkReq rep;
    rep.key = key;
    rep.target = dst_dp.id();
    auto copied = test::run_task(
        sim,
        dep.cluster().call<blob::ReplicateChunkReq, blob::ReplicateChunkResp>(
            client->node(), src_dp.id(), rep));
    // The acceptance criterion: custody absorbs the cut, the caller never
    // sees a failure.
    EXPECT_TRUE(copied.ok()) << "pulse " << i;
    pulsed.push_back(key);
  }
  EXPECT_EQ(plane.chunks_routed(), kPulses);
  EXPECT_GE(plane.egress(1).queue_depth(2), kPulses);

  // Hold the cut for the full 30 minutes, then heal and time the window
  // back to coherence + empty custody queues.
  sim.run_until(cut_at + simtime::minutes(30));
  for (const Op& op : ops) {
    EXPECT_TRUE(op.result.ok()) << "append during the cut failed";
  }
  fp.heal(1, 2);
  const SimTime healed_at = sim.now();
  const SimDuration bound = simtime::seconds(120);
  while (sim.now() - healed_at < bound &&
         !(plane.coherent() && plane.egress(1).queue_depth() == 0 &&
           plane.egress(2).queue_depth() == 0)) {
    sim.run_until(sim.now() + simtime::seconds(1));
  }
  const SimDuration window = sim.now() - healed_at;

  EXPECT_TRUE(plane.coherent());
  EXPECT_EQ(plane.egress(1).queue_depth(), 0u);
  EXPECT_LT(window, bound);

  // The replicated chunks actually landed on the far side.
  for (const blob::ChunkKey& key : pulsed) {
    blob::GetChunkReq get;
    get.key = key;
    auto fetched = test::run_task(
        sim, dep.cluster().call<blob::GetChunkReq, blob::GetChunkResp>(
                 client->node(), dst_dp.id(), std::move(get)));
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value().payload.size, 256 * units::KB);
  }

  // Custody accounting balances: everything taken was handed off.
  const repl::CustodyQueueStats cs = plane.total_custody_stats();
  EXPECT_EQ(cs.dropped, 0u);
  EXPECT_EQ(cs.enqueued, cs.released);
}

}  // namespace
}  // namespace bs
