// Worker-thread ablation under chaos (ctest label: chaos): replaying a
// seeded fault schedule with the windowed parallel stepper enabled at
// different thread counts must produce bit-identical outcomes. Full-stack
// workloads schedule untagged events, so no window may ever open — the
// thread pool being present must be entirely unobservable. This is the
// end-to-end proof of the window-eligibility rules in lane_runtime.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "sim/simulation.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

std::uint64_t run_faulted_workload(std::uint64_t seed, unsigned threads,
                                   std::uint64_t* windows) {
  sim::Simulation sim;

  blob::DeploymentConfig cfg;
  cfg.sites = 3;  // > 2 lanes, so the windowed stepper is armed
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 2ull * units::GB;
  cfg.fault_seed = seed ^ 0xF00Dull;
  cfg.vm_options.write_lease = simtime::seconds(30);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  blob::Deployment dep(sim, cfg);
  sim.set_worker_threads(threads);

  const int n_clients = 3;
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());

  auto blob = test::run_task(
      sim, clients[0]->create(4 * units::MB, /*replication=*/2));
  EXPECT_TRUE(blob.ok());

  fault::FaultPlane plane(dep.cluster(), seed * 31 + 7);
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(2);
  so.quiesce_fraction = 0.7;
  for (auto& p : dep.providers()) so.crashable.push_back(p->id());
  so.crashes = 2;
  so.max_wipe_crashes = 1;
  so.site_count = cfg.sites;
  so.partitions = 1;
  so.degrades = 1;
  so.disk_slowdowns = 1;
  plane.schedule_all(fault::random_schedule(seed * 13 + 5, so));

  struct Op {
    SimTime at{0};
    std::uint64_t bytes{0};
    std::uint64_t content{0};
    Result<blob::WriteReceipt> result{Errc::internal};
  };
  Rng wl(seed ^ 0xC0FFEEull);
  std::vector<Op> ops(static_cast<std::size_t>(n_clients) * 3);
  for (auto& op : ops) {
    op.at = simtime::millis(wl.uniform(0, 70000));
    op.bytes = (1 + wl.next_below(2)) * 2 * units::MB;
    op.content = wl.next_u64();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 Op& op) -> sim::Task<void> {
      co_await s.delay_until(op.at);
      op.result = co_await cl.append(
          b, blob::Payload::synthetic(op.bytes, op.content));
    }(sim, *clients[i % n_clients], blob.value(), ops[i]));
  }

  sim.run_until(simtime::minutes(3));

  test::Digest dg;
  for (const auto& op : ops) {
    dg.mix(static_cast<std::uint64_t>(op.result.code()));
    if (op.result.ok()) {
      dg.mix(op.result.value().version);
      dg.mix(op.result.value().offset);
      dg.mix_signed(op.result.value().duration);
    }
  }
  dg.mix(plane.faults_applied());
  dg.mix(dep.cluster().calls_retried());
  dg.mix(dep.cluster().messages_dropped());
  dg.mix(static_cast<std::uint64_t>(sim.now()));
  if (windows != nullptr) *windows = sim.windows_run();
  return dg.value();
}

class LaneChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LaneChaosSeeds, ThreadCountNeverChangesFaultedOutcomes) {
  const std::uint64_t seed = GetParam();
  std::uint64_t win0 = 0;
  std::uint64_t win1 = 0;
  std::uint64_t win4 = 0;
  const std::uint64_t serial = run_faulted_workload(seed, 0, &win0);
  const std::uint64_t one = run_faulted_workload(seed, 1, &win1);
  const std::uint64_t four = run_faulted_workload(seed, 4, &win4);
  EXPECT_EQ(serial, one) << "seed " << seed;
  EXPECT_EQ(serial, four) << "seed " << seed;
  // Untagged full-stack traffic must keep every window shut.
  EXPECT_EQ(win0, 0u);
  EXPECT_EQ(win1, 0u);
  EXPECT_EQ(win4, 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerThreadAblation, LaneChaosSeeds,
                         ::testing::Values(3ull, 11ull, 29ull));

}  // namespace
}  // namespace bs
