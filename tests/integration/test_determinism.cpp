// Determinism: the whole point of replacing Grid'5000 with a DES is
// bit-identical replay. Run the same seeded full-stack scenario twice and
// require identical event counts, throughput series, and security actions.
#include <gtest/gtest.h>

#include "mon/layer.hpp"
#include "sec/framework.hpp"
#include "test_util.hpp"
#include "workload/clients.hpp"

namespace bs {
namespace {

struct RunDigest {
  std::uint64_t events{0};
  std::vector<double> throughput;
  std::uint64_t attacker_rejected{0};
  SimTime first_block{0};
  std::uint64_t monitoring_records{0};
  double trust_of_attacker{0};

  bool operator==(const RunDigest& other) const {
    return events == other.events && throughput == other.throughput &&
           attacker_rejected == other.attacker_rejected &&
           first_block == other.first_block &&
           monitoring_records == other.monitoring_records &&
           trust_of_attacker == other.trust_of_attacker;
  }
};

RunDigest run_scenario() {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.node_spec.service_concurrency = 1;
  cfg.node_spec.service_overhead = simtime::millis(5);
  cfg.node_spec.service_queue_limit = 64;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService intro(*intro_node);
  intro.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();
  sec::SecurityFramework security(sim, intro.activity());
  security.attach_deployment(dep);
  security.start();

  blob::BlobClient* honest = dep.add_client();
  monitoring.attach_client(*honest);
  auto blob = test::run_task(sim, honest->create(8 * units::MB));
  workload::ClientRunStats stats;
  workload::ThroughputTracker tracker;
  workload::WriterOptions w;
  w.loop_forever = true;
  w.op_bytes = 16 * units::MB;
  w.deadline = simtime::seconds(90);
  sim.spawn(workload::Writer::run(*honest, *blob, w, &stats, &tracker));

  rpc::Node* attacker_node = dep.cluster().add_node(1);
  std::vector<NodeId> targets;
  for (auto& p : dep.providers()) targets.push_back(p->id());
  workload::AttackerOptions a;
  a.request_rate = 900;
  a.start = simtime::seconds(20);
  a.deadline = simtime::seconds(90);
  workload::AttackerStats astats;
  sim.spawn(workload::DosAttacker::run(*attacker_node, ClientId{666},
                                       targets, a, &astats));

  sim.run_until(simtime::seconds(90));

  RunDigest d;
  d.events = sim.events_processed();
  d.throughput = tracker.mbps_series(0, simtime::seconds(90));
  d.attacker_rejected = astats.rejected;
  d.first_block = astats.first_rejected;
  d.monitoring_records = monitoring.total_records();
  d.trust_of_attacker = security.trust().trust(ClientId{666});
  return d;
}

TEST(Determinism, IdenticalRunsProduceIdenticalDigests) {
  RunDigest a = run_scenario();
  RunDigest b = run_scenario();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.attacker_rejected, b.attacker_rejected);
  EXPECT_EQ(a.first_block, b.first_block);
  EXPECT_EQ(a.monitoring_records, b.monitoring_records);
  EXPECT_DOUBLE_EQ(a.trust_of_attacker, b.trust_of_attacker);
  ASSERT_EQ(a.throughput.size(), b.throughput.size());
  for (std::size_t i = 0; i < a.throughput.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.throughput[i], b.throughput[i]) << "bin " << i;
  }
  // And the scenario did something nontrivial.
  EXPECT_GT(a.events, 100000u);
  EXPECT_GT(a.attacker_rejected, 0u);
}

}  // namespace
}  // namespace bs
