// Determinism: the whole point of replacing Grid'5000 with a DES is
// bit-identical replay. Run the same seeded full-stack scenario twice and
// require identical event counts, throughput series, and security actions.
#include <gtest/gtest.h>

#include "fault/fault_plane.hpp"
#include "mon/layer.hpp"
#include "sec/framework.hpp"
#include "test_util.hpp"
#include "workload/clients.hpp"

namespace bs {
namespace {

struct RunDigest {
  std::uint64_t events{0};
  std::vector<double> throughput;
  std::uint64_t attacker_rejected{0};
  SimTime first_block{0};
  std::uint64_t monitoring_records{0};
  double trust_of_attacker{0};

  bool operator==(const RunDigest& other) const {
    return events == other.events && throughput == other.throughput &&
           attacker_rejected == other.attacker_rejected &&
           first_block == other.first_block &&
           monitoring_records == other.monitoring_records &&
           trust_of_attacker == other.trust_of_attacker;
  }
};

RunDigest run_scenario() {
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.node_spec.service_concurrency = 1;
  cfg.node_spec.service_overhead = simtime::millis(5);
  cfg.node_spec.service_queue_limit = 64;
  blob::Deployment dep(sim, cfg);

  rpc::Node* intro_node = dep.cluster().add_node(0);
  intro::IntrospectionService intro(*intro_node);
  intro.start();
  mon::MonitoringConfig mcfg;
  mcfg.sinks = {intro_node->id()};
  mon::MonitoringLayer monitoring(dep, mcfg);
  monitoring.start();
  sec::SecurityFramework security(sim, intro.activity());
  security.attach_deployment(dep);
  security.start();

  blob::BlobClient* honest = dep.add_client();
  monitoring.attach_client(*honest);
  auto blob = test::run_task(sim, honest->create(8 * units::MB));
  workload::ClientRunStats stats;
  workload::ThroughputTracker tracker;
  workload::WriterOptions w;
  w.loop_forever = true;
  w.op_bytes = 16 * units::MB;
  w.deadline = simtime::seconds(90);
  sim.spawn(workload::Writer::run(*honest, *blob, w, &stats, &tracker));

  rpc::Node* attacker_node = dep.cluster().add_node(1);
  std::vector<NodeId> targets;
  for (auto& p : dep.providers()) targets.push_back(p->id());
  workload::AttackerOptions a;
  a.request_rate = 900;
  a.start = simtime::seconds(20);
  a.deadline = simtime::seconds(90);
  workload::AttackerStats astats;
  sim.spawn(workload::DosAttacker::run(*attacker_node, ClientId{666},
                                       targets, a, &astats));

  sim.run_until(simtime::seconds(90));

  RunDigest d;
  d.events = sim.events_processed();
  d.throughput = tracker.mbps_series(0, simtime::seconds(90));
  d.attacker_rejected = astats.rejected;
  d.first_block = astats.first_rejected;
  d.monitoring_records = monitoring.total_records();
  d.trust_of_attacker = security.trust().trust(ClientId{666});
  return d;
}

TEST(Determinism, IdenticalRunsProduceIdenticalDigests) {
  RunDigest a = run_scenario();
  RunDigest b = run_scenario();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.attacker_rejected, b.attacker_rejected);
  EXPECT_EQ(a.first_block, b.first_block);
  EXPECT_EQ(a.monitoring_records, b.monitoring_records);
  EXPECT_DOUBLE_EQ(a.trust_of_attacker, b.trust_of_attacker);
  ASSERT_EQ(a.throughput.size(), b.throughput.size());
  for (std::size_t i = 0; i < a.throughput.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.throughput[i], b.throughput[i]) << "bin " << i;
  }
  // And the scenario did something nontrivial.
  EXPECT_GT(a.events, 100000u);
  EXPECT_GT(a.attacker_rejected, 0u);
}

std::uint64_t run_faulted_scenario() {
  // Writers racing a nontrivial fault schedule: provider crashes (one
  // losing its store), a partition, degraded links with probabilistic
  // drops, a disk slowdown — plus jittered RPC retries. Everything draws
  // from seeded RNGs, so the digest must replay bit-identically.
  sim::Simulation sim;
  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.fault_seed = 0xDE7E12ull;
  cfg.vm_options.write_lease = simtime::seconds(30);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  blob::Deployment dep(sim, cfg);

  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < 3; ++i) clients.push_back(dep.add_client());
  auto blob = test::run_task(sim, clients[0]->create(4 * units::MB, 2));

  fault::FaultPlane plane(dep.cluster(), /*seed=*/5151);
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(3);
  for (auto& p : dep.providers()) so.crashable.push_back(p->id());
  so.crashes = 3;
  so.max_wipe_crashes = 1;
  so.site_count = cfg.sites;
  so.partitions = 1;
  so.degrades = 2;
  so.disk_slowdowns = 1;
  plane.schedule_all(fault::random_schedule(/*seed=*/777, so));

  Rng wl(0xABCDull);
  struct Op {
    Result<blob::WriteReceipt> result{Errc::internal};
  };
  std::vector<Op> ops(12);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const SimTime at = simtime::millis(wl.uniform(0, 100000));
    const std::uint64_t bytes = (1 + wl.next_below(3)) * 4 * units::MB;
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 SimTime when, std::uint64_t n, std::uint64_t content,
                 Op& op) -> sim::Task<void> {
      co_await s.delay_until(when);
      op.result = co_await cl.append(b, blob::Payload::synthetic(n, content));
    }(sim, *clients[i % clients.size()], blob.value(), at, bytes, i + 1,
      ops[i]));
  }

  sim.run_until(simtime::minutes(5));

  test::Digest dg;
  for (const auto& op : ops) {
    dg.mix(static_cast<std::uint64_t>(op.result.code()));
    if (op.result.ok()) {
      dg.mix(op.result.value().version);
      dg.mix_signed(op.result.value().duration);
    }
  }
  dg.mix(sim.events_processed());
  dg.mix(dep.cluster().calls_retried());
  dg.mix(dep.cluster().calls_timed_out());
  dg.mix(dep.cluster().messages_dropped());
  dg.mix(plane.faults_applied());
  dg.mix(dep.version_manager().leases_expired());
  return dg.value();
}

TEST(Determinism, FaultScheduleReplaysBitIdentically) {
  const std::uint64_t a = run_faulted_scenario();
  const std::uint64_t b = run_faulted_scenario();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bs
