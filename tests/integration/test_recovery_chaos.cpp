// Seeded chaos harness with the persistent-store model enabled (ctest
// labels: recovery, chaos). Each seed derives a random fault schedule that
// now includes journal-specific hazards — torn-tail crashes (power loss
// mid-fsync), one store-losing wipe, and a correlated site-wide power loss
// — and replays a concurrent append workload under it while every stateful
// service journals and replays on restart. Invariants:
//   * replaying the same seed twice is bit-identical, including the
//     recovery counters (replay bytes, torn tails truncated);
//   * the digest is identical with the sharded-lane stepper disabled
//     (BS_SIM_LANES=off) and across worker-thread counts 1 and 4;
//   * every published version is fully readable after the dust settles —
//     crash-recovery never loses an acked write or resurrects a torn one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

struct RecoveryChaosOutcome {
  std::uint64_t digest{0};
  std::size_t attempted{0};
  std::size_t succeeded{0};
  std::size_t published{0};
  std::size_t unreadable_versions{0};
  std::uint64_t recoveries{0};
  std::uint64_t replay_bytes{0};
  std::uint64_t torn_tails{0};
  std::uint64_t faults_applied{0};
};

RecoveryChaosOutcome run_recovery_chaos(std::uint64_t seed,
                                        bool lanes_off = false,
                                        unsigned threads = 0) {
  // The lane config is read by the Cluster constructor, so the env toggle
  // must bracket Deployment construction.
  if (lanes_off) setenv("BS_SIM_LANES", "off", 1);
  sim::Simulation sim;

  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 8;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.fault_seed = seed ^ 0xF00Dull;
  cfg.journal.enabled = true;
  cfg.vm_options.write_lease = simtime::seconds(30);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  blob::Deployment dep(sim, cfg);
  if (lanes_off) unsetenv("BS_SIM_LANES");
  if (threads > 0) sim.set_worker_threads(threads);

  const int n_clients = 4;
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());

  auto blob = test::run_task(
      sim, clients[0]->create(4 * units::MB, /*replication=*/2));
  EXPECT_TRUE(blob.ok());

  // Fault schedule: provider crashes (some torn, at most one wiped — below
  // the replication factor), link faults, a disk slowdown, and one
  // site-wide power loss. worst_case_recovery pads the quiescent tail so
  // the last replay finishes before the readability sweep.
  fault::FaultPlane plane(dep.cluster(), seed * 31 + 7);
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(4);
  so.quiesce_fraction = 0.7;
  for (auto& p : dep.providers()) so.crashable.push_back(p->id());
  so.crashes = 3;
  so.max_wipe_crashes = 1;
  so.torn_tail_prob = 0.25;
  so.site_count = cfg.sites;
  so.partitions = 1;
  so.degrades = 2;
  so.disk_slowdowns = 1;
  so.power_losses = 1;
  for (net::SiteId s = 0; s < cfg.sites; ++s) so.power_loss_sites.push_back(s);
  so.worst_case_recovery = simtime::seconds(10);
  plane.schedule_all(fault::random_schedule(seed * 13 + 5, so));

  struct Op {
    SimTime at{0};
    std::uint64_t bytes{0};
    std::uint64_t content{0};
    Result<blob::WriteReceipt> result{Errc::internal};
  };
  Rng wl(seed ^ 0xC0FFEEull);
  std::vector<Op> ops(static_cast<std::size_t>(n_clients) * 4);
  for (auto& op : ops) {
    op.at = simtime::millis(wl.uniform(0, 150000));
    op.bytes = (1 + wl.next_below(3)) * 4 * units::MB;
    op.content = wl.next_u64();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 Op& op) -> sim::Task<void> {
      co_await s.delay_until(op.at);
      op.result = co_await cl.append(
          b, blob::Payload::synthetic(op.bytes, op.content));
    }(sim, *clients[i % n_clients], blob.value(), ops[i]));
  }

  sim.run_until(simtime::minutes(6));

  RecoveryChaosOutcome out;
  out.attempted = ops.size();
  test::Digest dg;
  for (const auto& op : ops) {
    dg.mix(static_cast<std::uint64_t>(op.result.code()));
    if (op.result.ok()) {
      ++out.succeeded;
      dg.mix(op.result.value().version);
      dg.mix(op.result.value().offset);
      dg.mix(op.result.value().size);
      dg.mix_signed(op.result.value().duration);
    }
  }

  auto versions = test::run_task(sim, clients[0]->versions(blob.value()));
  EXPECT_TRUE(versions.ok());
  if (versions.ok()) {
    for (const auto& v : versions.value()) {
      if (v.version == 0) continue;
      ++out.published;
      dg.mix(v.version);
      dg.mix(v.size);
      auto read = test::run_task(
          sim, clients[1]->read(blob.value(), 0, v.size, v.version));
      if (!read.ok()) {
        ++out.unreadable_versions;
        continue;
      }
      dg.mix(read.value().bytes);
    }
  }

  // Recovery accounting — itself part of the determinism contract.
  auto absorb = [&](const blob::RecoveryStats& rs) {
    out.recoveries += rs.recoveries;
    out.replay_bytes += rs.replay_bytes;
    out.torn_tails += rs.torn_tails_truncated;
  };
  absorb(dep.version_manager().recovery_stats());
  for (const auto& mp : dep.metadata_providers()) absorb(mp->recovery_stats());
  for (const auto& p : dep.providers()) absorb(p->recovery_stats());
  dg.mix(out.recoveries);
  dg.mix(out.replay_bytes);
  dg.mix(out.torn_tails);

  dg.mix(out.faults_applied = plane.faults_applied());
  dg.mix(dep.cluster().calls_retried());
  dg.mix(dep.cluster().messages_dropped());
  dg.mix(dep.cluster().calls_timed_out());
  dg.mix(dep.version_manager().leases_expired());
  dg.mix(static_cast<std::uint64_t>(sim.now()));
  out.digest = dg.value();
  return out;
}

class RecoveryChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoveryChaosSeeds, ReplayIsBitIdenticalAndRecoveryLosesNothing) {
  const std::uint64_t seed = GetParam();
  const RecoveryChaosOutcome a = run_recovery_chaos(seed);
  const RecoveryChaosOutcome b = run_recovery_chaos(seed);

  // Determinism, including the recovery counters.
  EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
  EXPECT_EQ(a.recoveries, b.recoveries) << "seed " << seed;
  EXPECT_EQ(a.replay_bytes, b.replay_bytes) << "seed " << seed;
  EXPECT_EQ(a.torn_tails, b.torn_tails) << "seed " << seed;

  // The journal path was actually exercised: the schedule always restarts
  // what it crashes, and every restart of a journaled service replays.
  EXPECT_GT(a.recoveries, 0u) << "seed " << seed;
  EXPECT_GT(a.faults_applied, 0u) << "seed " << seed;

  // Liveness + safety: progress under faults, no acked write lost and no
  // torn write resurrected.
  EXPECT_GT(a.succeeded, 0u) << "seed " << seed;
  EXPECT_GE(a.published, a.succeeded) << "seed " << seed;
  EXPECT_EQ(a.unreadable_versions, 0u) << "seed " << seed;
  EXPECT_EQ(b.unreadable_versions, 0u) << "seed " << seed;
}

// 50 seeded schedules in the recovery/chaos gate.
INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryChaosSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

class RecoveryChaosAblation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RecoveryChaosAblation, StepperAndThreadsNeverChangeRecoveryOutcomes) {
  // The recovery paths (replay coroutines, fsync barriers, checkpoint
  // writes) must be invisible to the stepper choice: single-heap reference
  // queue, sharded lanes, and the windowed parallel stepper at 1 and 4
  // worker threads all replay bit-identically.
  const std::uint64_t seed = GetParam();
  const RecoveryChaosOutcome lanes = run_recovery_chaos(seed);
  const RecoveryChaosOutcome single =
      run_recovery_chaos(seed, /*lanes_off=*/true);
  const RecoveryChaosOutcome t1 =
      run_recovery_chaos(seed, /*lanes_off=*/false, /*threads=*/1);
  const RecoveryChaosOutcome t4 =
      run_recovery_chaos(seed, /*lanes_off=*/false, /*threads=*/4);
  EXPECT_EQ(lanes.digest, single.digest) << "seed " << seed;
  EXPECT_EQ(lanes.digest, t1.digest) << "seed " << seed;
  EXPECT_EQ(lanes.digest, t4.digest) << "seed " << seed;
  EXPECT_GT(lanes.recoveries, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(StepperAblation, RecoveryChaosAblation,
                         ::testing::Values(5ull, 17ull, 41ull));

}  // namespace
}  // namespace bs
