// Seeded chaos for the S3 gateway (ctest labels: gateway, recovery, chaos,
// lanes). Each seed derives a fault schedule that crashes data providers
// and the gateway itself (some crashes with torn journal tails) plus link
// faults, while the trace-replay workload drives mixed tenant traffic —
// puts, multipart uploads, delta syncs, range gets, pagination, deletes —
// against the journal-backed dedup front. Invariants:
//   * the same seed replays bit-identically, including the trace digest,
//     the gateway's state digest, dedup/reclaim counters and recovery
//     accounting;
//   * the digest is identical with the sharded-lane stepper disabled
//     (BS_SIM_LANES=off) and across worker-thread counts 1 and 4;
//   * once the dust settles every object the gateway lists is fully
//     readable with its recorded etag — refcounted dedup plus crash
//     recovery never reclaims or loses a chunk a live manifest needs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "blob/deployment.hpp"
#include "cloud/gateway.hpp"
#include "fault/fault_plane.hpp"
#include "test_util.hpp"
#include "workload/gateway_trace.hpp"

namespace bs {
namespace {

constexpr std::uint64_t kChunk = 1 * units::MB;

struct GatewayChaosOutcome {
  std::uint64_t digest{0};
  std::uint64_t trace_digest{0};
  std::uint64_t puts{0};
  std::uint64_t failures{0};
  std::uint64_t objects_listed{0};
  std::uint64_t unreadable_objects{0};
  std::uint64_t dedup_hits{0};
  std::uint64_t chunks_reclaimed{0};
  std::uint64_t recoveries{0};
  std::uint64_t faults_applied{0};
  bool trace_done{false};
};

GatewayChaosOutcome run_gateway_chaos(std::uint64_t seed,
                                      bool lanes_off = false,
                                      unsigned threads = 0) {
  // The lane config is read by the Cluster constructor, so the env toggle
  // must bracket Deployment construction.
  if (lanes_off) setenv("BS_SIM_LANES", "off", 1);
  sim::Simulation sim;

  blob::DeploymentConfig cfg;
  cfg.sites = 2;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.fault_seed = seed ^ 0x6A7Eull;
  cfg.journal.enabled = true;
  blob::Deployment dep(sim, cfg);
  if (lanes_off) unsetenv("BS_SIM_LANES");
  if (threads > 0) sim.set_worker_threads(threads);

  rpc::Node* gw_node = dep.cluster().add_node(0);
  cloud::GatewayOptions gopts;
  gopts.object_chunk_size = kChunk;
  gopts.replication = 2;  // a crashed (never wiped) provider loses nothing
  gopts.journal.enabled = true;
  cloud::S3Gateway gateway(*gw_node, dep.endpoints(), gopts);
  rpc::Node* user_node = dep.cluster().add_node(1);

  // Fault schedule: provider + gateway crashes (torn tails, no wipes — the
  // readability invariant below is absolute), link faults and a disk
  // slowdown, all quiesced before the sweep.
  fault::FaultPlane plane(dep.cluster(), seed * 31 + 7);
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(4);
  so.quiesce_fraction = 0.7;
  for (auto& p : dep.providers()) so.crashable.push_back(p->id());
  so.crashable.push_back(gw_node->id());
  so.crashes = 4;
  so.max_wipe_crashes = 0;
  so.torn_tail_prob = 0.3;
  so.site_count = cfg.sites;
  so.partitions = 1;
  so.degrades = 1;
  so.disk_slowdowns = 1;
  so.worst_case_recovery = simtime::seconds(10);
  plane.schedule_all(fault::random_schedule(seed * 13 + 5, so));

  workload::GatewayTraceConfig tcfg;
  tcfg.tenants = 3;
  tcfg.keys_per_tenant = 8;
  tcfg.ops_per_tenant = 15;
  tcfg.chunk_size = kChunk;
  tcfg.max_object_chunks = 4;
  tcfg.multipart_parts = 3;
  tcfg.think_time = simtime::seconds(3);
  tcfg.rng_seed = seed ^ 0x7ACEull;
  workload::GatewayTraceStats tstats;
  GatewayChaosOutcome out;
  sim.spawn([](rpc::Node& n, NodeId gw, workload::GatewayTraceConfig c,
               workload::GatewayTraceStats* st,
               bool& done) -> sim::Task<void> {
    co_await workload::GatewayTrace::run(n, gw, c, st);
    done = true;
  }(*user_node, gw_node->id(), tcfg, &tstats, out.trace_done));

  // Generous tail: crash-window ops ride out their RPC timeouts and the
  // last recovery replays before the sweep.
  sim.run_until(simtime::minutes(10));
  EXPECT_TRUE(out.trace_done) << "seed " << seed;
  EXPECT_FALSE(gateway.recovering()) << "seed " << seed;

  test::Digest dg;
  out.trace_digest = tstats.digest;
  out.puts = tstats.puts + tstats.multipart_puts + tstats.delta_puts;
  out.failures = tstats.failures;
  dg.mix(tstats.digest);
  dg.mix(tstats.puts);
  dg.mix(tstats.multipart_puts);
  dg.mix(tstats.delta_puts);
  dg.mix(tstats.gets);
  dg.mix(tstats.lists);
  dg.mix(tstats.deletes);
  dg.mix(tstats.failures);
  dg.mix(tstats.logical_bytes);
  dg.mix(tstats.wire_bytes);

  // Post-dust readability sweep: everything the gateway still lists must
  // come back whole, under the owning tenant's identity.
  for (std::uint32_t t = 0; t < tcfg.tenants; ++t) {
    rpc::CallOptions copts;
    copts.client = ClientId{tcfg.first_tenant_id + t};
    cloud::S3ListObjectsReq ls;
    ls.bucket = "t" + std::to_string(t);
    auto listed = test::run_task(
        sim, dep.cluster()
                 .call<cloud::S3ListObjectsReq, cloud::S3ListObjectsResp>(
                     *user_node, gw_node->id(), ls, copts));
    dg.mix(static_cast<std::uint64_t>(listed.code()));
    if (!listed.ok()) continue;
    for (const auto& obj : listed.value().objects) {
      ++out.objects_listed;
      dg.mix(fnv1a(obj.key));
      dg.mix(obj.size);
      dg.mix(obj.etag);
      cloud::S3GetObjectReq get;
      get.bucket = ls.bucket;
      get.key = obj.key;
      auto read = test::run_task(
          sim, dep.cluster()
                   .call<cloud::S3GetObjectReq, cloud::S3GetObjectResp>(
                       *user_node, gw_node->id(), get, copts));
      if (!read.ok() || read.value().payload.size != obj.size ||
          read.value().etag != obj.etag) {
        ++out.unreadable_objects;
        continue;
      }
      dg.mix(read.value().payload.checksum);
    }
  }

  // Gateway + dedup accounting, itself part of the determinism contract.
  const cloud::GatewayStats& gs = gateway.stats();
  out.dedup_hits = gs.dedup_hits;
  out.chunks_reclaimed = gs.chunks_reclaimed;
  dg.mix(gateway.state_digest());
  dg.mix(gs.chunks_ingested);
  dg.mix(gs.dedup_hits);
  dg.mix(gs.dedup_misses);
  dg.mix(gs.bytes_to_providers);
  dg.mix(gs.bytes_saved);
  dg.mix(gs.chunks_reclaimed);
  dg.mix(gs.parts_resumed);
  dg.mix(gs.delta_bytes_shipped);
  dg.mix(gs.delta_bytes_shared);

  auto absorb = [&](const blob::RecoveryStats& rs) {
    out.recoveries += rs.recoveries;
    dg.mix(rs.recoveries);
    dg.mix(rs.replay_bytes);
    dg.mix(rs.torn_tails_truncated);
  };
  absorb(gateway.recovery_stats());
  absorb(dep.version_manager().recovery_stats());
  for (const auto& mp : dep.metadata_providers()) absorb(mp->recovery_stats());
  for (const auto& p : dep.providers()) absorb(p->recovery_stats());

  dg.mix(out.faults_applied = plane.faults_applied());
  dg.mix(dep.cluster().calls_retried());
  dg.mix(dep.cluster().messages_dropped());
  dg.mix(dep.cluster().calls_timed_out());
  dg.mix(static_cast<std::uint64_t>(sim.now()));
  out.digest = dg.value();
  return out;
}

class GatewayChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GatewayChaosSeeds, ReplayIsBitIdenticalAndNoListedObjectIsLost) {
  const std::uint64_t seed = GetParam();
  const GatewayChaosOutcome a = run_gateway_chaos(seed);
  const GatewayChaosOutcome b = run_gateway_chaos(seed);

  // Determinism, including dedup/reclaim and recovery accounting.
  EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
  EXPECT_EQ(a.trace_digest, b.trace_digest) << "seed " << seed;
  EXPECT_EQ(a.recoveries, b.recoveries) << "seed " << seed;
  EXPECT_EQ(a.chunks_reclaimed, b.chunks_reclaimed) << "seed " << seed;

  // The schedule fired and the services replayed their journals.
  EXPECT_GT(a.faults_applied, 0u) << "seed " << seed;
  EXPECT_GT(a.recoveries, 0u) << "seed " << seed;

  // Progress under faults, and the safety invariant: every object the
  // recovered gateway lists is fully readable with its recorded etag.
  EXPECT_GT(a.puts, 0u) << "seed " << seed;
  EXPECT_EQ(a.unreadable_objects, 0u) << "seed " << seed;
  EXPECT_EQ(b.unreadable_objects, 0u) << "seed " << seed;
}

// 50 seeded schedules in the gateway chaos gate.
INSTANTIATE_TEST_SUITE_P(Seeds, GatewayChaosSeeds,
                         ::testing::Range<std::uint64_t>(1, 51));

class GatewayChaosAblation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GatewayChaosAblation, StepperAndThreadsNeverChangeOutcomes) {
  // The gateway's coroutine fan-out (concurrent parts, parallel range
  // reads, detached reclaims) must be invisible to the stepper choice.
  const std::uint64_t seed = GetParam();
  const GatewayChaosOutcome lanes = run_gateway_chaos(seed);
  const GatewayChaosOutcome single =
      run_gateway_chaos(seed, /*lanes_off=*/true);
  const GatewayChaosOutcome t1 =
      run_gateway_chaos(seed, /*lanes_off=*/false, /*threads=*/1);
  const GatewayChaosOutcome t4 =
      run_gateway_chaos(seed, /*lanes_off=*/false, /*threads=*/4);
  EXPECT_EQ(lanes.digest, single.digest) << "seed " << seed;
  EXPECT_EQ(lanes.digest, t1.digest) << "seed " << seed;
  EXPECT_EQ(lanes.digest, t4.digest) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(StepperAblation, GatewayChaosAblation,
                         ::testing::Values(3ull, 19ull, 37ull));

}  // namespace
}  // namespace bs
