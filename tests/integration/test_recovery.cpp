// Recovery property suite for the journaled persistent-store model (ctest
// label: recovery). Core invariants, each checked against crashes injected
// at many different event boundaries:
//   * every write acked to a client stays readable after crash + replay;
//   * un-acked (uncommitted) writes never resurrect as published versions;
//   * checkpoint + journal-tail replay rebuilds state bit-identical to a
//     deployment that never crashed;
//   * torn journal tails (power loss mid-write) are truncated cleanly;
//   * time-to-readable scales with what recovery must read: wiped < warm
//     (checkpoint) < cold (full WAL) < cold on a slowed disk.
#include <gtest/gtest.h>

#include <vector>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

blob::DeploymentConfig journaled_cfg() {
  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.journal.enabled = true;
  // Short leases: a crash-orphaned write must be swept promptly.
  cfg.vm_options.write_lease = simtime::seconds(20);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  return cfg;
}

struct Op {
  SimTime at{0};
  std::uint64_t bytes{0};
  std::uint64_t content{0};
  Result<blob::WriteReceipt> result{Errc::internal};
};

TEST(Recovery, AckedWritesReadableAfterCrashAtAnyEventBoundary) {
  // Sweep the crash instant across the whole write window: whatever event
  // boundary the version manager (and one provider) die on — mid-put,
  // mid-fsync, mid-publish — every append that reported success must be
  // readable after replay, and no version may stay stuck pending.
  std::uint64_t torn_total = 0;
  std::uint64_t replays_total = 0;
  for (int tick = 0; tick < 12; ++tick) {
    sim::Simulation sim;
    blob::Deployment dep(sim, journaled_cfg());
    fault::FaultPlane plane(dep.cluster(), 0xFA17ull);

    blob::BlobClient* writer = dep.add_client();
    blob::BlobClient* reader = dep.add_client();
    auto blob_id = test::run_task(
        sim, writer->create(4 * units::MB, /*replication=*/2));
    ASSERT_TRUE(blob_id.ok());

    std::vector<Op> ops(4);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      ops[i].at = simtime::millis(200 + 1200 * i);
      ops[i].bytes = 8 * units::MB;
      ops[i].content = 0xBEEF + i;
    }
    for (auto& op : ops) {
      sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                   Op& o) -> sim::Task<void> {
        co_await s.delay_until(o.at);
        o.result = co_await cl.append(
            b, blob::Payload::synthetic(o.bytes, o.content));
      }(sim, *writer, blob_id.value(), op));
    }

    // Power-loss flavoured crash (torn journal tails) of the version
    // manager and every data provider, at three boundaries per op: right
    // after the StartWrite reservation lands (+10 ms), and inside each of
    // the two chunk-put fsync flights (+90 ms / +170 ms, when a ~4 MB
    // journal record is volatile on some provider), so several crashes in
    // the sweep leave torn tails.
    static constexpr int kOffsetsMs[] = {10, 90, 170};
    const SimTime crash_at =
        ops[tick % ops.size()].at + simtime::millis(kOffsetsMs[tick / 4]);
    const NodeId vm_node = dep.version_manager_node().id();
    std::vector<NodeId> crashed{vm_node};
    for (const auto& p : dep.providers()) crashed.push_back(p->id());
    sim.schedule_at(crash_at, [&plane, &crashed] {
      for (const NodeId n : crashed) {
        plane.crash(n, /*lose_storage=*/false, /*torn_tail=*/true);
      }
    });
    sim.schedule_at(crash_at + simtime::seconds(3), [&plane, &crashed] {
      for (const NodeId n : crashed) plane.restart(n);
    });

    sim.run_until(simtime::minutes(3));

    for (const auto& op : ops) {
      if (!op.result.ok()) continue;
      const auto& r = op.result.value();
      auto read = test::run_task(
          sim, reader->read(blob_id.value(), r.offset, r.size, r.version));
      ASSERT_TRUE(read.ok())
          << "crash at " << crash_at << ": acked v" << r.version
          << " unreadable: " << read.error().to_string();
      EXPECT_EQ(read.value().bytes, r.size);
    }
    // Published inventory itself is readable (no resurrected torn state).
    auto versions = test::run_task(sim, reader->versions(blob_id.value()));
    ASSERT_TRUE(versions.ok());
    for (const auto& v : versions.value()) {
      if (v.version == 0) continue;
      auto read = test::run_task(
          sim, reader->read(blob_id.value(), 0, v.size, v.version));
      EXPECT_TRUE(read.ok()) << "crash at " << crash_at << ": published v"
                             << v.version << " unreadable";
    }
    EXPECT_EQ(dep.version_manager().pending_writes(), 0u)
        << "crash at " << crash_at;
    torn_total += dep.version_manager().recovery_stats().torn_tails_truncated;
    replays_total += dep.version_manager().recovery_stats().recoveries;
    for (const auto& p : dep.providers()) {
      torn_total += p->recovery_stats().torn_tails_truncated;
      replays_total += p->recovery_stats().recoveries;
    }
  }
  // The sweep crossed fsync windows: at least one torn tail was truncated
  // somewhere (deterministic — the sim replays bit-identically).
  EXPECT_GT(replays_total, 0u);
  EXPECT_GT(torn_total, 0u);
}

TEST(Recovery, UnackedWriteNeverResurrectsAfterReplay) {
  // A writer dies right after its StartWrite lands (version reserved and
  // durable) and the version manager crashes too. After both replay, the
  // reservation comes back as an *uncommitted* pending write, the lease
  // sweeper aborts it, and it must never appear as a published version.
  sim::Simulation sim;
  blob::Deployment dep(sim, journaled_cfg());
  fault::FaultPlane plane(dep.cluster(), 0xFA17ull);

  blob::BlobClient* doomed = dep.add_client();
  blob::BlobClient* survivor = dep.add_client();
  auto blob_id = test::run_task(sim, survivor->create(4 * units::MB, 2));
  ASSERT_TRUE(blob_id.ok());

  Result<blob::WriteReceipt> doomed_result{Errc::internal};
  sim.spawn([](blob::BlobClient& cl, BlobId b,
               Result<blob::WriteReceipt>& out) -> sim::Task<void> {
    out = co_await cl.append(b, blob::Payload::synthetic(64 * units::MB, 1));
  }(*doomed, blob_id.value(), doomed_result));
  // At 100 ms the StartWrite has been journaled but the chunk puts are
  // still in flight; kill writer and version manager together.
  sim.schedule_at(simtime::millis(100), [&] {
    plane.crash(doomed->node().id());
    plane.crash(dep.version_manager_node().id(), false, /*torn_tail=*/true);
  });
  sim.schedule_at(simtime::seconds(8),
                  [&] { plane.restart(dep.version_manager_node().id()); });

  Result<blob::WriteReceipt> later_result{Errc::internal};
  sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
               Result<blob::WriteReceipt>& out) -> sim::Task<void> {
    co_await s.delay_until(simtime::seconds(30));
    out = co_await cl.append(b, blob::Payload::synthetic(8 * units::MB, 2));
  }(sim, *survivor, blob_id.value(), later_result));

  sim.run_until(simtime::minutes(3));

  EXPECT_FALSE(doomed_result.ok());
  ASSERT_TRUE(later_result.ok()) << later_result.error().to_string();
  EXPECT_EQ(dep.version_manager().pending_writes(), 0u);
  EXPECT_GE(dep.version_manager().recovery_stats().recoveries, 1u);
  // The orphaned reservation replayed, was swept, and never published.
  auto versions = test::run_task(sim, survivor->versions(blob_id.value()));
  ASSERT_TRUE(versions.ok());
  for (const auto& v : versions.value()) {
    if (v.version == 0) continue;
    EXPECT_EQ(v.version, later_result.value().version)
        << "unexpected published version " << v.version;
    auto read = test::run_task(
        sim, survivor->read(blob_id.value(), 0, v.size, v.version));
    EXPECT_TRUE(read.ok());
  }
}

std::uint64_t settled_state_digest(sim::Simulation& sim,
                                   blob::Deployment& dep,
                                   blob::BlobClient* reader, BlobId blob_id) {
  test::Digest dg;
  auto versions = test::run_task(sim, reader->versions(blob_id));
  EXPECT_TRUE(versions.ok());
  if (versions.ok()) {
    for (const auto& v : versions.value()) {
      dg.mix(v.version);
      dg.mix(v.size);
      dg.mix(v.root_chunks);
      if (v.version == 0 || v.size == 0) continue;
      auto read = test::run_task(sim, reader->read(blob_id, 0, v.size,
                                                   v.version));
      EXPECT_TRUE(read.ok());
      if (!read.ok()) continue;
      dg.mix(read.value().bytes);
      for (const auto& ch : read.value().chunks) {
        dg.mix(ch.offset);
        dg.mix(static_cast<std::uint64_t>(ch.hole));
        dg.mix(ch.hole ? 0 : ch.checksum);
      }
    }
  }
  // Chunk stores: sorted key inventory + payload sizes per provider.
  for (const auto& p : dep.providers()) {
    dg.mix(p->used());
    for (const auto& key : p->chunk_keys()) {
      dg.mix(key.blob.value);
      dg.mix(key.version);
      dg.mix(key.index);
    }
  }
  return dg.value();
}

TEST(Recovery, CheckpointPlusReplayMatchesNeverCrashedStore) {
  // Twin deployments run the same deterministic workload (with checkpoint
  // thresholds low enough that checkpoints actually happen). One then
  // crash-restarts every journaled service at quiescence. After replay its
  // externally visible state must be identical to the twin that never
  // crashed.
  auto run = [](bool crash_everything) {
    sim::Simulation sim;
    auto cfg = journaled_cfg();
    cfg.journal.checkpoint_records = 24;  // force mid-workload checkpoints
    blob::Deployment dep(sim, cfg);
    fault::FaultPlane plane(dep.cluster(), 0xFA17ull);

    blob::BlobClient* writer = dep.add_client();
    blob::BlobClient* reader = dep.add_client();
    auto blob_id = test::run_task(
        sim, writer->create(4 * units::MB, /*replication=*/2));
    EXPECT_TRUE(blob_id.ok());

    std::vector<Op> ops(8);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      ops[i].at = simtime::millis(500 + 900 * i);
      ops[i].bytes = (1 + (i % 3)) * 4 * units::MB;
      ops[i].content = 0xABBA + i;
    }
    for (auto& op : ops) {
      sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                   Op& o) -> sim::Task<void> {
        co_await s.delay_until(o.at);
        o.result = co_await cl.append(
            b, blob::Payload::synthetic(o.bytes, o.content));
      }(sim, *writer, blob_id.value(), op));
    }

    if (crash_everything) {
      sim.schedule_at(simtime::seconds(60), [&] {
        plane.crash(dep.version_manager_node().id());
        for (const auto& mp : dep.metadata_providers()) {
          plane.crash(mp->id());
        }
        for (const auto& p : dep.providers()) plane.crash(p->id());
      });
      sim.schedule_at(simtime::seconds(62), [&] {
        plane.restart(dep.version_manager_node().id());
        for (const auto& mp : dep.metadata_providers()) {
          plane.restart(mp->id());
        }
        for (const auto& p : dep.providers()) plane.restart(p->id());
      });
    }
    sim.run_until(simtime::minutes(4));

    for (const auto& op : ops) {
      EXPECT_TRUE(op.result.ok())
          << "quiesced workload write failed: "
          << op.result.error().to_string();
    }
    if (crash_everything) {
      EXPECT_GE(dep.version_manager().recovery_stats().recoveries, 1u);
      // The checkpoint shortened the version manager's replay below the
      // full operation log.
      EXPECT_GT(dep.version_manager().recovery_stats().replay_records, 0u);
    }
    return settled_state_digest(sim, dep, reader, blob_id.value());
  };

  const std::uint64_t crashed = run(/*crash_everything=*/true);
  const std::uint64_t pristine = run(/*crash_everything=*/false);
  EXPECT_EQ(crashed, pristine)
      << "checkpoint+replay diverged from the never-crashed store";
}

TEST(Recovery, SiteWidePowerLossRecoversEveryNode) {
  // Correlated failure: every node at one site loses power mid-workload
  // (torn journal tails), then power returns. All acked writes must remain
  // readable and every node at the site must come back up.
  sim::Simulation sim;
  auto cfg = journaled_cfg();
  blob::Deployment dep(sim, cfg);
  fault::FaultPlane plane(dep.cluster(), 0xFA17ull);

  blob::BlobClient* writer = dep.add_client();
  auto blob_id = test::run_task(sim, writer->create(4 * units::MB, 2));
  ASSERT_TRUE(blob_id.ok());

  std::vector<Op> ops(6);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].at = simtime::millis(300 + 700 * i);
    ops[i].bytes = 8 * units::MB;
    ops[i].content = 0xD00D + i;
  }
  for (auto& op : ops) {
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 Op& o) -> sim::Task<void> {
      co_await s.delay_until(o.at);
      o.result = co_await cl.append(
          b, blob::Payload::synthetic(o.bytes, o.content));
    }(sim, *writer, blob_id.value(), op));
  }

  // Site 2 holds a metadata provider and two data providers — but not the
  // version manager (site 0), the provider manager or the writer (site 1).
  plane.schedule(fault::FaultEvent{.at = simtime::seconds(2),
                                   .kind = fault::FaultEvent::Kind::power_loss,
                                   .a = 2});
  plane.schedule(
      fault::FaultEvent{.at = simtime::seconds(12),
                        .kind = fault::FaultEvent::Kind::power_restore,
                        .a = 2});

  sim.run_until(simtime::minutes(3));

  for (std::uint64_t i = 0; i < dep.cluster().node_count(); ++i) {
    rpc::Node* n = dep.cluster().node(NodeId{i});
    if (n != nullptr) EXPECT_TRUE(n->up()) << "node " << i << " still down";
  }
  for (const auto& op : ops) {
    if (!op.result.ok()) continue;
    const auto& r = op.result.value();
    auto read = test::run_task(
        sim, writer->read(blob_id.value(), r.offset, r.size, r.version));
    ASSERT_TRUE(read.ok()) << read.error().to_string();
  }
  EXPECT_EQ(dep.version_manager().pending_writes(), 0u);
}

TEST(Recovery, TimeToReadableScalesWithReplayWork) {
  // One provider, driven directly over RPC: measure time-to-readable for
  // (a) warm restart (checkpointed index + short tail), (b) cold restart
  // (full WAL including data pages), (c) wiped store (nothing to replay),
  // (d) cold restart on a 4x slowed disk. Expect wiped < warm < cold <
  // cold-on-slow-disk, and byte accounting to match.
  struct Scenario {
    std::uint64_t checkpoint_records{1ull << 40};
    bool wipe{false};
    double disk_factor{1.0};
    SimDuration ttr{0};
    std::uint64_t replay_bytes{0};
    std::uint64_t cold_starts{0};
    std::uint64_t chunks_after{0};
  };
  auto run = [](Scenario& sc) {
    sim::Simulation sim;
    rpc::Cluster cluster(sim, net::Topology::single_site());
    rpc::Node* dp_node = cluster.add_node(0);
    rpc::Node* client = cluster.add_node(0);
    blob::DataProvider::Options opts;
    opts.journal.enabled = true;
    opts.journal.checkpoint_records = sc.checkpoint_records;
    blob::DataProvider provider(*dp_node, opts);
    fault::FaultPlane plane(cluster, 0xFA17ull);

    constexpr int kPuts = 64;
    sim.spawn([](rpc::Cluster& cl, rpc::Node& src, NodeId dst)
                  -> sim::Task<void> {
      for (int i = 0; i < kPuts; ++i) {
        blob::PutChunkReq req;
        req.key = blob::ChunkKey{BlobId{1}, 1, static_cast<std::uint64_t>(i)};
        req.payload = blob::Payload::synthetic(256 * units::KB, i);
        auto r = co_await cl.call<blob::PutChunkReq, blob::PutChunkResp>(
            src, dst, std::move(req));
        EXPECT_TRUE(r.ok());
      }
    }(cluster, *client, dp_node->id()));
    sim.run_until(simtime::seconds(30));
    EXPECT_EQ(provider.chunk_count(), static_cast<std::size_t>(kPuts));

    sim.schedule_at(simtime::seconds(40), [&] {
      plane.crash(dp_node->id(), sc.wipe);
      if (sc.disk_factor < 1.0) {
        plane.slow_disk(dp_node->id(), sc.disk_factor);
      }
    });
    sim.schedule_at(simtime::seconds(41),
                    [&] { plane.restart(dp_node->id()); });
    sim.run_until(simtime::minutes(2));

    EXPECT_FALSE(provider.recovering());
    EXPECT_EQ(provider.recovery_stats().recoveries, 1u);
    sc.ttr = provider.recovery_stats().last_time_to_readable;
    sc.replay_bytes = provider.recovery_stats().replay_bytes;
    sc.cold_starts = provider.recovery_stats().cold_starts;
    sc.chunks_after = provider.chunk_count();
  };

  Scenario warm;
  warm.checkpoint_records = 16;
  Scenario cold;
  Scenario wiped;
  wiped.wipe = true;
  Scenario slow;
  slow.disk_factor = 0.25;
  run(warm);
  run(cold);
  run(wiped);
  run(slow);

  // Survivors keep their chunks; the wiped store restarts empty.
  EXPECT_EQ(warm.chunks_after, 64u);
  EXPECT_EQ(cold.chunks_after, 64u);
  EXPECT_EQ(slow.chunks_after, 64u);
  EXPECT_EQ(wiped.chunks_after, 0u);
  EXPECT_EQ(wiped.cold_starts, 1u);
  EXPECT_EQ(wiped.replay_bytes, 0u);

  // Cold replay reads the data pages; warm only the checkpointed index.
  EXPECT_GT(cold.replay_bytes, warm.replay_bytes);
  EXPECT_GT(warm.replay_bytes, 0u);

  // Time-to-readable ordering.
  EXPECT_LT(wiped.ttr, warm.ttr);
  EXPECT_LT(warm.ttr, cold.ttr);
  EXPECT_LT(cold.ttr, slow.ttr);
}

}  // namespace
}  // namespace bs
