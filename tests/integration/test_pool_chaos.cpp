// Frame-pool ablation under chaos (ctest label: chaos): replaying a seeded
// fault schedule with frame pooling enabled and disabled must produce
// bit-identical outcomes. Recycling only changes which addresses coroutine
// frames land on, and no address may be observable — this is the end-to-end
// proof, covering frame reuse after provider crashes abort in-flight
// coroutines mid-suspend.
#include <gtest/gtest.h>

#include <vector>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "sim/frame_pool.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

std::uint64_t run_faulted_workload(std::uint64_t seed, bool pool_enabled) {
  auto& pool = sim::FramePool::instance();
  const bool prev = pool.enabled();
  pool.set_enabled(pool_enabled);
  pool.trim();

  std::uint64_t digest;
  {
    sim::Simulation sim;

    blob::DeploymentConfig cfg;
    cfg.sites = 2;
    cfg.data_providers = 6;
    cfg.metadata_providers = 2;
    cfg.provider_capacity = 2ull * units::GB;
    cfg.fault_seed = seed ^ 0xF00Dull;
    cfg.vm_options.write_lease = simtime::seconds(30);
    cfg.vm_options.sweep_interval = simtime::seconds(5);
    blob::Deployment dep(sim, cfg);

    const int n_clients = 3;
    std::vector<blob::BlobClient*> clients;
    for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client());

    auto blob = test::run_task(
        sim, clients[0]->create(4 * units::MB, /*replication=*/2));
    EXPECT_TRUE(blob.ok());

    fault::FaultPlane plane(dep.cluster(), seed * 31 + 7);
    fault::ScheduleOptions so;
    so.horizon = simtime::minutes(2);
    so.quiesce_fraction = 0.7;
    for (auto& p : dep.providers()) so.crashable.push_back(p->id());
    so.crashes = 2;
    so.max_wipe_crashes = 1;
    so.site_count = cfg.sites;
    so.partitions = 1;
    so.degrades = 1;
    so.disk_slowdowns = 1;
    plane.schedule_all(fault::random_schedule(seed * 13 + 5, so));

    struct Op {
      SimTime at{0};
      std::uint64_t bytes{0};
      std::uint64_t content{0};
      Result<blob::WriteReceipt> result{Errc::internal};
    };
    Rng wl(seed ^ 0xC0FFEEull);
    std::vector<Op> ops(static_cast<std::size_t>(n_clients) * 3);
    for (auto& op : ops) {
      op.at = simtime::millis(wl.uniform(0, 70000));
      op.bytes = (1 + wl.next_below(2)) * 2 * units::MB;
      op.content = wl.next_u64();
    }
    for (std::size_t i = 0; i < ops.size(); ++i) {
      sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                   Op& op) -> sim::Task<void> {
        co_await s.delay_until(op.at);
        op.result = co_await cl.append(
            b, blob::Payload::synthetic(op.bytes, op.content));
      }(sim, *clients[i % n_clients], blob.value(), ops[i]));
    }

    sim.run_until(simtime::minutes(3));

    test::Digest dg;
    for (const auto& op : ops) {
      dg.mix(static_cast<std::uint64_t>(op.result.code()));
      if (op.result.ok()) {
        dg.mix(op.result.value().version);
        dg.mix(op.result.value().offset);
        dg.mix_signed(op.result.value().duration);
      }
    }
    auto versions = test::run_task(sim, clients[0]->versions(blob.value()));
    EXPECT_TRUE(versions.ok());
    if (versions.ok()) {
      for (const auto& v : versions.value()) {
        dg.mix(v.version);
        dg.mix(v.size);
      }
    }
    dg.mix(plane.faults_applied());
    dg.mix(dep.cluster().calls_retried());
    dg.mix(dep.cluster().messages_dropped());
    dg.mix(static_cast<std::uint64_t>(sim.now()));
    digest = dg.value();
  }

  pool.set_enabled(prev);
  pool.trim();
  return digest;
}

class PoolChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoolChaosSeeds, PoolingNeverChangesFaultedOutcomes) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t pooled = run_faulted_workload(seed, true);
  const std::uint64_t unpooled = run_faulted_workload(seed, false);
  EXPECT_EQ(pooled, unpooled) << "seed " << seed;

  // And pooling itself replays bit-identically.
  EXPECT_EQ(pooled, run_faulted_workload(seed, true)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(FramePoolAblation, PoolChaosSeeds,
                         ::testing::Values(1ull, 7ull, 23ull));

}  // namespace
}  // namespace bs
