// Whole-system integration: BlobSeer + monitoring + introspection + security
// + workloads. The DoS scenario here is a miniature of experiment §IV-C.
#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/protection.hpp"
#include "mon/layer.hpp"
#include "sec/framework.hpp"
#include "test_util.hpp"
#include "viz/dashboard.hpp"
#include "workload/clients.hpp"

namespace bs {
namespace {

struct FullStack {
  explicit FullStack(sim::Simulation& sim, std::size_t providers = 6) {
    blob::DeploymentConfig cfg;
    cfg.sites = 3;
    cfg.data_providers = providers;
    cfg.metadata_providers = 2;
    // DoS-sensitive providers: one request at a time, 5 ms of service
    // work (200 req/s capacity), bounded queue so overload sheds instead
    // of building an unbounded backlog.
    cfg.node_spec.service_concurrency = 1;
    cfg.node_spec.service_overhead = simtime::millis(5);
    cfg.node_spec.service_queue_limit = 64;
    dep = std::make_unique<blob::Deployment>(sim, cfg);

    rpc::Node* intro_node = dep->cluster().add_node(0);
    intro = std::make_unique<intro::IntrospectionService>(*intro_node);
    intro->start();

    mon::MonitoringConfig mcfg;
    mcfg.services = 2;
    mcfg.storage_servers = 1;
    mcfg.sinks = {intro_node->id()};
    mon = std::make_unique<mon::MonitoringLayer>(*dep, mcfg);
    mon->start();

    sec::SecurityConfig scfg;
    scfg.detection.scan_interval = simtime::seconds(5);
    // The 30 s window needs several seconds of sustained flooding before
    // the rate crosses the bound, giving the experiment an observable
    // unprotected phase before the block lands.
    scfg.policy_source =
        "policy dos { severity high; when rate(write_ops, 30s) > 300; "
        "then block(60s), trust(-0.3); }";
    security = std::make_unique<sec::SecurityFramework>(
        sim, intro->activity(), scfg);
    security->attach_deployment(*dep);
    security->start();
  }

  std::unique_ptr<blob::Deployment> dep;
  std::unique_ptr<intro::IntrospectionService> intro;
  std::unique_ptr<mon::MonitoringLayer> mon;
  std::unique_ptr<sec::SecurityFramework> security;
};

TEST(FullStack, DosAttackerIsDetectedBlockedAndHonestClientRecovers) {
  sim::Simulation sim;
  FullStack stack(sim);

  // Honest writer.
  blob::BlobClient* honest = stack.dep->add_client();
  stack.mon->attach_client(*honest);
  auto blob = test::run_task(sim, honest->create(8 * units::MB));
  ASSERT_TRUE(blob.ok());

  workload::ClientRunStats honest_stats;
  workload::ThroughputTracker tracker;
  workload::WriterOptions wopts;
  wopts.loop_forever = true;
  wopts.op_bytes = 16 * units::MB;
  wopts.deadline = simtime::seconds(120);
  sim.spawn(workload::Writer::run(*honest, *blob, wopts, &honest_stats,
                                  &tracker));

  // Attacker floods all providers with tiny writes from t=30 s.
  rpc::Node* attacker_node = stack.dep->cluster().add_node(1);
  std::vector<NodeId> targets;
  for (auto& p : stack.dep->providers()) targets.push_back(p->id());
  workload::AttackerOptions aopts;
  aopts.request_rate = 1800;  // 1.5x the pool's aggregate service capacity
  aopts.start = simtime::seconds(30);
  aopts.deadline = simtime::seconds(120);
  workload::AttackerStats attacker_stats;
  sim.spawn(workload::DosAttacker::run(*attacker_node, ClientId{666},
                                       targets, aopts, &attacker_stats));

  sim.run_until(simtime::seconds(120));

  // The attack was detected and the attacker blocked.
  EXPECT_GE(stack.security->engine().violations(), 1u);
  EXPECT_GT(attacker_stats.rejected, 0u);
  EXPECT_LT(attacker_stats.first_rejected, simtime::seconds(70));
  EXPECT_LT(stack.security->trust().trust(ClientId{666}), 0.5);
  // The honest client was never sanctioned and kept making progress.
  EXPECT_FALSE(
      stack.security->enforcement().is_blocked(honest->id(), sim.now()));
  EXPECT_GT(honest_stats.bytes_done, 500 * units::MB);

  // Throughput shape: depressed during the undetected attack window,
  // recovered after blocking relative to that dip.
  // Windows anchored on the measured detection time: [attack start,
  // detection) is the unprotected dip; after the block (+ queue drain) the
  // honest client recovers.
  const SimTime detected = attacker_stats.first_rejected;
  ASSERT_GT(detected, simtime::seconds(30));
  ASSERT_LT(detected, simtime::seconds(70));
  const double before = tracker.mean_mbps(simtime::seconds(5),
                                          simtime::seconds(30));
  const double during =
      tracker.mean_mbps(simtime::seconds(31), detected);
  const double after = tracker.mean_mbps(detected + simtime::seconds(10),
                                         simtime::seconds(118));
  EXPECT_LT(during, 0.8 * before);
  EXPECT_GT(after, during);
  EXPECT_GT(after, 0.6 * before);
}

TEST(FullStack, IntrospectionFeedsUserActivityHistory) {
  sim::Simulation sim;
  FullStack stack(sim);
  blob::BlobClient* client = stack.dep->add_client();
  stack.mon->attach_client(*client);

  auto blob = test::run_task(sim, client->create(4 * units::MB));
  ASSERT_TRUE(blob.ok());
  for (int i = 0; i < 4; ++i) {
    (void)test::run_task(
        sim, client->append(*blob,
                            blob::Payload::synthetic(8 * units::MB, i)));
  }
  sim.run_until(sim.now() + simtime::seconds(6));

  const auto& uah = stack.intro->activity();
  EXPECT_GE(uah.client_count(), 1u);
  EXPECT_GT(uah.total(client->id(), mon::Metric::write_bytes,
                      simtime::minutes(2), sim.now()),
            30e6);
}

TEST(FullStack, DashboardRendersAllPanels) {
  sim::Simulation sim;
  FullStack stack(sim);
  blob::BlobClient* client = stack.dep->add_client();
  stack.mon->attach_client(*client);
  auto blob = test::run_task(sim, client->create(4 * units::MB));
  ASSERT_TRUE(blob.ok());
  (void)test::run_task(
      sim,
      client->write(*blob, 0, blob::Payload::synthetic(32 * units::MB, 1)));
  (void)test::run_task(sim, client->read(*blob, 0, 32 * units::MB));
  sim.run_until(sim.now() + simtime::seconds(8));

  viz::Dashboard dash(*stack.intro);
  const std::string out = dash.render(0, sim.now());
  EXPECT_NE(out.find("system summary"), std::string::npos);
  EXPECT_NE(out.find("storage space"), std::string::npos);
  EXPECT_NE(out.find("physical parameters"), std::string::npos);
  EXPECT_NE(out.find("BLOB read bytes"), std::string::npos);
  EXPECT_NE(out.find("chunk distribution"), std::string::npos);
  EXPECT_NE(out.find("client activity"), std::string::npos);
  // Real numbers made it into the summary (utilization non-zero).
  EXPECT_NE(out.find("storage used"), std::string::npos);
}

TEST(FullStack, MapeControllerRunsAllModulesTogether) {
  sim::Simulation sim;
  FullStack stack(sim);
  core::AutonomicController controller(*stack.dep, *stack.intro,
                                       stack.security.get());
  controller.add_module(std::make_unique<core::ProtectionModule>());
  controller.start();

  // Attack raises rejected_rate -> protection module hardens scanning.
  rpc::Node* attacker_node = stack.dep->cluster().add_node(1);
  std::vector<NodeId> targets;
  for (auto& p : stack.dep->providers()) targets.push_back(p->id());
  workload::AttackerOptions aopts;
  aopts.request_rate = 400;
  aopts.start = simtime::seconds(5);
  aopts.deadline = simtime::seconds(90);
  workload::AttackerStats astats;
  sim.spawn(workload::DosAttacker::run(*attacker_node, ClientId{777},
                                       targets, aopts, &astats));
  sim.run_until(simtime::seconds(90));

  EXPECT_GT(controller.iterations(), 0u);
  EXPECT_GT(astats.rejected, 0u);
  bool hardened = false;
  for (const auto& entry : controller.action_log()) {
    if (entry.action.type == core::AdaptAction::Type::set_scan_interval) {
      hardened = true;
    }
  }
  EXPECT_TRUE(hardened);
}

TEST(ThroughputTracker, SpreadsBytesAcrossBins) {
  workload::ThroughputTracker t(simtime::seconds(1));
  // 10 MB over 2 s finishing at t=3 -> 5 MB in bin 1, 5 MB in bin 2.
  t.record(simtime::seconds(3), 10e6, simtime::seconds(2));
  auto series = t.mbps_series(0, simtime::seconds(4));
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[0], 0, 1e-9);
  EXPECT_NEAR(series[1], 5, 1e-6);
  EXPECT_NEAR(series[2], 5, 1e-6);
  EXPECT_NEAR(series[3], 0, 1e-9);
  EXPECT_NEAR(t.mean_mbps(0, simtime::seconds(4)), 2.5, 1e-6);
}

TEST(ThroughputTracker, InstantOpLandsInOneBin) {
  workload::ThroughputTracker t;
  t.record(simtime::millis(1500), 4e6, 0);
  auto series = t.mbps_series(0, simtime::seconds(2));
  EXPECT_NEAR(series[1], 4.0, 1e-6);
  EXPECT_NEAR(series[0], 0.0, 1e-9);
}

}  // namespace
}  // namespace bs
