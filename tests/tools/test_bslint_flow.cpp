// Fixtures for bslint's cross-translation-unit pass: the symbol index, the
// over-approximate call graph (cycles, overloads, unresolved externals),
// the flow rules that carry call chains, the coro-first-await-if /
// coro-ref-escape rules, the pass-1 cache (byte-identity across cold, warm
// and --no-cache runs), and the --format output modes. Everything goes
// through run()/lint_main() against a scratch tree, exactly like the real
// gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bslint.hpp"
#include "index.hpp"
#include "lexer.hpp"

namespace bs::lint {
namespace {

namespace fs = std::filesystem;

// Minimal Task scaffolding every fixture file starts with, so the index
// sees the same `sim::Task<...>` spelling the real tree uses.
constexpr const char* kTaskPrelude =
    "namespace sim { template <class T> struct Task { bool await_ready(); "
    "}; }\n";

class BslintFlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("bslint_flow_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + std::string(::testing::UnitTest::GetInstance()
                                   ->current_test_info()
                                   ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << text;
  }

  /// Runs both passes over src/ (plus any extra dirs) and returns fresh
  /// findings.
  RunResult run_tree(std::vector<std::string> paths = {"src"},
                     RunOptions extra = {}) {
    RunOptions opts = std::move(extra);
    opts.root = root_.string();
    opts.paths = std::move(paths);
    RunResult res;
    std::string error;
    EXPECT_TRUE(run(opts, &res, &error)) << error;
    return res;
  }

  int cli(std::vector<std::string> args, std::string* out_text = nullptr) {
    std::vector<std::string> full = {"bslint", "--root", root_.string()};
    for (auto& a : args) full.push_back(std::move(a));
    std::vector<const char*> argv;
    argv.reserve(full.size());
    for (const auto& a : full) argv.push_back(a.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int rc =
        lint_main(static_cast<int>(argv.size()), argv.data(), out, err);
    if (out_text != nullptr) *out_text = out.str() + err.str();
    return rc;
  }

  fs::path root_;
};

const Finding* find_rule(const std::vector<Finding>& fs,
                         std::string_view rule) {
  for (const auto& f : fs) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

int count_rule(const std::vector<Finding>& fs, std::string_view rule) {
  int n = 0;
  for (const auto& f : fs) n += f.rule == rule ? 1 : 0;
  return n;
}

// ------------------------------------------------------------ symbol index

TEST(BslintIndex, RecordsDefinitionsQualifiedNamesAndCoroutineness) {
  const std::string src = std::string(kTaskPrelude) +
                          "namespace bs { namespace repl {\n"
                          "struct Custody {\n"
                          "  sim::Task<int> pull(int id) { co_return id; }\n"
                          "  int plain() { return 3; }\n"
                          "};\n"
                          "}}\n";
  const LexOut lx = lex("src/a.cpp", src);
  const FileIndex fi = build_index("src/a.cpp", lx, {});
  const FuncDef* pull = nullptr;
  const FuncDef* plain = nullptr;
  for (const auto& fd : fi.funcs) {
    if (fd.name == "pull") pull = &fd;
    if (fd.name == "plain") plain = &fd;
  }
  ASSERT_NE(pull, nullptr);
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(pull->qname, "bs::repl::Custody::pull");
  EXPECT_TRUE(pull->returns_task);
  EXPECT_TRUE(pull->is_coroutine);
  EXPECT_FALSE(plain->returns_task);
  EXPECT_FALSE(plain->is_coroutine);
}

TEST(BslintIndex, RecordsCallSitesAndDirectAwait) {
  const std::string src = std::string(kTaskPrelude) +
                          "int helper(int);\n"
                          "sim::Task<int> go() {\n"
                          "  int x = helper(1);\n"
                          "  co_return co_await other(x);\n"
                          "}\n";
  const FileIndex fi = build_index("src/a.cpp", lex("src/a.cpp", src), {});
  ASSERT_EQ(fi.funcs.size(), 1u);
  const FuncDef& go = fi.funcs[0];
  bool saw_helper = false;
  bool saw_other = false;
  for (const auto& cs : go.calls) {
    if (cs.name == "helper") {
      saw_helper = true;
      EXPECT_FALSE(cs.direct_await);
    }
    if (cs.name == "other") {
      saw_other = true;
      EXPECT_TRUE(cs.direct_await);
    }
  }
  EXPECT_TRUE(saw_helper);
  EXPECT_TRUE(saw_other);
}

// ------------------------------------------------- flow: transitive reach

TEST_F(BslintFlowTest, WallclockTwoCallsBelowEncoderIsFound) {
  // The seeded acceptance fixture: a wall clock two hops below a journal
  // encoder, across translation units.
  write("src/j/leaf.cpp",
        "long leaf_now() { return std::time(nullptr); }\n"
        "long mid_now() { return leaf_now(); }\n");
  write("src/j/enc.cpp",
        "void encode_checkpoint(int v) { (void)v; (void)mid_now(); }\n");
  const RunResult res = run_tree();
  const Finding* f = find_rule(res.fresh, "det-journal-encode");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/j/enc.cpp");
  EXPECT_NE(f->chain.find("encode_checkpoint() -> mid_now() -> leaf_now()"),
            std::string::npos)
      << f->chain;
  // The direct det-wallclock token finding exists too, at the leaf.
  const Finding* direct = find_rule(res.fresh, "det-wallclock");
  ASSERT_NE(direct, nullptr);
  EXPECT_EQ(direct->path, "src/j/leaf.cpp");
}

TEST_F(BslintFlowTest, RandomReachableFromTaskRootCarriesChain) {
  write("src/r/a.cpp", std::string(kTaskPrelude) +
                           "int pick() { return std::rand(); }\n"
                           "int shuffle() { return pick(); }\n"
                           "sim::Task<int> drive() { co_return shuffle(); "
                           "}\n");
  const RunResult res = run_tree();
  const Finding* f = find_rule(res.fresh, "det-random");
  ASSERT_NE(f, nullptr);
  // Two det-random findings: the direct one at the rand() token and the
  // flow one attributed to drive()'s first call edge.
  EXPECT_EQ(count_rule(res.fresh, "det-random"), 2);
  bool chained = false;
  for (const auto& g : res.fresh) {
    if (g.rule == "det-random" && !g.chain.empty()) {
      chained = true;
      EXPECT_NE(g.chain.find("drive() -> shuffle() -> pick()"),
                std::string::npos)
          << g.chain;
    }
  }
  EXPECT_TRUE(chained);
}

TEST_F(BslintFlowTest, FlowRulesOnlyRootInSrc) {
  // A Task coroutine in tests/ reaching a dirty helper must NOT produce a
  // flow finding: flow roots are src/-only (tests legitimately use clocks).
  write("tests/t.cpp", std::string(kTaskPrelude) +
                           "int pick() { return std::rand(); }\n"
                           "sim::Task<int> drive() { co_return pick(); }\n");
  const RunResult res = run_tree({"tests"});
  for (const auto& f : res.fresh) {
    EXPECT_TRUE(f.chain.empty()) << f.rule << " " << f.chain;
  }
}

// -------------------------------------------------- flow: the call graph

TEST_F(BslintFlowTest, MutualRecursionTerminatesAndReportsOnce) {
  write("src/c/a.cpp",
        "void ping(int n);\n"
        "long tick() { return std::time(nullptr); }\n"
        "void pong(int n) { tick(); ping(n - 1); }\n"
        "void ping(int n) { if (n > 0) pong(n); }\n"
        "void encode_log() { ping(3); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "det-journal-encode"), 1);
  const Finding* f = find_rule(res.fresh, "det-journal-encode");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->chain.find("encode_log() -> ping() -> pong() -> tick()"),
            std::string::npos)
      << f->chain;
}

TEST_F(BslintFlowTest, SelfRecursionTerminates) {
  write("src/c/b.cpp",
        "int spin(int n) { if (n > 0) return spin(n - 1); return "
        "std::rand(); }\n"
        "void encode_rec() { spin(5); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "det-journal-encode"), 1);
}

TEST_F(BslintFlowTest, OverloadAmbiguityIsConservative) {
  // Two same-named definitions; only one is dirty. Name-level resolution
  // cannot tell which overload the call binds to, so the dirty candidate
  // wins (over-approximation: may report, must not miss).
  write("src/o/clean.cpp", "int fetch(int k) { return k; }\n");
  write("src/o/dirty.cpp",
        "double fetch(double k) { return k + std::rand(); }\n");
  write("src/o/enc.cpp", "void encode_row() { (void)fetch(1); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "det-journal-encode"), 1);
}

TEST_F(BslintFlowTest, UnresolvedExternalNeverSuppressesKnownPath) {
  // encode_mix calls an unknown external (no definition anywhere) AND a
  // known-dirty helper. The unknown edge widens nothing, but must never
  // swallow the finding on the resolved path.
  write("src/u/enc.cpp",
        "long stamp() { return std::time(nullptr); }\n"
        "void encode_mix() { external_unknowable(); stamp(); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "det-journal-encode"), 1);
}

// ------------------------------------------------- flow: suppression law

TEST_F(BslintFlowTest, SuppressedFactIsDischargedForFlowToo) {
  // An allow() at the offending token is a proof obligation discharged
  // once: neither the token rule nor any caller chain re-reports it.
  write("src/s/a.cpp",
        "long stamp() {\n"
        "  // bslint: allow(det-wallclock): host-only path, proven cold\n"
        "  return std::time(nullptr);\n"
        "}\n"
        "void encode_s() { stamp(); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(find_rule(res.fresh, "det-wallclock"), nullptr);
  EXPECT_EQ(find_rule(res.fresh, "det-journal-encode"), nullptr);
  EXPECT_GE(res.suppressed, 1);
}

TEST_F(BslintFlowTest, FlowFindingSuppressibleAtAttributedCallSite) {
  write("src/s/b.cpp",
        "long stamp() { return std::time(nullptr); }\n"
        "void encode_t() {\n"
        "  // bslint: allow(det-journal-encode): record excludes the stamp\n"
        "  stamp();\n"
        "}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(find_rule(res.fresh, "det-journal-encode"), nullptr);
  // The direct finding at the clock itself still stands.
  EXPECT_EQ(count_rule(res.fresh, "det-wallclock"), 1);
}

// ------------------------------------------- flow: par-tagged scheduling

TEST_F(BslintFlowTest, IndirectUnsitedScheduleFromParRootIsFound) {
  // The seeded acceptance fixture: a par-tagged root reaching a bare
  // schedule_at through a helper hop.
  write("src/p/a.cpp",
        "void schedule_at(int);\n"
        "void rearm_hop() { schedule_at(3); }\n"
        "// bslint: par-root: timer rearm runs in the owning site lane\n"
        "void shard_rearm() { rearm_hop(); }\n");
  const RunResult res = run_tree();
  const Finding* f = find_rule(res.fresh, "par-cross-site-schedule");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->chain.find("shard_rearm() -> rearm_hop() -> schedule_at()"),
            std::string::npos)
      << f->chain;
}

TEST_F(BslintFlowTest, SitingBarrierStopsParTraversal) {
  // Routing through par_schedule_site IS the contract — the traversal must
  // stop at the barrier and report nothing.
  write("src/p/b.cpp",
        "void schedule_at(int);\n"
        "void par_schedule_site(int);\n"
        "void sited_hop() { par_schedule_site(1); }\n"
        "// bslint: par-root: rebalance events are site-tagged at the source\n"
        "void shard_rebalance() { sited_hop(); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(find_rule(res.fresh, "par-cross-site-schedule"), nullptr);
}

TEST_F(BslintFlowTest, FunctorPassedToScheduleParIsARoot) {
  // The PR 7 idiom: schedule_par(site, t, Tick{&shard, i}) — the functor's
  // operator() becomes a par root without any marker comment.
  write("src/p/c.cpp",
        "void schedule_at(int);\n"
        "void schedule_par(int, int, int);\n"
        "struct Tick {\n"
        "  void operator()() { schedule_at(7); }\n"
        "};\n"
        "void kick() { schedule_par(0, 1, Tick{}); }\n");
  const RunResult res = run_tree();
  const Finding* f = find_rule(res.fresh, "par-cross-site-schedule");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("Tick::operator()"), std::string::npos)
      << f->message;
}

// ----------------------------------------------------- coro-ref-escape

TEST_F(BslintFlowTest, TemporaryToRefParamOfCoroutineFlaggedCrossTU) {
  write("src/e/callee.cpp",
        std::string(kTaskPrelude) +
            "#include <string>\n"
            "sim::Task<int> consume(const std::string& s) { co_return 1; "
            "}\n");
  write("src/e/caller.cpp",
        std::string(kTaskPrelude) +
            "#include <string>\n"
            "namespace sim { template <class T> Task<T> hold(Task<T>); }\n"
            "sim::Task<int> consume(const std::string& s);\n"
            "void fire() { (void)consume(std::string(\"abc\")); }\n");
  const RunResult res = run_tree();
  const Finding* f = find_rule(res.fresh, "coro-ref-escape");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->path, "src/e/caller.cpp");
  EXPECT_NE(f->message.find("'consume'"), std::string::npos);
}

TEST_F(BslintFlowTest, DirectCoAwaitExemptsTheTemporary) {
  // A directly awaited call keeps the temporary alive across the whole
  // co_await expression — not an escape.
  write("src/e/ok.cpp",
        std::string(kTaskPrelude) +
            "#include <string>\n"
            "sim::Task<int> consume(const std::string& s) { co_return 1; "
            "}\n"
            "sim::Task<int> fine() { co_return co_await "
            "consume(std::string(\"ok\")); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(find_rule(res.fresh, "coro-ref-escape"), nullptr);
}

TEST_F(BslintFlowTest, NamedLvalueArgumentIsNotATemporary) {
  write("src/e/lv.cpp",
        std::string(kTaskPrelude) +
            "#include <string>\n"
            "sim::Task<int> consume(const std::string& s) { co_return 1; "
            "}\n"
            "void fire(const std::string& name) { (void)consume(name); }\n");
  const RunResult res = run_tree();
  EXPECT_EQ(find_rule(res.fresh, "coro-ref-escape"), nullptr);
}

TEST_F(BslintFlowTest, RefEscapeSuppressibleAtCallSite) {
  write("src/e/supp.cpp",
        std::string(kTaskPrelude) +
            "#include <string>\n"
            "sim::Task<int> consume(const std::string& s) { co_return 1; "
            "}\n"
            "void fire() {\n"
            "  // bslint: allow(coro-ref-escape): task runs eagerly to "
            "completion\n"
            "  (void)consume(std::string(\"abc\"));\n"
            "}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(find_rule(res.fresh, "coro-ref-escape"), nullptr);
  EXPECT_GE(res.suppressed, 1);
}

// ------------------------------------------------- coro-first-await-if

TEST_F(BslintFlowTest, FirstStatementIfConditionAwaitFlagged) {
  write("src/f/bad.cpp",
        std::string(kTaskPrelude) +
            "sim::Task<int> other();\n"
            "sim::Task<int> bad() {\n"
            "  if (co_await other()) { co_return 1; }\n"
            "  co_return 0;\n"
            "}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "coro-first-await-if"), 1);
}

TEST_F(BslintFlowTest, InitStatementFormAlsoFlagged) {
  // The real-tree shape that motivated the rule:
  // `if (auto r = co_await f(); !r.ok())` as the first statement.
  write("src/f/init.cpp",
        std::string(kTaskPrelude) +
            "sim::Task<int> other();\n"
            "sim::Task<int> bad() {\n"
            "  if (auto r = co_await other(); r != 0) { co_return r; }\n"
            "  co_return 0;\n"
            "}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "coro-first-await-if"), 1);
}

TEST_F(BslintFlowTest, HoistedAwaitIsClean) {
  write("src/f/good.cpp",
        std::string(kTaskPrelude) +
            "sim::Task<int> other();\n"
            "sim::Task<int> good() {\n"
            "  const auto v = co_await other();\n"
            "  if (v != 0) { co_return v; }\n"
            "  co_return 0;\n"
            "}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "coro-first-await-if"), 0);
}

TEST_F(BslintFlowTest, SecondStatementIfConditionAwaitIsClean) {
  // Only the *first* statement displaces the frame header; a later
  // if-condition await is safe (the frame layout is already fixed).
  write("src/f/later.cpp",
        std::string(kTaskPrelude) +
            "sim::Task<int> other();\n"
            "sim::Task<int> later() {\n"
            "  int warm = 1;\n"
            "  if (co_await other()) { co_return warm; }\n"
            "  co_return 0;\n"
            "}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "coro-first-await-if"), 0);
}

TEST_F(BslintFlowTest, FirstAwaitIfSuppressible) {
  write("src/f/supp.cpp",
        std::string(kTaskPrelude) +
            "sim::Task<int> other();\n"
            "sim::Task<int> pinned() {\n"
            "  // bslint: allow(coro-first-await-if): frame checked by "
            "frame_scan on this TU\n"
            "  if (co_await other()) { co_return 1; }\n"
            "  co_return 0;\n"
            "}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "coro-first-await-if"), 0);
  EXPECT_GE(res.suppressed, 1);
}

// ------------------------------------------------------- baseline chains

TEST_F(BslintFlowTest, BaselineV2RoundTripsChainsAndMatchesWithoutThem) {
  write("src/b/a.cpp",
        "long stamp() { return std::time(nullptr); }\n"
        "void encode_b() { stamp(); }\n");
  write("baseline.txt", "");
  std::string out;
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "--fix-baseline", "src"},
                &out),
            0);
  std::ifstream in(root_ / "baseline.txt");
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  // The flow entry carries its chain after '|'.
  EXPECT_NE(text.find("det-journal-encode|encode_b() -> stamp()"),
            std::string::npos)
      << text;
  // Round-trip: the tree is clean against the regenerated baseline, and
  // regeneration is byte-stable.
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "src"}, &out), 0);
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "--fix-baseline", "src"},
                &out),
            0);
  std::ifstream in2(root_ / "baseline.txt");
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  EXPECT_EQ(ss2.str(), text);
}

// ----------------------------------------------------------------- cache

TEST_F(BslintFlowTest, CacheIsByteInvisibleAndHits) {
  write("src/k/a.hpp",
        "#pragma once\n#include <unordered_map>\n"
        "struct K { std::unordered_map<int, int> slots_; void f(); };\n");
  write("src/k/a.cpp",
        "#include \"k/a.hpp\"\n"
        "void K::f() { for (auto& [k, v] : slots_) (void)k; }\n");
  write("src/k/b.cpp", "long t() { return std::time(nullptr); }\n");
  const std::string cache = (root_ / "cache").string();
  std::string cold;
  std::string warm;
  std::string nocache;
  EXPECT_EQ(cli({"--cache-dir", cache, "src"}, &cold), 1);
  EXPECT_EQ(cli({"--cache-dir", cache, "src"}, &warm), 1);
  EXPECT_EQ(cli({"--no-cache", "src"}, &nocache), 1);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(cold, nocache);
  // The warm run actually hit.
  std::string json;
  EXPECT_EQ(cli({"--cache-dir", cache, "--format=json", "src"}, &json), 1);
  EXPECT_NE(json.find("\"cache_hits\": 3"), std::string::npos) << json;
}

TEST_F(BslintFlowTest, HeaderEditInvalidatesIncluderEntries) {
  write("src/k/a.hpp", "#pragma once\nstruct K { int x_; void f(); };\n");
  write("src/k/a.cpp",
        "#include \"k/a.hpp\"\n"
        "void K::f() { x_ = 1; }\n");
  const std::string cache = (root_ / "cache").string();
  std::string out;
  EXPECT_EQ(cli({"--cache-dir", cache, "src"}, &out), 0);
  // The member becomes an unordered map: the .cpp's loop must be found even
  // though the .cpp bytes are unchanged — its dep hash changed.
  write("src/k/a.hpp",
        "#pragma once\n#include <unordered_map>\n"
        "struct K { std::unordered_map<int, int> x_; void f(); };\n");
  write("src/k/a.cpp",
        "#include \"k/a.hpp\"\n"
        "void K::f() { for (auto& [k, v] : x_) (void)k; }\n");
  EXPECT_EQ(cli({"--cache-dir", cache, "src"}, &out), 1);
  EXPECT_NE(out.find("det-unordered-iter"), std::string::npos) << out;
}

TEST_F(BslintFlowTest, CorruptCacheIsACleanColdRun) {
  write("src/k/c.cpp", "int r = std::rand();\n");
  const std::string cache = (root_ / "cache").string();
  fs::create_directories(cache);
  std::ofstream(fs::path(cache) / "index.tsv") << "not a cache at all\n";
  std::string out;
  EXPECT_EQ(cli({"--cache-dir", cache, "src"}, &out), 1);
  EXPECT_NE(out.find("det-random"), std::string::npos);
}

// --------------------------------------------------------------- formats

TEST_F(BslintFlowTest, GccFormatIsTheDefaultWithColumns) {
  write("src/g/a.cpp", "int r = std::rand();\n");
  std::string out;
  EXPECT_EQ(cli({"src"}, &out), 1);
  EXPECT_NE(out.find("src/g/a.cpp:1:14: warning:"), std::string::npos)
      << out;
  EXPECT_NE(out.find("[det-random]"), std::string::npos);
}

TEST_F(BslintFlowTest, JsonFormatIsStableAndCarriesChains) {
  write("src/g/b.cpp",
        "long stamp() { return std::time(nullptr); }\n"
        "void encode_g() { stamp(); }\n");
  std::string a;
  std::string b;
  EXPECT_EQ(cli({"--format=json", "src"}, &a), 1);
  EXPECT_EQ(cli({"--format", "json", "src"}, &b), 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"rule\": \"det-journal-encode\""), std::string::npos)
      << a;
  EXPECT_NE(a.find("\"chain\": \"encode_g() -> stamp()"), std::string::npos)
      << a;
  EXPECT_NE(a.find("\"files_scanned\": 1"), std::string::npos);
}

TEST_F(BslintFlowTest, UnknownFormatIsAUsageError) {
  write("src/g/c.cpp", "int main() { return 0; }\n");
  std::string out;
  EXPECT_EQ(cli({"--format=yaml", "src"}, &out), 2);
}

// ------------------------------------------------------ par-root grammar

TEST_F(BslintFlowTest, ParRootMarkerNeedsARationale) {
  write("src/m/a.cpp",
        "// bslint: par-root:\n"
        "void bare() {}\n");
  const RunResult res = run_tree();
  EXPECT_EQ(count_rule(res.fresh, "hyg-bare-allow"), 1);
}

}  // namespace
}  // namespace bs::lint
