// Unit tests for the frame_scan DWARF-dump parser (tools/frame_scan) on
// canned `readelf --debug-dump=info` excerpts — the real-binary run is the
// lint.frame_scan ctest gate; these pin the parser semantics: frame-type
// recognition, member attribution by DIE depth, the displaced verdict, and
// the CLI contract (including a shimmed readelf so scan_binary's streaming
// path is exercised end to end).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "frame_scan.hpp"

namespace bs::framescan {
namespace {

namespace fs = std::filesystem;

// A structure DIE with two members, in genuine readelf layout.
std::string frame_dump(const std::string& name, int resume_loc,
                       int destroy_loc) {
  std::ostringstream ss;
  ss << " <5><c2bab>: Abbrev Number: 110 (DW_TAG_structure_type)\n"
     << "    <c2bac>   DW_AT_name        : (indirect string, offset: "
        "0xb664b): "
     << name << "\n"
     << "    <c2bb0>   DW_AT_byte_size   : 88\n"
     << " <6><c2bb4>: Abbrev Number: 49 (DW_TAG_member)\n"
     << "    <c2bb5>   DW_AT_name        : (indirect string, offset: "
        "0x1cd769): _Coro_resume_fn\n"
     << "    <c2bbd>   DW_AT_type        : <0x15f096>\n"
     << "    <c2bc1>   DW_AT_data_member_location: " << resume_loc << "\n"
     << " <6><c2bc2>: Abbrev Number: 49 (DW_TAG_member)\n"
     << "    <c2bc3>   DW_AT_name        : (indirect string, offset: "
        "0x1cd770): _Coro_destroy_fn\n"
     << "    <c2bcb>   DW_AT_data_member_location: " << destroy_loc << "\n"
     << " <6><c2bcc>: Abbrev Number: 0\n";
  return ss.str();
}

TEST(FrameScanParser, RecognizesConformingFrame) {
  const auto frames = parse_dwarf(frame_dump("_Z4goodv.Frame", 0, 8));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type_name, "_Z4goodv.Frame");
  EXPECT_EQ(frames[0].byte_size, 88);
  EXPECT_EQ(frames[0].resume_loc, 0);
  EXPECT_EQ(frames[0].destroy_loc, 8);
  EXPECT_FALSE(displaced(frames[0]));
}

TEST(FrameScanParser, FlagsDisplacedResumeSlot) {
  // The GCC 12 miscompile signature: resume fn pushed to offset 8.
  const auto frames = parse_dwarf(frame_dump("_Z3badv.Frame", 8, 16));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(displaced(frames[0]));
}

TEST(FrameScanParser, IgnoresNonFrameStructs) {
  // A struct that merely *has* a member named _Coro_resume_fn (e.g. a
  // hand-rolled handle type) is not a coroutine frame.
  const auto frames = parse_dwarf(frame_dump("HandleShim", 8, 16));
  EXPECT_TRUE(frames.empty());
}

TEST(FrameScanParser, MemberMustBeImmediateChild) {
  // A member at depth 7 belongs to a type nested inside the frame (awaiter
  // temporaries), not to the frame itself.
  std::string dump =
      " <5><100>: Abbrev Number: 110 (DW_TAG_structure_type)\n"
      "    <101>   DW_AT_name        : _Z4nestv.Frame\n"
      "    <105>   DW_AT_byte_size   : 32\n"
      " <6><110>: Abbrev Number: 110 (DW_TAG_structure_type)\n"
      "    <111>   DW_AT_name        : Awaiter\n"
      " <7><120>: Abbrev Number: 49 (DW_TAG_member)\n"
      "    <121>   DW_AT_name        : _Coro_resume_fn\n"
      "    <125>   DW_AT_data_member_location: 24\n"
      " <7><126>: Abbrev Number: 0\n"
      " <6><127>: Abbrev Number: 49 (DW_TAG_member)\n"
      "    <128>   DW_AT_name        : _Coro_resume_fn\n"
      "    <12c>   DW_AT_data_member_location: 0\n"
      " <6><12d>: Abbrev Number: 0\n";
  const auto frames = parse_dwarf(dump);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].resume_loc, 0);  // the depth-7 member did not win
  EXPECT_FALSE(displaced(frames[0]));
}

TEST(FrameScanParser, SiblingAfterEndOfChildrenDoesNotAttach) {
  // Once the frame's children end, a later member at the same depth belongs
  // to some other parent and must not mutate the closed frame.
  std::string dump =
      " <5><100>: Abbrev Number: 110 (DW_TAG_structure_type)\n"
      "    <101>   DW_AT_name        : _Z4dosev.Frame\n"
      " <6><110>: Abbrev Number: 49 (DW_TAG_member)\n"
      "    <111>   DW_AT_name        : _Coro_resume_fn\n"
      "    <115>   DW_AT_data_member_location: 0\n"
      " <6><116>: Abbrev Number: 0\n"
      " <5><117>: Abbrev Number: 110 (DW_TAG_structure_type)\n"
      "    <118>   DW_AT_name        : Other\n"
      " <6><120>: Abbrev Number: 49 (DW_TAG_member)\n"
      "    <121>   DW_AT_name        : _Coro_resume_fn\n"
      "    <125>   DW_AT_data_member_location: 40\n";
  const auto frames = parse_dwarf(dump);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].resume_loc, 0);
}

TEST(FrameScanParser, ExprlocMemberLocationParses) {
  // Some abbrevs encode the location as a DW_OP_plus_uconst exprloc.
  std::string dump =
      " <5><100>: Abbrev Number: 110 (DW_TAG_structure_type)\n"
      "    <101>   DW_AT_name        : _Z4exprv.Frame\n"
      " <6><110>: Abbrev Number: 49 (DW_TAG_member)\n"
      "    <111>   DW_AT_name        : _Coro_resume_fn\n"
      "    <115>   DW_AT_data_member_location: 2 byte block: 23 8 "
      "\t(DW_OP_plus_uconst: 8)\n";
  const auto frames = parse_dwarf(dump);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].resume_loc, 8);
  EXPECT_TRUE(displaced(frames[0]));
}

TEST(FrameScanParser, MissingResumeMemberIsNotDisplaced) {
  std::string dump =
      " <5><100>: Abbrev Number: 110 (DW_TAG_structure_type)\n"
      "    <101>   DW_AT_name        : _Z4barev.Frame\n"
      " <6><110>: Abbrev Number: 49 (DW_TAG_member)\n"
      "    <111>   DW_AT_name        : payload\n"
      "    <115>   DW_AT_data_member_location: 16\n";
  const auto frames = parse_dwarf(dump);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].resume_loc, -1);
  EXPECT_FALSE(displaced(frames[0]));
}

TEST(FrameScanParser, MultipleFramesAccumulate) {
  const std::string dump =
      frame_dump("_Z1av.Frame", 0, 8) + frame_dump("_Z1bv.Frame", 8, 16);
  const auto frames = parse_dwarf(dump);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_FALSE(displaced(frames[0]));
  EXPECT_TRUE(displaced(frames[1]));
}

// --------------------------------------------------------------- the CLI

class FrameScanCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("frame_scan_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(root_);
    fs::create_directories(root_);
    // A readelf shim: ignores --debug-dump=info and cats the "binary",
    // which in these tests is a canned dump text file.
    shim_ = root_ / "readelf_shim.sh";
    std::ofstream out(shim_);
    out << "#!/bin/sh\ncat \"$2\"\n";
    out.close();
    fs::permissions(shim_, fs::perms::owner_all);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path write_dump(const std::string& name, const std::string& text) {
    const fs::path p = root_ / name;
    std::ofstream out(p, std::ios::binary);
    out << text;
    return p;
  }

  int cli(std::vector<std::string> args, std::string* out_text = nullptr) {
    std::vector<std::string> full = {"frame_scan"};
    for (auto& a : args) full.push_back(std::move(a));
    std::vector<const char*> argv;
    argv.reserve(full.size());
    for (const auto& a : full) argv.push_back(a.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int rc =
        scan_main(static_cast<int>(argv.size()), argv.data(), out, err);
    if (out_text != nullptr) *out_text = out.str() + err.str();
    return rc;
  }

  fs::path root_;
  fs::path shim_;
};

TEST_F(FrameScanCliTest, ConformingBinaryExitsZero) {
  const auto dump = write_dump("good.txt", frame_dump("_Z1fv.Frame", 0, 8));
  std::string out;
  EXPECT_EQ(cli({"--readelf", shim_.string(), dump.string()}, &out), 0);
  EXPECT_NE(out.find("1 coroutine frame(s), 0 displaced"),
            std::string::npos)
      << out;
}

TEST_F(FrameScanCliTest, DisplacedFrameExitsOneAndNamesIt) {
  const auto dump = write_dump("bad.txt", frame_dump("_Z1gv.Frame", 8, 16));
  std::string out;
  EXPECT_EQ(cli({"--readelf", shim_.string(), dump.string()}, &out), 1);
  EXPECT_NE(out.find("DISPLACED _Z1gv.Frame"), std::string::npos) << out;
}

TEST_F(FrameScanCliTest, RequireFramesRejectsFramelessBinary) {
  const auto dump = write_dump("empty.txt", "no frames here\n");
  std::string out;
  EXPECT_EQ(cli({"--readelf", shim_.string(), dump.string()}, &out), 0);
  EXPECT_EQ(cli({"--readelf", shim_.string(), "--require-frames",
                 dump.string()},
                &out),
            1);
  EXPECT_NE(out.find("refusing to pass vacuously"), std::string::npos);
}

TEST_F(FrameScanCliTest, UsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(cli({}, &out), 2);                    // no binaries
  EXPECT_EQ(cli({"--no-such-flag", "x"}, &out), 2);
  EXPECT_EQ(cli({"--readelf"}, &out), 2);         // missing value
  EXPECT_EQ(cli({"--readelf", "/nonexistent/readelf", "x"}, &out), 2);
}

}  // namespace
}  // namespace bs::framescan
