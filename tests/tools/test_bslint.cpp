// Self-tests for bslint (tools/bslint). Fixtures are inline snippets fed
// through scan_source with a synthetic path (paths select rule scopes), plus
// filesystem-level tests for run()/lint_main() exit codes and baseline
// semantics. Every shipped rule gets at least one positive, one suppressed
// and one clean fixture.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bslint.hpp"

namespace bs::lint {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

std::vector<Finding> scan(std::string_view path, std::string_view text,
                          ScanStats* stats = nullptr) {
  return scan_source(path, text, stats);
}

bool has_rule(const std::vector<Finding>& fs, std::string_view rule) {
  for (const auto& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

// ------------------------------------------------------------ rule catalog

TEST(BslintCatalog, EveryRuleHasFamilySummaryAndHint) {
  ASSERT_FALSE(rules().empty());
  for (const RuleDesc& r : rules()) {
    EXPECT_TRUE(r.family == 'D' || r.family == 'C' || r.family == 'O' ||
                r.family == 'P' || r.family == 'H')
        << r.id;
    EXPECT_NE(std::string(r.summary), "") << r.id;
    EXPECT_NE(std::string(r.hint), "") << r.id;
    EXPECT_TRUE(rule_known(r.id));
    EXPECT_EQ(rule_desc(r.id), &r);
  }
  EXPECT_FALSE(rule_known("no-such-rule"));
  EXPECT_EQ(rule_desc("no-such-rule"), nullptr);
}

// ------------------------------------------------------- D: det-wallclock

TEST(BslintDeterminism, FlagsWallClockSources) {
  auto fs = scan("src/x.cpp",
                 "#include <chrono>\n"
                 "auto t = std::chrono::system_clock::now();\n"
                 "auto u = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(rules_of(fs), (std::vector<std::string>{
                              "det-wallclock", "det-wallclock",
                              "det-wallclock"}));
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
}

TEST(BslintDeterminism, FlagsBareTimeCallButNotMembersOrProjectCalls) {
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "long t = time(nullptr);\n"),
                       "det-wallclock"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "long t = std::time(0);\n"),
                       "det-wallclock"));
  // Member calls and argument-taking project functions named `time` pass.
  EXPECT_TRUE(scan("src/x.cpp", "auto t = sim.time();\n").empty());
  EXPECT_TRUE(scan("src/x.cpp", "auto t = obj->time();\n").empty());
  EXPECT_TRUE(scan("src/x.cpp", "auto t = time(a, b);\n").empty());
}

TEST(BslintDeterminism, WallClockCleanSimTimeUsage) {
  EXPECT_TRUE(scan("src/x.cpp", "SimTime now = sim.now();\n").empty());
}

// --------------------------------------------------------- D: det-random

TEST(BslintDeterminism, FlagsRandomSources) {
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "#include <random>\n"),
                       "det-random"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::random_device rd;\n"),
                       "det-random"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::mt19937_64 g(7);\n"),
                       "det-random"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "int r = rand();\n"), "det-random"));
  EXPECT_TRUE(has_rule(scan("tests/x.cpp", "srand(42);\n"), "det-random"));
}

TEST(BslintDeterminism, ProjectRngIsClean) {
  EXPECT_TRUE(
      scan("src/x.cpp", "bs::Rng rng(seed); auto v = rng.next();\n").empty());
}

// --------------------------------------------------------- D: det-thread

TEST(BslintDeterminism, FlagsThreadPrimitivesOnlyInSrc) {
  const char* text =
      "#include <thread>\n#include <mutex>\n#include <atomic>\n";
  auto fs = scan("src/x.cpp", text);
  EXPECT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "det-thread");
  // Host-side test code may thread (the sim itself must not).
  EXPECT_TRUE(scan("tests/x.cpp", text).empty());
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "std::this_thread::yield();\n"),
                       "det-thread"));
}

TEST(BslintDeterminism, AllowFileSuppresssWholeFile) {
  ScanStats stats;
  auto fs = scan("src/x.hpp",
                 "// bslint: allow-file(det-thread): host-side pool\n"
                 "#include <thread>\n#include <mutex>\n",
                 &stats);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(stats.suppressed, 2);
}

// --------------------------------------------- D: det-unordered-iter

TEST(BslintDeterminism, FlagsLoopOverUnorderedMember) {
  auto fs = scan("src/x.cpp",
                 "std::unordered_map<int, int> m_;\n"
                 "void f() { for (auto& [k, v] : m_) use(k); }\n");
  ASSERT_TRUE(has_rule(fs, "det-unordered-iter"));
  EXPECT_EQ(fs[0].line, 2);
}

TEST(BslintDeterminism, FlagsIteratorLoopOverUnordered) {
  auto fs = scan("src/x.cpp",
                 "std::unordered_set<int> s_;\n"
                 "void f() {\n"
                 "  for (auto it = s_.begin(); it != s_.end(); ++it) g(it);\n"
                 "}\n");
  EXPECT_TRUE(has_rule(fs, "det-unordered-iter"));
}

TEST(BslintDeterminism, OrderedMapLoopIsClean) {
  EXPECT_TRUE(scan("src/x.cpp",
                   "std::map<int, int> m_;\n"
                   "void f() { for (auto& [k, v] : m_) use(k); }\n")
                  .empty());
}

TEST(BslintDeterminism, SuppressedUnorderedLoopCounts) {
  ScanStats stats;
  auto fs = scan("src/x.cpp",
                 "std::unordered_map<int, int> m_;\n"
                 "void f() {\n"
                 "  // bslint: allow(det-unordered-iter): sums are "
                 "order-insensitive\n"
                 "  for (auto& [k, v] : m_) total += v;\n"
                 "}\n",
                 &stats);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(stats.suppressed, 1);
}

TEST(BslintDeterminism, UnorderedIterOnlyAppliesUnderSrc) {
  const char* text =
      "std::unordered_map<int, int> m_;\n"
      "void f() { for (auto& [k, v] : m_) use(k); }\n";
  EXPECT_TRUE(scan("tests/x.cpp", text).empty());
}

// --------------------------------------------- D: det-journal-encode

TEST(BslintDeterminism, FlagsEncoderIteratingUnorderedContainer) {
  auto fs = scan("src/x.cpp",
                 "std::unordered_map<Key, Rec> recs_;\n"
                 "std::vector<Entry> encode_checkpoint() {\n"
                 "  std::vector<Entry> image;\n"
                 "  for (auto& [k, v] : recs_) image.push_back(enc(k, v));\n"
                 "  return image;\n"
                 "}\n");
  ASSERT_TRUE(has_rule(fs, "det-journal-encode"));
  // The generic unordered-loop rule fires too; the encoder rule pins the
  // durable-record hazard specifically.
  EXPECT_TRUE(has_rule(fs, "det-unordered-iter"));
  EXPECT_EQ(fs[0].line, 4);
}

TEST(BslintDeterminism, FlagsEncoderSerializingPointers) {
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp",
           "void encode_record(const Rec& r, Buf& b) {\n"
           "  b.put(reinterpret_cast<const char*>(&r), sizeof(r));\n"
           "}\n"),
      "det-journal-encode"));
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp",
           "void encode_record(Rec* r, Buf& b) {\n"
           "  b.put_u64(static_cast<std::uintptr_t>(0) + uintptr_t(r));\n"
           "}\n"),
      "det-journal-encode"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp",
                            "void encode_record(Rec* r, char* out) {\n"
                            "  std::snprintf(out, 32, \"%p\", (void*)r);\n"
                            "}\n"),
                       "det-journal-encode"));
}

TEST(BslintDeterminism, SortedSnapshotEncoderIsClean) {
  auto fs = scan("src/x.cpp",
                 "std::vector<Entry> encode_checkpoint() {\n"
                 "  std::vector<Entry> image;\n"
                 "  for (const Key& k : sorted_keys()) image.push_back(e(k));\n"
                 "  return image;\n"
                 "}\n");
  EXPECT_FALSE(has_rule(fs, "det-journal-encode"));
}

TEST(BslintDeterminism, EncoderCallSitesAndDeclarationsAreNotScanned) {
  // Only definitions have bodies to scan; a call next to an unordered loop
  // in some *other* function must not be attributed to the encoder.
  auto fs = scan("src/x.cpp",
                 "std::vector<Entry> encode_checkpoint();\n"
                 "std::unordered_map<int, int> m_;\n"
                 "void f() {\n"
                 "  install(encode_checkpoint());\n"
                 "  for (auto& [k, v] : m_) use(k);\n"
                 "}\n");
  EXPECT_FALSE(has_rule(fs, "det-journal-encode"));
  EXPECT_TRUE(has_rule(fs, "det-unordered-iter"));
}

TEST(BslintDeterminism, SuppressedEncoderLoopCounts) {
  ScanStats stats;
  auto fs = scan(
      "src/x.cpp",
      "std::unordered_map<Key, Rec> recs_;\n"
      "std::vector<Entry> encode_checkpoint() {\n"
      "  std::vector<Key> keys;\n"
      "  // bslint: allow(det-unordered-iter): snapshot sorted below\n"
      "  // bslint: allow(det-journal-encode): snapshot sorted below\n"
      "  for (auto& [k, v] : recs_) keys.push_back(k);\n"
      "  std::sort(keys.begin(), keys.end());\n"
      "  return encode_sorted(keys);\n"
      "}\n",
      &stats);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(stats.suppressed, 2);
}

TEST(BslintDeterminism, JournalEncodeOnlyAppliesUnderSrc) {
  const char* text =
      "std::unordered_map<Key, Rec> recs_;\n"
      "std::vector<Entry> encode_checkpoint() {\n"
      "  for (auto& [k, v] : recs_) emit(k, v);\n"
      "}\n";
  EXPECT_FALSE(has_rule(scan("tests/x.cpp", text), "det-journal-encode"));
  EXPECT_FALSE(has_rule(scan("bench/x.cpp", text), "det-journal-encode"));
}

TEST(BslintDeterminism, FlagsCustodyBundleEncoderIteratingUnordered) {
  // The custody checkpoint walks the dedup index straight into durable
  // records: both the encoder rule and the repl-wide container ban fire.
  auto fs = scan(
      "src/repl/egress.cpp",
      "std::unordered_map<SiteId, IdSet> applied_;\n"
      "std::vector<Entry> encode_checkpoint() {\n"
      "  std::vector<Entry> image;\n"
      "  for (auto& [peer, ids] : applied_) image.push_back(enc(peer, ids));\n"
      "  return image;\n"
      "}\n");
  EXPECT_TRUE(has_rule(fs, "det-journal-encode"));
  EXPECT_TRUE(has_rule(fs, "det-custody-order"));
}

TEST(BslintDeterminism, QueueOrderCustodyEncoderIsClean) {
  // Checkpointing in queue order from sequential containers is the blessed
  // shape — no encoder or custody-order findings.
  auto fs = scan(
      "src/repl/egress.cpp",
      "std::map<SiteId, Dst> dsts_;\n"
      "std::vector<Entry> encode_checkpoint() {\n"
      "  std::vector<Entry> image;\n"
      "  for (const auto& [dst, st] : dsts_) {\n"
      "    for (const Bundle& b : st.queue.bundles()) {\n"
      "      image.push_back(enc(dst, b));\n"
      "    }\n"
      "  }\n"
      "  return image;\n"
      "}\n");
  EXPECT_FALSE(has_rule(fs, "det-journal-encode"));
  EXPECT_FALSE(has_rule(fs, "det-custody-order"));
}

// ---------------------------------------------- D: det-custody-order

TEST(BslintDeterminism, FlagsUnorderedDeclarationInReplPlane) {
  // Declaration alone is the finding — the scanner cannot prove a walk
  // never reaches the wire, so src/repl bans hash-ordered state outright.
  auto fs = scan("src/repl/version_map.cpp",
                 "std::unordered_map<BlobId, Range> regions_;\n");
  ASSERT_TRUE(has_rule(fs, "det-custody-order"));
  EXPECT_EQ(fs[0].line, 1);
}

TEST(BslintDeterminism, FlagsIteratorWalkOverIncludedUnorderedMember) {
  // No range-for (det-unordered-iter's shape) — an explicit begin() walk
  // over an unordered member is still hash order reaching the wire.
  auto fs = scan("src/repl/reconciler.cpp",
                 "std::unordered_set<uint64_t> pending_;\n"
                 "void emit() {\n"
                 "  auto it = pending_.begin();\n"
                 "  while (it != pending_.end()) send(*it++);\n"
                 "}\n");
  bool walk_flagged = false;
  for (const auto& f : fs) {
    if (f.rule == "det-custody-order" && f.line == 3) walk_flagged = true;
  }
  EXPECT_TRUE(walk_flagged);  // beyond the line-1 declaration finding
}

TEST(BslintDeterminism, OrderedReplStateIsClean) {
  EXPECT_TRUE(scan("src/repl/egress.cpp",
                   "std::map<SiteId, IdSet> applied_;\n"
                   "std::deque<Bundle> queue_;\n"
                   "void f() { for (auto& [k, v] : applied_) use(k); }\n")
                  .empty());
}

TEST(BslintDeterminism, CustodyOrderOnlyAppliesToWireEncodingPlanes) {
  const char* text = "std::unordered_map<int, int> m_;\n";
  EXPECT_FALSE(has_rule(scan("src/blob/x.cpp", text), "det-custody-order"));
  EXPECT_FALSE(has_rule(scan("tests/repl/x.cpp", text), "det-custody-order"));
  EXPECT_FALSE(has_rule(scan("tests/cloud/x.cpp", text),
                        "det-custody-order"));
}

TEST(BslintDeterminism, FlagsUnorderedDeclarationInCloudPlane) {
  // The gateway checkpoints its dedup index and serializes list_objects
  // pages straight from container walks, so src/cloud carries the same
  // ordered-state ban as src/repl.
  auto fs = scan("src/cloud/gateway.cpp",
                 "std::unordered_map<uint64_t, Entry> index_;\n");
  ASSERT_TRUE(has_rule(fs, "det-custody-order"));
  EXPECT_EQ(fs[0].line, 1);
}

TEST(BslintDeterminism, OrderedCloudStateIsClean) {
  EXPECT_TRUE(scan("src/cloud/dedup_index.cpp",
                   "std::map<uint64_t, Entry> entries_;\n"
                   "void f() { for (auto& [h, e] : entries_) use(h); }\n")
                  .empty());
}

TEST(BslintDeterminism, SuppressedCustodyOrderCounts) {
  ScanStats stats;
  auto fs = scan("src/repl/x.cpp",
                 "// bslint: allow(det-custody-order): scratch index, never "
                 "serialized\n"
                 "std::unordered_set<uint64_t> scratch_;\n",
                 &stats);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(stats.suppressed, 1);
}

// -------------------------------------------------- C: coro-ref-param

TEST(BslintCoro, FlagsTaskCoroutineWithReferenceParam) {
  auto fs = scan("src/x.cpp",
                 "sim::Task<void> f(const Big& b) { co_return; }\n");
  ASSERT_TRUE(has_rule(fs, "coro-ref-param"));
}

TEST(BslintCoro, FlagsViewParams) {
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp", "sim::Task<int> f(std::string_view s);\n"),
      "coro-ref-param"));
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp", "sim::Task<int> f(std::span<int> s);\n"),
      "coro-ref-param"));
}

TEST(BslintCoro, MultiLineSignatureAttributedToDeclaratorLine) {
  auto fs = scan("src/x.cpp",
                 "sim::Task<Result<void>> long_name(\n"
                 "    const Thing& a,\n"
                 "    const Other& b);\n");
  ASSERT_EQ(fs.size(), 1u);  // deduped: one finding per declarator line+rule
  EXPECT_EQ(fs[0].line, 1);
}

TEST(BslintCoro, AllowAboveMultiLineSignatureCovers) {
  ScanStats stats;
  auto fs = scan("src/x.cpp",
                 "// bslint: allow(coro-ref-param): caller owns a and b\n"
                 "// across the whole awaited expression\n"
                 "sim::Task<Result<void>> long_name(\n"
                 "    const Thing& a,\n"
                 "    const Other& b);\n",
                 &stats);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(stats.suppressed, 1);
}

TEST(BslintCoro, ByValueTaskCoroutineIsClean) {
  EXPECT_TRUE(
      scan("src/x.cpp", "sim::Task<void> f(Key k, int n) { co_return; }\n")
          .empty());
}

TEST(BslintCoro, EnvelopeHandlersAreExemptByContract) {
  // The erased serve() wrapper owns the request and envelope across the
  // handler's co_await, so Envelope-taking signatures are exempt.
  EXPECT_TRUE(scan("src/x.cpp",
                   "sim::Task<Result<R>> h(const Req& q, "
                   "const rpc::Envelope& env);\n")
                  .empty());
}

TEST(BslintCoro, TaskVariableAndTemplateArgAreNotSignatures) {
  EXPECT_TRUE(scan("src/x.cpp", "sim::Task<void> t = make();\n").empty());
  EXPECT_TRUE(
      scan("src/x.cpp", "std::vector<sim::Task<void>> pending;\n").empty());
}

// --------------------------------------------- P: perf-large-byvalue

TEST(BslintPerf, FlagsContainerPassedByValueIntoCoroutine) {
  auto fs = scan("src/x.cpp",
                 "sim::Task<void> f(std::vector<Record> batch);\n");
  ASSERT_TRUE(has_rule(fs, "perf-large-byvalue"));
}

TEST(BslintPerf, FlagsMapAndDequeByValueToo) {
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp",
           "sim::Task<int> g(std::unordered_map<Key, int> m) { co_return 0; }\n"),
      "perf-large-byvalue"));
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp", "sim::Task<void> h(std::deque<Item> q);\n"),
      "perf-large-byvalue"));
}

TEST(BslintPerf, IndirectContainerParamsAreClean) {
  // Reference / pointer params don't copy into the frame; the coro-ref-param
  // rule owns their lifetime story. Nested container template args (e.g. a
  // by-value Key inside vector<...> of another param) must not confuse the
  // per-parameter scan either.
  auto fs = scan("src/x.cpp",
                 "sim::Task<void> f(std::vector<Record>* out, Key k);\n");
  EXPECT_FALSE(has_rule(fs, "perf-large-byvalue"));
}

TEST(BslintPerf, SmallByValueParamsAreClean) {
  EXPECT_TRUE(
      scan("src/x.cpp", "sim::Task<void> f(Key k, double x) { co_return; }\n")
          .empty());
}

TEST(BslintPerf, SuppressedByValueBatchCounts) {
  ScanStats stats;
  auto fs = scan(
      "src/x.cpp",
      "// bslint: allow(perf-large-byvalue): consumed batch; callers move\n"
      "sim::Task<void> f(std::vector<Record> batch);\n",
      &stats);
  EXPECT_FALSE(has_rule(fs, "perf-large-byvalue"));
  EXPECT_EQ(stats.suppressed, 1);
}

TEST(BslintPerf, EnvelopeHandlersAreExemptFromByValueRuleToo) {
  // serve() handlers receive const Req&; a by-value container there would be
  // caught in the handler body's own signature, not the Envelope wrapper.
  EXPECT_TRUE(scan("src/x.cpp",
                   "sim::Task<Result<R>> h(std::vector<Record> b, "
                   "const rpc::Envelope& env);\n")
                  .empty());
}

// ---------------------------------------------- P: par-cross-site-schedule

TEST(BslintPar, FlagsUnsitedScheduleCapturingShardState) {
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp",
           "void f() { sim.schedule_at(t, [&shard] { shard.ops++; }); }\n"),
      "par-cross-site-schedule"));
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp",
           "void f() { sim.schedule_in(dt, [s = &dst_shard] { s->poke(); "
           "}); }\n"),
      "par-cross-site-schedule"));
}

TEST(BslintPar, SiteTaggedSchedulesAreClean) {
  // schedule_on_site / schedule_par carry the owning lane explicitly.
  EXPECT_TRUE(
      scan("src/x.cpp",
           "void f() { sim.schedule_on_site(s, t, [&shard] { shard.ops++; "
           "}); }\n")
          .empty());
  EXPECT_TRUE(
      scan("src/x.cpp",
           "void f() { sim.schedule_par(s, t, [&shard] { shard.ops++; }); "
           "}\n")
          .empty());
}

TEST(BslintPar, ShardFreeCapturesAndSubscriptsAreClean) {
  EXPECT_TRUE(scan("src/x.cpp",
                   "void f() { sim.schedule_at(t, [&count] { ++count; }); }\n")
                  .empty());
  // A subscript expression inside the argument list is not a capture list.
  EXPECT_TRUE(scan("src/x.cpp",
                   "void f() { sim.schedule_at(t, cbs[shard_idx]); }\n")
                  .empty());
}

TEST(BslintPar, UnsitedShardScheduleOnlyAppliesUnderSrc) {
  EXPECT_FALSE(has_rule(
      scan("tests/x.cpp",
           "void f() { sim.schedule_at(t, [&shard] { shard.ops++; }); }\n"),
      "par-cross-site-schedule"));
}

TEST(BslintPar, SuppressedUnsitedShardScheduleCounts) {
  ScanStats stats;
  auto fs = scan(
      "src/x.cpp",
      "// bslint: allow(par-cross-site-schedule): shard is lane-local here\n"
      "void f() { sim.schedule_at(t, [&shard] { shard.ops++; }); }\n",
      &stats);
  EXPECT_FALSE(has_rule(fs, "par-cross-site-schedule"));
  EXPECT_EQ(stats.suppressed, 1);
}

// ---------------------------------------------- C: coro-lambda-capture

TEST(BslintCoro, FlagsRefCaptureLambdaCoroutine) {
  auto fs = scan("src/x.cpp",
                 "void f() {\n"
                 "  auto t = [&]() -> sim::Task<void> { co_return; };\n"
                 "}\n");
  EXPECT_TRUE(has_rule(fs, "coro-lambda-capture"));
}

TEST(BslintCoro, FlagsThisCaptureLambdaCoroutine) {
  EXPECT_TRUE(has_rule(
      scan("src/x.cpp",
           "void C::f() {\n"
           "  spawn([this]() -> sim::Task<void> { co_await g(); });\n"
           "}\n"),
      "coro-lambda-capture"));
}

TEST(BslintCoro, ValueCaptureAndPlainLambdasAreClean) {
  EXPECT_TRUE(scan("src/x.cpp",
                   "void f() {\n"
                   "  auto t = [n]() -> sim::Task<void> { co_return; };\n"
                   "  auto u = [&] { plain(); };\n"
                   "}\n")
                  .empty());
}

TEST(BslintCoro, ServeStoredLambdasAreExempt) {
  // Lambdas registered via Node::serve are stored for the node's lifetime.
  EXPECT_TRUE(scan("src/x.cpp",
                   "void C::reg() {\n"
                   "  node_.serve<Req, Resp>(\n"
                   "      [this](const Req& q, const rpc::Envelope&)\n"
                   "          -> sim::Task<Result<Resp>> {\n"
                   "        co_return handle(q);\n"
                   "      });\n"
                   "}\n")
                  .empty());
}

TEST(BslintCoro, SubscriptAndAttributesAreNotCaptures) {
  EXPECT_TRUE(scan("src/x.cpp",
                   "void f() { v[i] = 1; }\n"
                   "[[nodiscard]] int g();\n")
                  .empty());
}

// -------------------------------------------------- C: coro-view-temp

TEST(BslintCoro, FlagsStringViewBoundToCallInCoroutine) {
  auto fs = scan("src/x.cpp",
                 "sim::Task<void> f() {\n"
                 "  std::string_view sv = name();\n"
                 "  co_await step(sv);\n"
                 "}\n");
  EXPECT_TRUE(has_rule(fs, "coro-view-temp"));
}

TEST(BslintCoro, StringViewFromLvalueOrOutsideCoroutineIsClean) {
  EXPECT_TRUE(scan("src/x.cpp",
                   "sim::Task<void> f(std::string s) {\n"
                   "  std::string_view sv = s;\n"
                   "  co_await step(sv);\n"
                   "}\n")
                  .empty());
  EXPECT_TRUE(scan("src/x.cpp",
                   "void g() {\n"
                   "  std::string_view sv = name();\n"
                   "  use(sv);\n"
                   "}\n")
                  .empty());
}

// ----------------------------------------------------- O: obs-unguarded

TEST(BslintObs, FlagsUnguardedSinkDereference) {
  auto fs =
      scan("src/x.cpp", "void f() { obs::sink()->instant(\"x\", \"y\"); }\n");
  ASSERT_TRUE(has_rule(fs, "obs-unguarded"));
}

TEST(BslintObs, GuardedIdiomAndSelfGuardedHelpersAreClean) {
  EXPECT_TRUE(scan("src/x.cpp",
                   "void f() {\n"
                   "  if (auto* ts = obs::sink()) ts->instant(\"x\", \"y\");\n"
                   "  obs::count(\"ops\");\n"
                   "}\n")
                  .empty());
}

TEST(BslintObs, ObsImplementationItselfIsExempt) {
  EXPECT_TRUE(
      scan("src/obs/x.cpp", "void f() { obs::sink()->flush(); }\n").empty());
}

// --------------------------------------------------------- H: hygiene

TEST(BslintHygiene, FlagsIostreamOutsideVizExamplesTools) {
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "#include <iostream>\n"),
                       "hyg-iostream"));
  EXPECT_TRUE(scan("src/viz/x.cpp", "#include <iostream>\n").empty());
  EXPECT_TRUE(scan("examples/x.cpp", "#include <iostream>\n").empty());
  EXPECT_TRUE(scan("tools/x.cpp", "#include <iostream>\n").empty());
}

TEST(BslintHygiene, FlagsUsingNamespaceInHeadersOnly) {
  EXPECT_TRUE(has_rule(scan("src/x.hpp", "using namespace std;\n"),
                       "hyg-using-namespace"));
  EXPECT_TRUE(scan("src/x.cpp", "using namespace std::literals;\n").empty());
  EXPECT_TRUE(scan("src/x.hpp", "using std::string;\n").empty());
}

// ------------------------------------------------ suppression parsing

TEST(BslintSuppression, BareAllowIsItselfAFinding) {
  auto fs = scan("src/x.cpp",
                 "std::unordered_map<int, int> m_;\n"
                 "// bslint: allow(det-unordered-iter)\n"
                 "void f() { for (auto& [k, v] : m_) use(k); }\n");
  // The loop is suppressed, but the rationale-less comment is flagged.
  EXPECT_EQ(rules_of(fs), std::vector<std::string>{"hyg-bare-allow"});
}

TEST(BslintSuppression, UnknownRuleInAllowIsFlagged) {
  auto fs = scan("src/x.cpp", "// bslint: allow(no-such-rule): because\n");
  EXPECT_EQ(rules_of(fs), std::vector<std::string>{"hyg-bad-allow"});
}

TEST(BslintSuppression, MalformedCommentsAreFlagged) {
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "// bslint: deny(det-random)\n"),
                       "hyg-bad-allow"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "// bslint: allow det-random\n"),
                       "hyg-bad-allow"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "// bslint: allow(\n"),
                       "hyg-bad-allow"));
  EXPECT_TRUE(has_rule(scan("src/x.cpp", "// bslint: allow(): why\n"),
                       "hyg-bad-allow"));
}

TEST(BslintSuppression, MultiRuleAllowCoversBoth) {
  ScanStats stats;
  auto fs = scan("src/x.cpp",
                 "// bslint: allow(det-random, det-wallclock): fixture\n"
                 "long x = time(nullptr) + rand();\n",
                 &stats);
  EXPECT_TRUE(fs.empty());
  EXPECT_EQ(stats.suppressed, 2);
}

TEST(BslintSuppression, TrailingAllowCoversOwnLine) {
  auto fs = scan(
      "src/x.cpp",
      "int r = rand();  // bslint: allow(det-random): seeded upstream\n");
  EXPECT_TRUE(fs.empty());
}

TEST(BslintSuppression, AllowDoesNotLeakTwoCodeLinesDown) {
  auto fs = scan("src/x.cpp",
                 "// bslint: allow(det-random): only the next line\n"
                 "int a = rand();\n"
                 "int b = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 3);
}

TEST(BslintSuppression, SuppressionsInsideStringsAreIgnored) {
  // A raw-string fixture quoting a suppression must not suppress anything.
  auto fs = scan("src/x.cpp",
                 "const char* s = \"// bslint: allow(det-random): x\";\n"
                 "int r = rand();\n");
  EXPECT_EQ(rules_of(fs), std::vector<std::string>{"det-random"});
}

// ------------------------------------------------------------- baseline

TEST(BslintBaseline, FormatIsSortedAndStable) {
  std::vector<Finding> in = {
      {"b.cpp", 9, "det-random", "m", 1, ""},
      {"a.cpp", 12, "det-wallclock", "m", 1, ""},
      {"a.cpp", 3, "hyg-iostream", "m", 1, ""},
  };
  const std::string text = format_baseline(in);
  std::vector<std::string> bad;
  auto parsed = parse_baseline(text, &bad);
  EXPECT_TRUE(bad.empty());
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].path, "a.cpp");
  EXPECT_EQ(parsed[0].line, 3);
  EXPECT_EQ(parsed[1].line, 12);
  EXPECT_EQ(parsed[2].path, "b.cpp");
  // Round-trip: formatting the parsed findings reproduces the text.
  EXPECT_EQ(format_baseline(parsed), text);
}

TEST(BslintBaseline, ParserRejectsGarbageLines) {
  std::vector<std::string> bad;
  auto parsed = parse_baseline(
      "# comment\n"
      "\n"
      "a.cpp:12:det-random\n"
      "not a baseline line\n"
      "a.cpp:xx:det-random\n"
      "a.cpp:5:no-such-rule\n",
      &bad);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].rule, "det-random");
  EXPECT_EQ(bad.size(), 3u);
}

// --------------------------------------------------- run() + lint_main()

class BslintCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("bslint_test_" + std::to_string(::testing::UnitTest::GetInstance()
                                                 ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::create_directories(root_ / "src");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << text;
  }

  int cli(std::vector<std::string> args, std::string* out_text = nullptr) {
    std::vector<std::string> argv_s = {"bslint", "--root", root_.string()};
    for (auto& a : args) argv_s.push_back(std::move(a));
    std::vector<const char*> argv;
    argv.reserve(argv_s.size());
    for (const auto& a : argv_s) argv.push_back(a.c_str());
    std::ostringstream out;
    std::ostringstream err;
    const int rc = lint_main(static_cast<int>(argv.size()), argv.data(), out,
                             err);
    if (out_text != nullptr) *out_text = out.str() + err.str();
    return rc;
  }

  fs::path root_;
};

TEST_F(BslintCliTest, CleanTreeExitsZero) {
  write("src/ok.cpp", "int main() { return 0; }\n");
  EXPECT_EQ(cli({"src"}), 0);
}

TEST_F(BslintCliTest, FindingsExitOneWithDiagnosticAndHint) {
  write("src/bad.cpp", "int r = rand();\n");
  std::string out;
  EXPECT_EQ(cli({"src"}, &out), 1);
  EXPECT_NE(out.find("src/bad.cpp:1:9: warning: call to 'rand()' [det-random]"), std::string::npos);
  EXPECT_NE(out.find("hint:"), std::string::npos);
}

TEST_F(BslintCliTest, UsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(cli({}, &out), 2);  // no paths
  EXPECT_EQ(cli({"--no-such-flag", "src"}, &out), 2);
  EXPECT_EQ(cli({"no/such/dir"}, &out), 2);
  EXPECT_EQ(cli({"--fix-baseline", "src"}, &out), 2);  // needs --baseline
}

TEST_F(BslintCliTest, BaselinedFindingsDoNotFail) {
  write("src/bad.cpp", "int r = rand();\n");
  write("baseline.txt", "src/bad.cpp:1:det-random\n");
  std::string out;
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "src"}, &out), 0);
  EXPECT_NE(out.find("1 baselined"), std::string::npos);
}

TEST_F(BslintCliTest, StaleBaselineEntriesAreReportedNotFatal) {
  write("src/ok.cpp", "int main() { return 0; }\n");
  write("baseline.txt", "src/gone.cpp:9:det-random\n");
  std::string out;
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "src"}, &out), 0);
  EXPECT_NE(out.find("stale baseline entry"), std::string::npos);
}

TEST_F(BslintCliTest, FixBaselineWritesSortedFileAndSecondRunIsClean) {
  write("src/bad.cpp", "int r = rand();\nlong t = std::time(0);\n");
  write("src/also.cpp", "std::mt19937 g;\n");
  write("baseline.txt", "");
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "--fix-baseline", "src"}), 0);
  std::ifstream in(root_ / "baseline.txt");
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  // Entries sorted by path, then line.
  const auto a = text.find("src/also.cpp:1:det-random");
  const auto b = text.find("src/bad.cpp:1:det-random");
  const auto c = text.find("src/bad.cpp:2:det-wallclock");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // Regeneration is idempotent, and the tree now passes against it.
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "--fix-baseline", "src"}), 0);
  std::ifstream in2(root_ / "baseline.txt");
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  EXPECT_EQ(ss2.str(), text);
  EXPECT_EQ(cli({"--baseline", "baseline.txt", "src"}), 0);
}

TEST_F(BslintCliTest, HeaderDeclaredUnorderedMemberCaughtInCpp) {
  write("src/widget.hpp",
        "#pragma once\n#include <unordered_map>\n"
        "class W { std::unordered_map<int, int> items_; void f(); };\n");
  write("src/widget.cpp",
        "#include \"widget.hpp\"\n"
        "void W::f() { for (auto& [k, v] : items_) use(k); }\n");
  std::string out;
  EXPECT_EQ(cli({"src"}, &out), 1);
  EXPECT_NE(out.find("src/widget.cpp:2:15: warning:"),
            std::string::npos);
}

TEST_F(BslintCliTest, ListRulesPrintsCatalog) {
  std::string out;
  EXPECT_EQ(cli({"--list-rules"}, &out), 0);
  for (const RuleDesc& r : rules()) {
    EXPECT_NE(out.find(r.id), std::string::npos) << r.id;
  }
}

}  // namespace
}  // namespace bs::lint
