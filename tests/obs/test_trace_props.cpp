// Property tests for the observability plane (ISSUE 3, satellite 2):
//   * every span closes exactly once — no double ends, no leaks;
//   * children nest inside their parents' sim-time intervals;
//   * RPC retry attempts appear as sibling spans carrying attempt indices;
//   * spans interrupted by a crash are closed with status "aborted";
//   * the Chrome trace export is structurally valid (monotone timestamps,
//     balanced B/E per tid) even for traces with open spans at the cutoff;
//   * replaying a seed yields a bit-identical trace stream.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "obs_test_util.hpp"
#include "chaos_scenario.hpp"
#include "rpc/rpc.hpp"
#include "test_util.hpp"

namespace bs {
namespace {

struct EchoReq {
  static constexpr const char* kName = "test.echo";
  int value{0};
  std::uint64_t wire_size() const { return 32; }
};
struct EchoResp {
  int value{0};
  std::uint64_t wire_size() const { return 32; }
};
struct SlowReq {
  static constexpr const char* kName = "test.slow";
  std::uint64_t wire_size() const { return 16; }
};
struct SlowResp {
  std::uint64_t wire_size() const { return 16; }
};

/// Bare echo cluster: no background loops, so draining the simulation
/// leaves no open spans — the strictest close-exactly-once environment.
class TraceProps : public ::testing::Test {
 protected:
  TraceProps() : cluster_(sim_, net::Topology::grid5000()) {
    sim_.attach_trace(sink_);
    server_ = cluster_.add_node(0);
    client_ = cluster_.add_node(1);
    server_->serve<EchoReq, EchoResp>(
        [](const EchoReq& req,
           const rpc::Envelope&) -> sim::Task<Result<EchoResp>> {
          co_return EchoResp{req.value * 2};
        });
    server_->serve<SlowReq, SlowResp>(
        [this](const SlowReq&,
               const rpc::Envelope&) -> sim::Task<Result<SlowResp>> {
          co_await sim_.delay(simtime::seconds(60));
          co_return SlowResp{};
        });
  }
  ~TraceProps() override { sim::Simulation::detach_trace(); }

  void SetUp() override {
    if (!obs::kEnabled) GTEST_SKIP() << "built with BS_TRACE=OFF";
  }

  sim::Simulation sim_;
  obs::TraceSink sink_;
  rpc::Cluster cluster_;
  rpc::Node* server_{nullptr};
  rpc::Node* client_{nullptr};
};

TEST_F(TraceProps, EverySpanClosesExactlyOnce) {
  for (int i = 0; i < 5; ++i) {
    auto r = test::run_task(
        sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                               EchoReq{i}));
    ASSERT_TRUE(r.ok());
  }
  sim_.run();  // drain stragglers

  const auto spans = test::collect_spans(sink_);
  ASSERT_FALSE(spans.empty());
  for (const auto& [id, s] : spans) {
    EXPECT_EQ(s.begins, 1u) << "span " << id << " (" << s.name << ")";
    EXPECT_EQ(s.ends, 1u) << "span " << id << " (" << s.name << ")";
    EXPECT_TRUE(s.closed) << "span " << id << " (" << s.name << ")";
  }
  EXPECT_EQ(sink_.open_spans(), 0u);
  EXPECT_EQ(sink_.stray_ends(), 0u);
  EXPECT_EQ(sink_.dropped(), 0u);
}

TEST_F(TraceProps, ChildrenNestInsideParentIntervals) {
  for (int i = 0; i < 3; ++i) {
    (void)test::run_task(
        sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                               EchoReq{i}));
  }
  sim_.run();

  const auto spans = test::collect_spans(sink_);
  std::size_t children = 0;
  for (const auto& [id, s] : spans) {
    if (s.parent == 0) continue;
    auto pit = spans.find(s.parent);
    ASSERT_NE(pit, spans.end()) << "dangling parent of span " << id;
    const test::SpanRec& p = pit->second;
    ++children;
    EXPECT_GE(s.begin, p.begin) << s.name << " begins before parent "
                                << p.name;
    EXPECT_LE(s.end, p.end) << s.name << " outlives parent " << p.name;
  }
  EXPECT_GT(children, 0u);
}

TEST_F(TraceProps, RetryAttemptsAreSiblingSpansWithIndices) {
  // Drop the first two request transmissions; the third attempt succeeds.
  int drops_left = 2;
  cluster_.set_link_fault_fn(
      [&](net::SiteId from, net::SiteId) -> rpc::Cluster::LinkFault {
        rpc::Cluster::LinkFault f;
        if (from == client_->site() && drops_left > 0) {
          --drops_left;
          f.drop = true;
        }
        return f;
      });
  rpc::CallOptions opts;
  opts.timeout = simtime::seconds(1);
  opts.retry = rpc::RetryPolicy{.max_attempts = 3};
  auto r = test::run_task(
      sim_, cluster_.call<EchoReq, EchoResp>(*client_, server_->id(),
                                             EchoReq{7}, opts));
  ASSERT_TRUE(r.ok());
  sim_.run();

  const auto spans = test::collect_spans(sink_);
  obs::SpanId call_id = 0;
  for (const auto& [id, s] : spans) {
    if (s.name == "test.echo" && s.cat == "rpc") call_id = id;
  }
  ASSERT_NE(call_id, 0u);
  EXPECT_EQ(spans.at(call_id).status, "ok");

  std::vector<const test::SpanRec*> attempts;
  for (const auto& [id, s] : spans) {
    if (s.name == "rpc.attempt") attempts.push_back(&s);
  }
  ASSERT_EQ(attempts.size(), 3u);
  std::set<std::int64_t> indices;
  for (const test::SpanRec* a : attempts) {
    EXPECT_EQ(a->parent, call_id) << "attempts must be call-span siblings";
    indices.insert(a->arg0);
  }
  EXPECT_EQ(indices, (std::set<std::int64_t>{1, 2, 3}));
  EXPECT_EQ(attempts.back()->status, "ok");
  EXPECT_EQ(attempts.front()->status, "timeout");

  // The retries also leave instants linked to the call span.
  std::size_t retries = 0;
  sink_.for_each([&](const obs::TraceRecord& rec) {
    if (rec.kind == obs::RecordKind::instant &&
        std::string(rec.name) == "rpc.retry") {
      ++retries;
      EXPECT_EQ(rec.parent, call_id);
    }
  });
  EXPECT_EQ(retries, 2u);
}

TEST_F(TraceProps, CrashInterruptedServeSpanIsAborted) {
  sim_.schedule_at(simtime::seconds(5),
                   [this] { server_->crash(rpc::CrashOptions{}); });
  rpc::CallOptions opts;
  opts.timeout = simtime::seconds(30);
  auto r = test::run_task(
      sim_, cluster_.call<SlowReq, SlowResp>(*client_, server_->id(),
                                             SlowReq{}, opts));
  EXPECT_FALSE(r.ok());
  sim_.run();  // the stranded handler resumes at t=60s into a dead node

  const auto spans = test::collect_spans(sink_);
  bool found = false;
  for (const auto& [id, s] : spans) {
    if (s.cat != "rpc.serve") continue;
    found = true;
    EXPECT_EQ(s.status, "aborted") << "serve span survived the crash";
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(sink_.open_spans(), 0u);
}

TEST(TraceChaosProps, ChaosTraceIsValidNestedAndDeterministic) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with BS_TRACE=OFF";
  obs::TraceSink sink_a;
  obs::MetricsRegistry reg_a;
  test::run_traced_chaos(42, sink_a, reg_a);
  ASSERT_GT(sink_a.size(), 0u);

  // Chrome export: structurally valid despite spans open at the cutoff.
  const std::string err = test::validate_chrome_trace(
      obs::chrome_trace_json(sink_a));
  EXPECT_EQ(err, "");

  // Closed spans nest inside closed parents even under faults.
  const auto spans = test::collect_spans(sink_a);
  for (const auto& [id, s] : spans) {
    if (!s.closed || s.parent == 0) continue;
    auto pit = spans.find(s.parent);
    if (pit == spans.end() || !pit->second.closed) continue;
    EXPECT_GE(s.begin, pit->second.begin) << s.name;
    EXPECT_LE(s.end, pit->second.end)
        << s.name << " outlives parent " << pit->second.name;
  }

  // Faults showed up in the trace, and serve-side aborts were recorded.
  std::size_t faults = 0;
  sink_a.for_each([&](const obs::TraceRecord& r) {
    if (r.kind == obs::RecordKind::instant &&
        std::string(r.cat) == "fault") {
      ++faults;
    }
  });
  EXPECT_GT(faults, 0u);

  // Replay determinism: bit-identical stream hash and digests.
  obs::TraceSink sink_b;
  obs::MetricsRegistry reg_b;
  const SimTime end_b = test::run_traced_chaos(42, sink_b, reg_b);
  EXPECT_EQ(obs::trace_hash(sink_a), obs::trace_hash(sink_b));
  EXPECT_EQ(obs::trace_digest(sink_a), obs::trace_digest(sink_b));
  EXPECT_EQ(obs::metrics_digest(reg_a, end_b),
            obs::metrics_digest(reg_b, end_b));
}

}  // namespace
}  // namespace bs
