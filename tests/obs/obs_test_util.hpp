// Shared helpers for the observability-plane test suite: span
// reconstruction from a TraceSink's record stream and a structural
// validator for the Chrome trace_event export.
#pragma once

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace bs::test {

/// One reconstructed span: begin/end pair matched by id.
struct SpanRec {
  obs::SpanId id{0};
  obs::SpanId parent{0};
  SimTime begin{0};
  SimTime end{0};
  std::string name;
  std::string cat;
  std::string status;
  std::int64_t arg0{0};  ///< begin-record args[0].value
  bool closed{false};
  std::size_t begins{0};  ///< number of begin records seen for this id
  std::size_t ends{0};    ///< number of end records seen for this id
};

/// Rebuilds spans from the ring, oldest-first. Instants are ignored.
inline std::map<obs::SpanId, SpanRec> collect_spans(
    const obs::TraceSink& sink) {
  std::map<obs::SpanId, SpanRec> out;
  sink.for_each([&](const obs::TraceRecord& r) {
    if (r.kind == obs::RecordKind::instant) return;
    SpanRec& s = out[r.id];
    s.id = r.id;
    if (r.kind == obs::RecordKind::span_begin) {
      ++s.begins;
      s.parent = r.parent;
      s.begin = r.time;
      s.name = r.name;
      s.cat = r.cat;
      if (r.args[0].key != nullptr) s.arg0 = r.args[0].value;
    } else {
      ++s.ends;
      s.end = r.time;
      s.status = r.status;
      s.closed = true;
    }
  });
  return out;
}

/// Structural check of the Chrome trace_event export without a JSON
/// library: walks the event array, extracting ph/ts/tid per event, and
/// verifies (a) stream-order timestamps are monotone non-decreasing,
/// (b) every tid's B/E sequence is balanced (never E below depth 0, all
/// depths return to 0). Returns an empty string on success, else the
/// first violation.
inline std::string validate_chrome_trace(const std::string& json) {
  std::map<long, long> depth;  // tid -> open B count
  double last_ts = -1.0;
  std::size_t events = 0;
  std::size_t pos = 0;
  while ((pos = json.find("{\"name\"", pos)) != std::string::npos) {
    const std::size_t end = json.find('}', pos);
    if (end == std::string::npos) return "unterminated event object";
    // The first '}' closes the nested args object, but ph/ts/tid all
    // precede "args" in this exporter, so [pos, end) still contains them;
    // resuming after it lands before the next event's "{\"name\"".
    const std::string ev = json.substr(pos, end - pos + 1);
    auto field = [&](const char* key) -> std::string {
      const std::string needle = std::string("\"") + key + "\":";
      const std::size_t at = ev.find(needle);
      if (at == std::string::npos) return {};
      std::size_t v = at + needle.size();
      std::size_t stop = v;
      while (stop < ev.size() && ev[stop] != ',' && ev[stop] != '}') ++stop;
      return ev.substr(v, stop - v);
    };
    const std::string ph = field("ph");
    const std::string ts = field("ts");
    const std::string tid = field("tid");
    if (ph.empty() || ts.empty() || tid.empty()) {
      return "event missing ph/ts/tid: " + ev;
    }
    const double t = std::strtod(ts.c_str(), nullptr);
    if (t < last_ts) return "timestamps not monotone at event " + ev;
    last_ts = t;
    const long lane = std::strtol(tid.c_str(), nullptr, 10);
    if (ph == "\"B\"") {
      ++depth[lane];
    } else if (ph == "\"E\"") {
      if (depth[lane] <= 0) return "E without B on tid " + tid;
      --depth[lane];
    } else if (ph != "\"i\"") {
      return "unexpected phase " + ph;
    }
    ++events;
    pos = end + 1;
  }
  if (events == 0) return "no events found";
  for (const auto& [lane, d] : depth) {
    if (d != 0) {
      return "unbalanced B/E on tid " + std::to_string(lane);
    }
  }
  return {};
}

}  // namespace bs::test
