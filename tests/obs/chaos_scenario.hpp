// The fixed-seed scenario the golden-trace and trace-property tests share:
// a 3-site deployment replaying a seeded chaos schedule (crashes, a
// partition, link degradation, a disk slowdown) under a concurrent append
// workload plus an E-C1-style DoS timeline — one flood client hammering the
// version manager with small stat requests at a fixed rate so admission /
// queue-shed paths show up in the trace. Everything is derived from the
// seed and the simulation clock; two runs are bit-identical.
#pragma once

#include <vector>

#include "blob/deployment.hpp"
#include "common/rng.hpp"
#include "fault/fault_plane.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"

namespace bs::test {

/// Uninstalls the process-wide obs hooks on every exit path.
struct ObsGuard {
  ObsGuard(sim::Simulation& sim, obs::TraceSink& sink,
           obs::MetricsRegistry& reg) {
    sim.attach_trace(sink);
    obs::set_metrics(&reg);
  }
  ~ObsGuard() {
    sim::Simulation::detach_trace();
    obs::set_metrics(nullptr);
  }
  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;
};

/// Runs the scenario with `sink`/`reg` installed, returning the sim-time
/// the run ended at. The trace lands in `sink`, the counters in `reg`.
inline SimTime run_traced_chaos(std::uint64_t seed, obs::TraceSink& sink,
                                obs::MetricsRegistry& reg) {
  sim::Simulation sim;
  ObsGuard guard(sim, sink, reg);

  blob::DeploymentConfig cfg;
  cfg.sites = 3;
  cfg.data_providers = 6;
  cfg.metadata_providers = 2;
  cfg.provider_capacity = 4ull * units::GB;
  cfg.fault_seed = seed ^ 0xF00Dull;
  cfg.vm_options.write_lease = simtime::seconds(30);
  cfg.vm_options.sweep_interval = simtime::seconds(5);
  blob::Deployment dep(sim, cfg);

  blob::ClientConfig ccfg;
  const int n_clients = 3;
  std::vector<blob::BlobClient*> clients;
  for (int i = 0; i < n_clients; ++i) clients.push_back(dep.add_client(ccfg));

  auto blob = run_task(sim, clients[0]->create(4 * units::MB,
                                               /*replication=*/2));
  if (!blob.ok()) return sim.now();

  fault::FaultPlane plane(dep.cluster(), seed * 31 + 7);
  fault::ScheduleOptions so;
  so.horizon = simtime::minutes(3);
  so.quiesce_fraction = 0.7;
  for (auto& p : dep.providers()) so.crashable.push_back(p->id());
  so.crashes = 2;
  so.max_wipe_crashes = 1;
  so.site_count = cfg.sites;
  so.partitions = 1;
  so.degrades = 1;
  so.disk_slowdowns = 1;
  plane.schedule_all(fault::random_schedule(seed * 13 + 5, so));

  // Append workload racing the fault schedule.
  struct Op {
    SimTime at{0};
    std::uint64_t bytes{0};
    std::uint64_t content{0};
  };
  Rng wl(seed ^ 0xC0FFEEull);
  std::vector<Op> ops(static_cast<std::size_t>(n_clients) * 3);
  for (auto& op : ops) {
    op.at = simtime::millis(wl.uniform(0, 100000));
    op.bytes = (1 + wl.next_below(2)) * 4 * units::MB;
    op.content = wl.next_u64();
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    sim.spawn([](sim::Simulation& s, blob::BlobClient& cl, BlobId b,
                 Op op) -> sim::Task<void> {
      co_await s.delay_until(op.at);
      (void)co_await cl.append(
          b, blob::Payload::synthetic(op.bytes, op.content));
    }(sim, *clients[i % n_clients], blob.value(), ops[i]));
  }

  // DoS timeline: a flood client fires a burst of small stat requests every
  // 250 ms between t=30s and t=90s — enough concurrent load to exercise
  // the version manager's service queue (and shed paths when it saturates).
  blob::BlobClient* flood = dep.add_client(ccfg);
  sim.spawn([](sim::Simulation& s, blob::BlobClient& cl,
               BlobId b) -> sim::Task<void> {
    co_await s.delay_until(simtime::seconds(30));
    while (s.now() < simtime::seconds(90)) {
      for (int i = 0; i < 8; ++i) {
        s.spawn([](blob::BlobClient& c, BlobId bb) -> sim::Task<void> {
          (void)co_await c.stat(bb);
        }(cl, b));
      }
      co_await s.delay(simtime::millis(250));
    }
  }(sim, *flood, blob.value()));

  sim.run_until(simtime::minutes(4));
  return sim.now();
}

}  // namespace bs::test
