// Golden-trace test (ISSUE 3, satellite 1): the fixed-seed chaos + DoS
// scenario must produce a byte-identical trace digest (a) across two runs
// in the same process and (b) against the digest checked into the repo.
// Refresh the goldens after an intentional behavior change with
//   BS_UPDATE_GOLDEN=1 ctest -R Golden
// and review the diff like any other code change: it is the observable
// behavior of the whole stack under faults, compressed to a page.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos_scenario.hpp"
#include "obs/export.hpp"
#include "obs_test_util.hpp"

#ifndef BS_OBS_GOLDEN_DIR
#define BS_OBS_GOLDEN_DIR "tests/obs/golden"
#endif

namespace bs {
namespace {

std::string golden_path(const char* name) {
  return std::string(BS_OBS_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool update_goldens() {
  const char* v = std::getenv("BS_UPDATE_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(TraceGolden, ChaosDigestMatchesCheckedInGolden) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with BS_TRACE=OFF";

  obs::TraceSink sink_a;
  obs::MetricsRegistry reg_a;
  const SimTime end_a = test::run_traced_chaos(2026, sink_a, reg_a);
  const std::string trace_a = obs::trace_digest(sink_a);
  const std::string metrics_a = obs::metrics_digest(reg_a, end_a);

  // (a) In-process replay determinism, byte for byte.
  obs::TraceSink sink_b;
  obs::MetricsRegistry reg_b;
  const SimTime end_b = test::run_traced_chaos(2026, sink_b, reg_b);
  ASSERT_EQ(end_a, end_b);
  ASSERT_EQ(trace_a, obs::trace_digest(sink_b));
  ASSERT_EQ(metrics_a, obs::metrics_digest(reg_b, end_b));

  const std::string trace_path = golden_path("chaos_trace_digest.txt");
  const std::string metrics_path = golden_path("chaos_metrics_digest.txt");
  if (update_goldens()) {
    std::ofstream(trace_path, std::ios::binary) << trace_a;
    std::ofstream(metrics_path, std::ios::binary) << metrics_a;
    GTEST_SKIP() << "goldens refreshed at " << BS_OBS_GOLDEN_DIR;
  }

  // (b) Byte-identical to the checked-in goldens.
  const std::string want_trace = read_file(trace_path);
  ASSERT_FALSE(want_trace.empty())
      << "missing golden " << trace_path
      << " — run once with BS_UPDATE_GOLDEN=1";
  EXPECT_EQ(trace_a, want_trace);
  const std::string want_metrics = read_file(metrics_path);
  ASSERT_FALSE(want_metrics.empty()) << "missing golden " << metrics_path;
  EXPECT_EQ(metrics_a, want_metrics);
}

TEST(TraceGolden, ChromeExportOfGoldenScenarioIsValidJson) {
  if (!obs::kEnabled) GTEST_SKIP() << "built with BS_TRACE=OFF";
  obs::TraceSink sink;
  obs::MetricsRegistry reg;
  test::run_traced_chaos(2026, sink, reg);
  const std::string json = obs::chrome_trace_json(sink);
  ASSERT_GT(json.size(), 2u);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(test::validate_chrome_trace(json), "");
}

}  // namespace
}  // namespace bs
