// Unit tests for the observability plane's building blocks: the TraceSink
// ring, Span RAII semantics, the metrics registry (counters, sim-time-
// weighted gauges, histograms), and the exporters.
#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs_test_util.hpp"

namespace bs::obs {
namespace {

TEST(TraceSink, SpanLifecycleAndClock) {
  TraceSink sink;
  SimTime now = 0;
  sink.set_clock([&] { return now; });

  now = 100;
  Span s = sink.span("op", "test", 0, {"k", 7});
  EXPECT_TRUE(s.active());
  EXPECT_NE(s.id(), 0u);
  EXPECT_EQ(sink.open_spans(), 1u);
  now = 250;
  s.end("ok");
  EXPECT_FALSE(s.active());
  EXPECT_EQ(sink.open_spans(), 0u);

  ASSERT_EQ(sink.size(), 2u);
  std::vector<TraceRecord> recs;
  sink.for_each([&](const TraceRecord& r) { recs.push_back(r); });
  EXPECT_EQ(recs[0].kind, RecordKind::span_begin);
  EXPECT_EQ(recs[0].time, 100);
  EXPECT_EQ(std::string(recs[0].args[0].key), "k");
  EXPECT_EQ(recs[0].args[0].value, 7);
  EXPECT_EQ(recs[1].kind, RecordKind::span_end);
  EXPECT_EQ(recs[1].time, 250);
  EXPECT_EQ(std::string(recs[1].status), "ok");
  // End records carry the duration as their first arg.
  EXPECT_EQ(std::string(recs[1].args[0].key), "dur_ns");
  EXPECT_EQ(recs[1].args[0].value, 150);
  EXPECT_EQ(sink.last_time(), 250);
}

TEST(TraceSink, DroppedSpanIsClosedAborted) {
  TraceSink sink;
  {
    Span s = sink.span("op", "test");
    (void)s;  // destroyed without end()
  }
  std::string status;
  sink.for_each([&](const TraceRecord& r) {
    if (r.kind == RecordKind::span_end) status = r.status;
  });
  EXPECT_EQ(status, "aborted");
}

TEST(TraceSink, MoveTransfersOwnershipSingleEnd) {
  TraceSink sink;
  Span a = sink.span("op", "test");
  Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.id(), 0u);
  b.end("ok");
  b.end("ok");  // second end is a no-op on an inactive handle
  std::size_t ends = 0;
  sink.for_each([&](const TraceRecord& r) {
    if (r.kind == RecordKind::span_end) ++ends;
  });
  EXPECT_EQ(ends, 1u);
  EXPECT_EQ(sink.stray_ends(), 0u);
}

TEST(TraceSink, StrayEndsAreCountedNotRecorded) {
  TraceSink sink;
  sink.end_span(1234, "ok");
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.stray_ends(), 1u);
}

TEST(TraceSink, RingOverwritesOldestAndCountsDrops) {
  TraceSink sink(TraceSinkOptions{.capacity = 4});
  for (int i = 0; i < 6; ++i) sink.instant("i", "test");
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.capacity(), 4u);
  EXPECT_EQ(sink.dropped(), 2u);
}

TEST(TraceSink, ClearResetsEverything) {
  TraceSink sink;
  Span s = sink.span("op", "test");
  sink.instant("i", "test");
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.open_spans(), 0u);
  s.end("ok");  // refers to a cleared span: counted stray, not recorded
  EXPECT_EQ(sink.stray_ends(), 1u);
}

TEST(Metrics, CounterGaugeHistogramLazyCreation) {
  MetricsRegistry reg;
  reg.counter("a").inc(3);
  reg.counter("a").inc();
  EXPECT_EQ(reg.counter("a").value(), 4u);
  reg.gauge("g").set(2.5, 10);
  reg.histogram("h", 0.0, 10.0, 10).add(3.0);
  EXPECT_EQ(reg.size(), 3u);
  ASSERT_NE(reg.find_counter("a"), nullptr);
  EXPECT_EQ(reg.find_counter("a")->value(), 4u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  ASSERT_NE(reg.find_gauge("g"), nullptr);
  reg.reset();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, GaugeTimeWeightedAverage) {
  Gauge g;
  g.set(10.0, 100);  // held 10.0 over [100, 200)
  g.set(20.0, 200);  // held 20.0 over [200, 400)
  EXPECT_DOUBLE_EQ(g.value(), 20.0);
  EXPECT_EQ(g.samples(), 2u);
  // (10*100 + 20*200) / 300
  EXPECT_DOUBLE_EQ(g.average(400), 5000.0 / 300.0);
}

TEST(Metrics, GaugeZeroLengthIntervalAveragesToCurrentValue) {
  Gauge g;
  g.set(5.0, 100);
  // Same-instant resample: replaces the value, accrues no weight.
  g.set(9.0, 100);
  EXPECT_DOUBLE_EQ(g.average(100), 9.0);
  // Querying before any time elapsed also yields the current value.
  Gauge h;
  h.set(3.0, 50);
  EXPECT_DOUBLE_EQ(h.average(50), 3.0);
  // An unset gauge averages to zero rather than dividing by zero.
  Gauge empty;
  EXPECT_DOUBLE_EQ(empty.average(1000), 0.0);
}

TEST(Metrics, DigestAndCsvAreDeterministicInsertionOrder) {
  MetricsRegistry reg;
  reg.counter("z.second");
  reg.counter("a.first").inc(9);
  reg.gauge("mid").set(1.5, 10);
  const std::string d1 = metrics_digest(reg, 20);
  const std::string d2 = metrics_digest(reg, 20);
  EXPECT_EQ(d1, d2);
  // Insertion order, not lexicographic: z.second precedes a.first.
  EXPECT_LT(d1.find("z.second"), d1.find("a.first"));
  const std::string csv = metrics_csv(reg, 20);
  EXPECT_NE(csv.find("a.first,counter,value,9"), std::string::npos);
  EXPECT_NE(csv.find("mid,gauge,last,1.5"), std::string::npos);
}

TEST(Metrics, GlobalHelpersNoOpWithoutRegistry) {
  set_metrics(nullptr);
  count("nobody.listening");  // must not crash
  gauge_set("nobody", 1.0, 0);
  observe("nobody", 1.0);
  MetricsRegistry reg;
  {
    ScopedMetrics scope(reg);
    count("somebody", 2);
  }
  if (kEnabled) {
    ASSERT_NE(reg.find_counter("somebody"), nullptr);
    EXPECT_EQ(reg.find_counter("somebody")->value(), 2u);
  }
  EXPECT_EQ(metrics(), nullptr);  // scope uninstalled
}

TEST(SampleLogTest, SamplesCountersAndGaugesIntoSeries) {
  MetricsRegistry reg;
  SampleLog log;
  reg.counter("c").inc(1);
  reg.gauge("g").set(4.0, 100);
  log.sample(reg, 100);
  reg.counter("c").inc(2);
  log.sample(reg, 200);
  ASSERT_NE(log.find("c"), nullptr);
  ASSERT_EQ(log.find("c")->samples().size(), 2u);
  EXPECT_DOUBLE_EQ(log.find("c")->samples()[1].value, 3.0);
  EXPECT_EQ(log.find("absent"), nullptr);
  const std::string csv = log.csv();
  EXPECT_NE(csv.find("time_s,name,value"), std::string::npos);
  EXPECT_NE(csv.find(",c,"), std::string::npos);
}

TEST(Exporters, ChromeJsonBalancedForOverlappingAndOpenSpans) {
  TraceSink sink;
  SimTime now = 0;
  sink.set_clock([&] { return now; });

  // Two overlapping spans (forces two lanes), one instant, one span left
  // open at export time (closed synthetically with status "open").
  now = 10;
  Span a = sink.span("a", "t");
  now = 20;
  Span b = sink.span("b", "t");
  sink.instant("tick", "t");
  now = 30;
  a.end("ok");
  now = 40;
  Span c = sink.span("c", "t");
  now = 50;
  b.end("ok");
  // c stays open.
  const std::string json = chrome_trace_json(sink);
  EXPECT_EQ(bs::test::validate_chrome_trace(json), "");
  EXPECT_NE(json.find("\"status\":\"open\""), std::string::npos);
  c.end("ok");
}

TEST(Exporters, TraceDigestAggregatesAndHashStability) {
  TraceSink sink;
  SimTime now = 0;
  sink.set_clock([&] { return now; });
  now = 5;
  {
    Span s = sink.span("op", "t");
    now = 9;
  }  // aborted
  Span s2 = sink.span("op", "t");
  now = 12;
  s2.end("timeout");
  sink.instant("evt", "t");

  const std::string d = trace_digest(sink);
  EXPECT_NE(d.find("# bs-trace-digest v1"), std::string::npos);
  EXPECT_NE(d.find("span op|t n=2 aborted=1 err=1"), std::string::npos);
  EXPECT_NE(d.find("inst evt|t n=1"), std::string::npos);
  EXPECT_EQ(d, trace_digest(sink));
  EXPECT_EQ(trace_hash(sink), trace_hash(sink));
}

}  // namespace
}  // namespace bs::obs
