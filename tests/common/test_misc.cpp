// Tests for the remaining small common utilities: Result, strings, time
// formatting, TimeSeries, TokenBucket, RingBuffer, ThreadPool, hashing.
#include <gtest/gtest.h>

#include <atomic>

#include "common/hash.hpp"
#include "common/result.hpp"
#include "common/ring_buffer.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/timeseries.hpp"
#include "common/token_bucket.hpp"
#include "common/types.hpp"

namespace bs {
namespace {

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.code(), Errc::ok);

  Result<int> err(Errc::not_found, "gone");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errc::not_found);
  EXPECT_EQ(err.error().message, "gone");
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = ok_result();
  EXPECT_TRUE(ok.ok());
  Result<void> err{Errc::timeout};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errc::timeout);
}

TEST(Result, ErrcNamesStable) {
  EXPECT_STREQ(errc_name(Errc::blocked), "blocked");
  EXPECT_STREQ(errc_name(Errc::out_of_space), "out_of_space");
  EXPECT_STREQ(errc_name(Errc::ok), "ok");
}

TEST(Strings, SplitTrimJoin) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(TimeFormat, HumanReadable) {
  EXPECT_EQ(simtime::to_string(simtime::seconds(1.5)), "1.500s");
  EXPECT_EQ(simtime::to_string(simtime::millis(2)), "2.000ms");
  EXPECT_EQ(units::format_bytes(1'500'000'000ull), "1.50 GB");
  EXPECT_EQ(units::format_rate(112'300'000.0), "112.3 MB/s");
}

TEST(Ids, ValidityAndHash) {
  NodeId a{3}, b{3}, c{4};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(NodeId{}.valid());
  EXPECT_EQ(std::hash<NodeId>{}(a), std::hash<NodeId>{}(b));
}

TEST(Hash, Deterministic) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_NE(fnv1a_u64(1), fnv1a_u64(2));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(TimeSeries, RangeAndValueAt) {
  TimeSeries ts;
  ts.append(simtime::seconds(1), 10);
  ts.append(simtime::seconds(2), 20);
  ts.append(simtime::seconds(3), 30);
  EXPECT_EQ(ts.range(simtime::seconds(1), simtime::seconds(3)).size(), 2u);
  EXPECT_DOUBLE_EQ(ts.value_at(simtime::seconds(2.5)), 20);
  EXPECT_DOUBLE_EQ(ts.value_at(simtime::seconds(0.5), -1), -1);
  EXPECT_DOUBLE_EQ(ts.value_at(simtime::seconds(99)), 30);
}

TEST(TimeSeries, MeanAndResample) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.append(simtime::seconds(i), i);
  EXPECT_DOUBLE_EQ(ts.mean(simtime::seconds(0), simtime::seconds(10)), 4.5);
  auto r = ts.resample(simtime::seconds(0), simtime::seconds(10),
                       simtime::seconds(2));
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r[0], 0.5);
  EXPECT_DOUBLE_EQ(r[4], 8.5);
}

TEST(TimeSeries, ResampleFillsGaps) {
  TimeSeries ts;
  ts.append(simtime::seconds(0), 5);
  ts.append(simtime::seconds(9), 7);
  auto r = ts.resample(simtime::seconds(0), simtime::seconds(10),
                       simtime::seconds(1));
  ASSERT_EQ(r.size(), 10u);
  EXPECT_DOUBLE_EQ(r[3], 5);  // carried forward
  EXPECT_DOUBLE_EQ(r[9], 7);
}

TEST(TimeSeries, EmptySeriesEdges) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.value_at(simtime::seconds(5), -2.0), -2.0);
  EXPECT_DOUBLE_EQ(ts.mean(simtime::seconds(0), simtime::seconds(10), 3.0),
                   3.0);
  EXPECT_TRUE(ts.range(simtime::seconds(0), simtime::seconds(10)).empty());
  auto r = ts.resample(simtime::seconds(0), simtime::seconds(4),
                       simtime::seconds(1), /*initial=*/1.5);
  ASSERT_EQ(r.size(), 4u);
  for (double v : r) EXPECT_DOUBLE_EQ(v, 1.5);  // initial carried throughout
}

TEST(TimeSeries, HalfOpenRangeAndEmptyMeanWindow) {
  TimeSeries ts;
  ts.append(simtime::seconds(1), 10);
  ts.append(simtime::seconds(2), 20);
  // range() is [from, to): the sample exactly at `to` is excluded...
  EXPECT_EQ(ts.range(simtime::seconds(1), simtime::seconds(2)).size(), 1u);
  // ...and a window strictly between samples has no mass.
  EXPECT_DOUBLE_EQ(
      ts.mean(simtime::seconds(1.2), simtime::seconds(1.8), -1.0), -1.0);
}

TEST(TokenBucket, ConsumesAndRefills) {
  TokenBucket tb(10.0, 5.0);  // 10 tokens/s, burst 5
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tb.try_consume(t));
  EXPECT_FALSE(tb.try_consume(t));
  t = simtime::millis(200);  // +2 tokens
  EXPECT_TRUE(tb.try_consume(t));
  EXPECT_TRUE(tb.try_consume(t));
  EXPECT_FALSE(tb.try_consume(t));
}

TEST(TokenBucket, NextAvailable) {
  TokenBucket tb(10.0, 1.0);
  EXPECT_TRUE(tb.try_consume(0));
  const SimTime next = tb.next_available(0);
  EXPECT_NEAR(simtime::to_seconds(next), 0.1, 1e-6);
  EXPECT_TRUE(tb.try_consume(next + 1));
}

TEST(TokenBucket, BurstCapped) {
  TokenBucket tb(100.0, 3.0);
  const SimTime later = simtime::seconds(100);
  EXPECT_NEAR(tb.available(later), 3.0, 1e-9);
}

TEST(RingBuffer, PushPopFifo) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.push(1));
  EXPECT_TRUE(rb.push(2));
  EXPECT_TRUE(rb.push(3));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.push(4));
  EXPECT_EQ(rb.pop().value(), 1);
  EXPECT_TRUE(rb.push(4));
  EXPECT_EQ(rb.pop().value(), 2);
  EXPECT_EQ(rb.pop().value(), 3);
  EXPECT_EQ(rb.pop().value(), 4);
  EXPECT_FALSE(rb.pop().has_value());
}

TEST(RingBuffer, PushEvict) {
  RingBuffer<int> rb(2);
  EXPECT_FALSE(rb.push_evict(1).has_value());
  EXPECT_FALSE(rb.push_evict(2).has_value());
  auto evicted = rb.push_evict(3);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1);
  EXPECT_EQ(rb.pop().value(), 2);
}

TEST(ThreadPool, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelFor) {
  ThreadPool pool(3);
  std::vector<int> out(50, 0);
  pool.parallel_for(out.size(), [&out](std::size_t i) {
    out[i] = static_cast<int>(i * 2);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * 2));
  }
}

}  // namespace
}  // namespace bs
