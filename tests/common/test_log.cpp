// Logger behaviour: level gating, sink capture, simulated timestamps.
#include <gtest/gtest.h>

#include <vector>

#include "common/log.hpp"

namespace bs {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() {
    Logger::instance().set_sink(
        [this](const std::string& line) { lines_.push_back(line); });
  }
  ~LogTest() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_time_source(nullptr);
    Logger::instance().set_level(LogLevel::warn);
  }
  std::vector<std::string> lines_;
};

TEST_F(LogTest, LevelGating) {
  Logger::instance().set_level(LogLevel::warn);
  BS_INFO("test", "hidden %d", 1);
  BS_WARN("test", "shown %d", 2);
  BS_ERROR("test", "also shown");
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("shown 2"), std::string::npos);
  EXPECT_NE(lines_[0].find("WARN"), std::string::npos);
  EXPECT_NE(lines_[1].find("ERROR"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::off);
  BS_ERROR("test", "nope");
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, ComponentAndFormatting) {
  Logger::instance().set_level(LogLevel::debug);
  BS_DEBUG("mycomp", "x=%s y=%.1f", "abc", 2.5);
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("[mycomp]"), std::string::npos);
  EXPECT_NE(lines_[0].find("x=abc y=2.5"), std::string::npos);
}

TEST_F(LogTest, TimeSourceStampsLines) {
  Logger::instance().set_level(LogLevel::info);
  Logger::instance().set_time_source(
      [] { return simtime::seconds(1.5); });
  BS_INFO("test", "stamped");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("[1.500s]"), std::string::npos);
}

}  // namespace
}  // namespace bs
