#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bs {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndMean) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bins()[i], 1u);
}

TEST(Histogram, QuantilesApproximate) {
  Histogram h(0.0, 100.0, 1000);
  for (int i = 0; i < 10000; ++i) h.add((i % 100) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(Histogram, OverflowUnderflowTracked) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  h.add(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_LE(h.quantile(0.0), 0.0);   // underflow reported at lo
  EXPECT_GE(h.quantile(1.0), 1.0);   // overflow reported at hi
}

TEST(Histogram, EmptyQuantilesAndMoments) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleSamplePercentiles) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.0);
  // With one sample every percentile lands in its bin (width 1 here).
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GT(h.quantile(q), 3.0 - 1e-9) << "q=" << q;
    EXPECT_LE(h.quantile(q), 4.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(Histogram, AllSamplesOutOfRange) {
  Histogram lo_h(0.0, 1.0, 4);
  lo_h.add(-3.0);
  lo_h.add(-7.0);
  EXPECT_DOUBLE_EQ(lo_h.quantile(0.5), 0.0);  // all underflow → lo
  Histogram hi_h(0.0, 1.0, 4);
  hi_h.add(9.0);
  EXPECT_DOUBLE_EQ(hi_h.quantile(0.5), 1.0);  // all overflow → hi
  // The exact moments still come from the running stats, not the bins.
  EXPECT_DOUBLE_EQ(lo_h.mean(), -5.0);
  EXPECT_DOUBLE_EQ(hi_h.max(), 9.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  h.add(50.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  for (std::uint64_t b : h.bins()) EXPECT_EQ(b, 0u);
}

TEST(RunningStats, SingleSampleVarianceIsZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(Histogram, SummaryNonEmpty) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.0);
  EXPECT_NE(h.summary().find("count=1"), std::string::npos);
}

TEST(SlidingWindowCounter, CountsWithinWindow) {
  SlidingWindowCounter c(simtime::seconds(10));
  c.add(simtime::seconds(1));
  c.add(simtime::seconds(5));
  c.add(simtime::seconds(9));
  EXPECT_DOUBLE_EQ(c.total(simtime::seconds(9)), 3.0);
}

TEST(SlidingWindowCounter, EvictsOldSamples) {
  SlidingWindowCounter c(simtime::seconds(10));
  c.add(simtime::seconds(1), 5.0);
  c.add(simtime::seconds(8), 2.0);
  EXPECT_DOUBLE_EQ(c.total(simtime::seconds(12)), 2.0);
  EXPECT_DOUBLE_EQ(c.total(simtime::seconds(30)), 0.0);
}

TEST(SlidingWindowCounter, RatePerSecond) {
  SlidingWindowCounter c(simtime::seconds(10));
  for (int i = 0; i < 50; ++i) c.add(simtime::seconds(i * 0.2));
  // 50 events in 10 s window.
  EXPECT_NEAR(c.rate_per_sec(simtime::seconds(9.8)), 5.0, 0.1);
}

TEST(SlidingWindowCounter, WeightedAmounts) {
  SlidingWindowCounter c(simtime::seconds(5));
  c.add(simtime::seconds(1), 100.0);
  c.add(simtime::seconds(2), 200.0);
  EXPECT_DOUBLE_EQ(c.total(simtime::seconds(3)), 300.0);
}

}  // namespace
}  // namespace bs
