#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

namespace bs {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::map<std::int64_t, int> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    ++seen[v];
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double p = static_cast<double>(hits) / n;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ZipfSkewsTowardsLowRanks) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.zipf(10, 1.1)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[0], 4 * counts[9]);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(29);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.zipf(1, 1.2), 0u);
}

TEST(Rng, SplitIsReproducibleAndIndependent) {
  // Identical derivations yield identical child streams.
  Rng a(31), b(31);
  Rng child_a = a.split();
  Rng child_b = b.split();
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
  // The child stream does not replay the parent continuation.
  Rng p(31);
  Rng child = p.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == p.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace bs
