#include "common/config.hpp"

#include <gtest/gtest.h>

namespace bs {
namespace {

TEST(Config, ParseBasic) {
  auto r = Config::parse("a = 1\nb = hello\n# comment\n\nc = 2.5\n");
  ASSERT_TRUE(r.ok());
  const Config& c = r.value();
  EXPECT_EQ(c.get_int("a"), 1);
  EXPECT_EQ(c.get_string("b"), "hello");
  EXPECT_DOUBLE_EQ(c.get_double("c"), 2.5);
}

TEST(Config, ParseErrors) {
  EXPECT_FALSE(Config::parse("novalue\n").ok());
  EXPECT_FALSE(Config::parse("= 3\n").ok());
}

TEST(Config, Defaults) {
  Config c;
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_EQ(c.get_string("missing", "x"), "x");
  EXPECT_TRUE(c.get_bool("missing", true));
}

TEST(Config, BoolParsing) {
  Config c;
  c.set("t1", "true");
  c.set("t2", "YES");
  c.set("t3", "1");
  c.set("f1", "false");
  c.set("f2", "off");
  c.set("junk", "maybe");
  EXPECT_TRUE(c.get_bool("t1"));
  EXPECT_TRUE(c.get_bool("t2"));
  EXPECT_TRUE(c.get_bool("t3"));
  EXPECT_FALSE(c.get_bool("f1", true));
  EXPECT_FALSE(c.get_bool("f2", true));
  EXPECT_TRUE(c.get_bool("junk", true));  // falls back on junk
}

TEST(Config, ByteSuffixes) {
  EXPECT_EQ(Config::parse_bytes("64KB").value(), 64'000ull);
  EXPECT_EQ(Config::parse_bytes("4MiB").value(), 4ull * 1048576);
  EXPECT_EQ(Config::parse_bytes("1GB").value(), 1'000'000'000ull);
  EXPECT_EQ(Config::parse_bytes("123").value(), 123ull);
  EXPECT_EQ(Config::parse_bytes(" 2 gib ").value(), 2ull * 1073741824);
  EXPECT_FALSE(Config::parse_bytes("12 parsecs").ok());
  EXPECT_FALSE(Config::parse_bytes("abc").ok());
}

TEST(Config, DurationSuffixes) {
  EXPECT_EQ(Config::parse_duration("250ms").value(), simtime::millis(250));
  EXPECT_EQ(Config::parse_duration("10s").value(), simtime::seconds(10));
  EXPECT_EQ(Config::parse_duration("2min").value(), simtime::minutes(2));
  EXPECT_EQ(Config::parse_duration("5us").value(), simtime::micros(5));
  EXPECT_EQ(Config::parse_duration("42").value(), 42);
  EXPECT_FALSE(Config::parse_duration("10 fortnights").ok());
}

TEST(Config, GetBytesAndDuration) {
  Config c;
  c.set("chunk", "64MB");
  c.set("interval", "2s");
  EXPECT_EQ(c.get_bytes("chunk"), 64'000'000ull);
  EXPECT_EQ(c.get_duration("interval"), simtime::seconds(2));
  EXPECT_EQ(c.get_bytes("missing", 5), 5ull);
}

TEST(Config, MergeOtherWins) {
  Config a, b;
  a.set("x", "1");
  a.set("y", "2");
  b.set("y", "3");
  a.merge(b);
  EXPECT_EQ(a.get_int("x"), 1);
  EXPECT_EQ(a.get_int("y"), 3);
}

TEST(Config, RoundTrip) {
  Config a;
  a.set("k1", "v1");
  a.set_int("k2", 42);
  auto r = Config::parse(a.to_string());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get_string("k1"), "v1");
  EXPECT_EQ(r.value().get_int("k2"), 42);
}

}  // namespace
}  // namespace bs
